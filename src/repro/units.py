"""Units and unit-conversion helpers shared across the simulator.

Simulated time is kept as **integer nanoseconds** throughout the code base.
Floating point time accumulates rounding error over long runs and makes
discrete-event ordering fragile; integer nanoseconds give us exact arithmetic
with a range (2**63 ns ~ 292 years) far beyond any simulation we run.

Byte quantities are plain integers.  Rates cross the int/float boundary:
an offered load in requests/second or a link bandwidth in bits/second is a
float, and the helpers here convert between rates and integer inter-arrival
times or serialization delays.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Time constants (all express "how many nanoseconds").
# ---------------------------------------------------------------------------

NSEC = 1
USEC = 1_000
MSEC = 1_000_000
SEC = 1_000_000_000


def usecs(value: float) -> int:
    """Convert microseconds to integer nanoseconds."""
    return round(value * USEC)


def msecs(value: float) -> int:
    """Convert milliseconds to integer nanoseconds."""
    return round(value * MSEC)


def secs(value: float) -> int:
    """Convert seconds to integer nanoseconds."""
    return round(value * SEC)


def to_usecs(ns: int) -> float:
    """Convert integer nanoseconds to float microseconds."""
    return ns / USEC


def to_msecs(ns: int) -> float:
    """Convert integer nanoseconds to float milliseconds."""
    return ns / MSEC


def to_secs(ns: int) -> float:
    """Convert integer nanoseconds to float seconds."""
    return ns / SEC


# ---------------------------------------------------------------------------
# Byte constants.
# ---------------------------------------------------------------------------

KIB = 1024
MIB = 1024 * 1024
GIB = 1024 * 1024 * 1024


# ---------------------------------------------------------------------------
# Rate conversions.
# ---------------------------------------------------------------------------


def interarrival_ns(rate_per_sec: float) -> float:
    """Mean inter-arrival time (ns, float) for a given event rate per second.

    Returned as a float so Poisson samplers can scale it before rounding.
    """
    if rate_per_sec <= 0:
        raise ValueError(f"rate must be positive, got {rate_per_sec}")
    return SEC / rate_per_sec


def serialization_delay_ns(nbytes: int, bits_per_sec: float) -> int:
    """Time to push ``nbytes`` onto a wire of the given bandwidth."""
    if bits_per_sec <= 0:
        raise ValueError(f"bandwidth must be positive, got {bits_per_sec}")
    return round(nbytes * 8 * SEC / bits_per_sec)


def rate_per_sec(count: int, elapsed_ns: int) -> float:
    """Events per second given a count over an elapsed period."""
    if elapsed_ns <= 0:
        raise ValueError(f"elapsed time must be positive, got {elapsed_ns}")
    return count * SEC / elapsed_ns
