"""Durable campaign checkpoints: the ``repro-checkpoint-v1`` shard store.

A campaign is a set of pure jobs keyed by a *content digest* of each
job's configuration.  As jobs complete, the supervisor appends one JSONL
record per result to the current *shard* file; a later campaign pointed
at the same directory loads every shard, skips jobs whose key is already
recorded, and merges stored results with fresh ones — producing output
identical to an uninterrupted run, because the stored result *is* the
run's result (pickled whole, not summarized).

Durability model:

- every record is one line, flushed *and fsynced* as written — a
  SIGKILL (or power loss) after :meth:`CheckpointStore.record_success`
  returns cannot lose the acknowledged record, and the loader tolerates
  a truncated tail from a kill mid-write;
- each store *open* appends to a fresh ``shard-NNN.jsonl``, so a resumed
  campaign never rewrites (or even reopens for write) bytes an earlier
  campaign already made durable;
- every shard begins with a header line naming the schema, so a reader
  rejects a directory written by a different layout before trusting any
  payload in it.

Record layout (one JSON object per line)::

    {"schema": "repro-checkpoint-v1", "label": ...}          # header
    {"kind": "result", "status": "ok", "key": <digest>,
     "attempts": N, "label": <human hint>, "payload": <b64 pickle>}
    {"kind": "result", "status": "failed", "key": <digest>,
     "attempts": N, "failure_kind": ..., "error_type": ...,
     "message": ...}

Failed records are informational: the loader does *not* treat them as
complete, so a resume retries quarantined configs in the (possibly
healthier) new environment.
"""

from __future__ import annotations

import base64
import dataclasses
import hashlib
import json
import os
import pathlib
import pickle

from repro.errors import SuperviseError
from repro.supervise.outcome import JobFailure

CHECKPOINT_SCHEMA = "repro-checkpoint-v1"


# ---------------------------------------------------------------------------
# Content-addressed job keys.
# ---------------------------------------------------------------------------


def _plain(obj):
    """A canonical JSON-able view of a job payload, or TypeError."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        plain = {"__type__": type(obj).__qualname__}
        for field in dataclasses.fields(obj):
            plain[field.name] = _plain(getattr(obj, field.name))
        return plain
    if isinstance(obj, (list, tuple)):
        return [_plain(item) for item in obj]
    if isinstance(obj, dict):
        return {str(key): _plain(value) for key, value in obj.items()}
    if callable(obj):
        # Identify callables by import path, never by repr (addresses).
        module = getattr(obj, "__module__", None)
        qualname = getattr(obj, "__qualname__", None)
        if module is None or qualname is None or "<locals>" in qualname:
            raise TypeError(f"unkeyable callable {obj!r}")
        return f"callable:{module}:{qualname}"
    if obj is None or isinstance(obj, (str, int, float, bool)):
        return obj
    raise TypeError(f"unkeyable {type(obj).__name__}")


def job_key(payload) -> str:
    """A stable content digest of one job's configuration.

    Dataclass trees (the :class:`~repro.loadgen.lancet.BenchConfig`
    case) digest through a canonical sorted-key JSON form, so the key
    survives process restarts, ``PYTHONHASHSEED``, and field-order
    refactors that keep the same field names.  Payloads that cannot be
    canonicalized (exotic objects) fall back to a pickle digest, which
    is stable for a fixed code version — good enough to resume an
    interrupted campaign of the same build.  Payloads that cannot even
    be pickled (closures, lambdas) have no stable identity at all and
    raise :class:`~repro.errors.SuperviseError` — callers that do not
    need durability substitute a positional key instead.
    """
    try:
        canonical = json.dumps(
            _plain(payload), sort_keys=True, separators=(",", ":")
        ).encode()
    except (TypeError, ValueError):
        try:
            canonical = pickle.dumps(payload, protocol=4)
        except Exception as exc:
            raise SuperviseError(
                "job payload is not content-addressable (cannot be "
                "canonicalized or pickled); use module-level functions "
                f"to make the campaign resumable: {exc}"
            ) from exc
    return hashlib.sha256(canonical).hexdigest()


def volatile_key(index: int) -> str:
    """A positional stand-in key for a payload with no stable identity.

    Volatile keys are valid within one campaign (outcome records still
    carry *a* key) but never match across runs, so they must not be
    used with a checkpoint store — a resumed campaign could neither
    find nor trust them.
    """
    return f"volatile-{index:06d}"


def derive_keys(payloads, durable: bool) -> list[str]:
    """Content keys for a batch, with positional fallbacks when allowed.

    ``durable=True`` (a checkpoint store is attached) propagates the
    :class:`~repro.errors.SuperviseError` for non-addressable payloads:
    silently mixing volatile keys into a durable store would record
    results no resume could ever match.
    """
    keys = []
    for index, payload in enumerate(payloads):
        try:
            keys.append(job_key(payload))
        except SuperviseError:
            if durable:
                raise
            keys.append(volatile_key(index))
    return keys


# ---------------------------------------------------------------------------
# The shard store.
# ---------------------------------------------------------------------------


class CheckpointStore:
    """Append-only JSONL shards of completed campaign jobs, by key."""

    def __init__(self, directory, label: str | None = None):
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.label = label
        self._completed: dict[str, tuple[object, int]] = {}
        self._failures: dict[str, dict] = {}
        self._load()
        self._shard_path = self.directory / f"shard-{self._next_shard():03d}.jsonl"
        self._shard_file = None

    # -- loading --------------------------------------------------------

    def _shard_paths(self) -> list[pathlib.Path]:
        return sorted(self.directory.glob("shard-*.jsonl"))

    def _next_shard(self) -> int:
        numbers = []
        for path in self._shard_paths():
            stem = path.stem.split("-", 1)[-1]
            if stem.isdigit():
                numbers.append(int(stem))
        return max(numbers, default=-1) + 1

    def _load(self) -> None:
        for path in self._shard_paths():
            saw_header = False
            for line in path.read_text().splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # truncated tail of a killed campaign
                if not isinstance(record, dict):
                    continue
                if "schema" in record:
                    if record["schema"] != CHECKPOINT_SCHEMA:
                        raise SuperviseError(
                            f"{path} is not a {CHECKPOINT_SCHEMA} shard "
                            f"(schema {record['schema']!r})"
                        )
                    saw_header = True
                    continue
                if not saw_header:
                    raise SuperviseError(
                        f"{path} has records before its schema header"
                    )
                if record.get("kind") != "result":
                    continue
                key = record.get("key")
                if not isinstance(key, str):
                    continue
                if record.get("status") == "ok":
                    try:
                        result = pickle.loads(
                            base64.b64decode(record["payload"])
                        )
                    except Exception:
                        continue  # unreadable payload: treat as not done
                    self._completed[key] = (
                        result, int(record.get("attempts", 1))
                    )
                    self._failures.pop(key, None)
                else:
                    self._failures[key] = record

    # -- queries --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._completed)

    def __contains__(self, key: str) -> bool:
        return key in self._completed

    def get(self, key: str):
        """The stored ``(result, attempts)`` for ``key``, or None."""
        return self._completed.get(key)

    @property
    def failures(self) -> dict[str, dict]:
        """Recorded quarantine records by key (informational)."""
        return dict(self._failures)

    # -- appends --------------------------------------------------------

    def _append(self, record: dict) -> None:
        if self._shard_file is None:
            self._shard_file = open(self._shard_path, "a", encoding="utf-8")
            header = {"schema": CHECKPOINT_SCHEMA, "label": self.label}
            self._shard_file.write(
                json.dumps(header, separators=(",", ":")) + "\n"
            )
        self._shard_file.write(json.dumps(record, separators=(",", ":")) + "\n")
        # Flush to the kernel, then fsync to the platter: a record is
        # "acknowledged" the moment this method returns, so a SIGKILL —
        # or a power cut — in the window between append and a later
        # flush must not be able to take it back.
        self._shard_file.flush()
        os.fsync(self._shard_file.fileno())

    def record_success(
        self, key: str, result, attempts: int = 1, label: str | None = None
    ) -> None:
        """Persist one completed job and remember it for this campaign."""
        payload = base64.b64encode(
            pickle.dumps(result, protocol=4)
        ).decode("ascii")
        self._append({
            "kind": "result",
            "status": "ok",
            "key": key,
            "attempts": attempts,
            "label": label,
            "payload": payload,
        })
        self._completed[key] = (result, attempts)
        self._failures.pop(key, None)

    def record_failure(self, key: str, failure: JobFailure) -> None:
        """Persist one quarantined job (informational; retried on resume)."""
        record = {
            "kind": "result",
            "status": "failed",
            "key": key,
            "attempts": failure.attempts,
            "failure_kind": failure.kind,
            "error_type": failure.error_type,
            "message": failure.message,
        }
        self._append(record)
        self._failures[key] = record

    def close(self) -> None:
        """Flush and close the active shard (idempotent)."""
        if self._shard_file is not None:
            self._shard_file.close()
            self._shard_file = None
