"""Resilient campaign execution: supervision, retry, checkpoint/resume.

This package turns "run these N configs" from a best-effort pool map
into a supervised campaign:

- :mod:`~repro.supervise.supervisor` — the engine: per-job wall-clock
  timeouts with hung-worker kill, worker-crash recovery on a fresh
  pool, bounded retry with deterministic backoff, and poison-config
  quarantine into typed outcomes;
- :mod:`~repro.supervise.policy` — every supervision knob in one
  frozen :class:`SupervisePolicy`;
- :mod:`~repro.supervise.outcome` — :class:`JobSuccess` /
  :class:`JobFailure`, index-aligned with the submitted jobs;
- :mod:`~repro.supervise.checkpoint` — the ``repro-checkpoint-v1``
  JSONL shard store keyed by config content digest, enabling
  ``repro ... --resume DIR``;
- :mod:`~repro.supervise.watchdog` — in-simulation event/sim-time
  budgets raising the typed :class:`~repro.errors.WatchdogError`.

:mod:`repro.parallel` builds its campaign API on this package; drivers
and the CLI only thread :class:`SupervisePolicy` / checkpoint
directories through.
"""

from repro.supervise.checkpoint import (
    CHECKPOINT_SCHEMA,
    CheckpointStore,
    derive_keys,
    job_key,
    volatile_key,
)
from repro.supervise.outcome import (
    KIND_CRASH,
    KIND_ERROR,
    KIND_TIMEOUT,
    JobFailure,
    JobOutcome,
    JobSuccess,
    split_outcomes,
)
from repro.supervise.policy import SupervisePolicy
from repro.supervise.supervisor import PoolLease, Supervisor
from repro.supervise.watchdog import Watchdog

__all__ = [
    "CHECKPOINT_SCHEMA",
    "CheckpointStore",
    "derive_keys",
    "job_key",
    "volatile_key",
    "KIND_CRASH",
    "KIND_ERROR",
    "KIND_TIMEOUT",
    "JobFailure",
    "JobOutcome",
    "JobSuccess",
    "split_outcomes",
    "PoolLease",
    "SupervisePolicy",
    "Supervisor",
    "Watchdog",
]
