"""Supervision policy: timeouts, bounded retry, deterministic backoff.

One frozen dataclass carries every knob the supervisor honors, so a
policy can be threaded from the CLI through every experiment driver
without growing their signatures one flag at a time.

Backoff is *deterministic* exponential — no jitter.  Jobs here are pure
functions of their config (all randomness flows through the config's
seed), so retries cannot change results; randomized backoff would only
make campaign wall-clock (and logs) unreproducible for nothing: there is
no thundering-herd peer to desynchronize from inside one campaign.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SuperviseError


@dataclass(frozen=True)
class SupervisePolicy:
    """How a supervised campaign treats misbehaving jobs.

    ``max_attempts`` bounds *attributed* failures per job (an exception
    inside the job, or the job's own wall-clock timeout).  Worker-pool
    crashes are only attributable to the set of in-flight jobs, so they
    are tracked separately and allowed ``max_attempts + crash_slack``
    strikes — an innocent job killed alongside a crasher is not marched
    toward quarantine at the guilty job's pace.

    ``job_timeout_s`` is the per-job wall-clock budget (``None`` — the
    default — disables hung-job detection).  ``poll_interval_s`` is how
    often the supervisor wakes to check deadlines; it bounds detection
    latency, not correctness.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 2.0
    job_timeout_s: float | None = None
    poll_interval_s: float = 0.05
    crash_slack: int = 2

    def validate(self) -> None:
        """Raise on nonsensical policy parameters."""
        if self.max_attempts < 1:
            raise SuperviseError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise SuperviseError("backoff times must be >= 0")
        if self.backoff_factor < 1.0:
            raise SuperviseError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.job_timeout_s is not None and self.job_timeout_s <= 0:
            raise SuperviseError(
                f"job_timeout_s must be positive, got {self.job_timeout_s}"
            )
        if self.poll_interval_s <= 0:
            raise SuperviseError(
                f"poll_interval_s must be positive, got {self.poll_interval_s}"
            )
        if self.crash_slack < 0:
            raise SuperviseError(
                f"crash_slack must be >= 0, got {self.crash_slack}"
            )

    def backoff_s(self, failures: int) -> float:
        """Deterministic exponential backoff before retry ``failures``.

        ``failures`` is the number of failures the job has accrued so
        far (>= 1 when a retry is being scheduled).
        """
        if failures < 1:
            return 0.0
        delay = self.backoff_base_s * self.backoff_factor ** (failures - 1)
        return min(delay, self.backoff_max_s)

    @property
    def max_crash_strikes(self) -> int:
        """Pool-crash strikes tolerated before quarantine."""
        return self.max_attempts + self.crash_slack
