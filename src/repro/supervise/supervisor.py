"""The campaign supervisor: run pure jobs to completion, survive anything.

:class:`Supervisor` executes a list of independent jobs (pure functions
of picklable payloads) and returns an index-aligned list of typed
outcomes — :class:`~repro.supervise.outcome.JobSuccess` or
:class:`~repro.supervise.outcome.JobFailure` — instead of letting one
bad job sink the campaign.  Per job it implements the supervision state
machine::

    PENDING ──submit──▶ RUNNING ──ok──▶ DONE (checkpointed)
       ▲                   │
       │                   ├─ raised ──▶ failed(error):   retry w/ backoff
       │                   ├─ deadline ─▶ failed(timeout): kill pool, retry
       │                   └─ pool died ▶ failed(crash):   fresh pool, retry
       │                   │
       └──── backoff ◀─────┴─ attempts left?  no ──▶ QUARANTINED

Key properties:

- **determinism** — jobs are pure, so retries, backoff, pool restarts
  and checkpoint merges cannot change a single result byte; supervision
  only decides *whether* each result exists.
- **attribution** — a timeout is attributed exactly (per-job deadline);
  a worker crash is only attributable to the in-flight set, so crash
  strikes get extra slack (see
  :class:`~repro.supervise.policy.SupervisePolicy`) and innocent
  bystanders of a pool kill are requeued penalty-free.
- **poison fail-fast** — a :class:`~repro.errors.WatchdogError` (budget
  blowout) is deterministic; the job is quarantined on first strike
  instead of burning ``max_attempts`` full budgets.
- **durability** — with a
  :class:`~repro.supervise.checkpoint.CheckpointStore` attached, every
  completed job is flushed to disk as it lands and already-stored jobs
  are skipped on entry, so an interrupted campaign resumes where it
  died.

The executor is :class:`concurrent.futures.ProcessPoolExecutor`: a dead
worker surfaces promptly as a broken pool (no timeout wait), and the
pool is rebuilt fresh for the survivors.  Hung workers have no such
signal — they are caught by the per-job wall-clock deadline and removed
by killing the pool's processes outright.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor
from concurrent.futures import wait as futures_wait
from typing import Callable, Sequence

from repro.errors import WatchdogError
from repro.obs.log import NULL_LOG
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER
from repro.supervise.checkpoint import CheckpointStore, derive_keys
from repro.supervise.outcome import (
    KIND_CRASH,
    KIND_DIAGNOSIS,
    KIND_ERROR,
    KIND_TIMEOUT,
    JobFailure,
    JobOutcome,
    JobSuccess,
)
from repro.supervise.policy import SupervisePolicy


def _guarded(fn: Callable, payload):
    """Worker entry point: never lets a job exception escape the worker.

    Returns ``("ok", result)`` or ``("error", type_name, message,
    traceback_text, poison)`` — a crashed *process* is the only failure
    that does not come back through this envelope.
    """
    try:
        return ("ok", fn(payload))
    except Exception as exc:
        return (
            "error",
            type(exc).__name__,
            str(exc),
            traceback.format_exc(),
            isinstance(exc, WatchdogError),
        )


class PoolLease:
    """A reusable worker-pool slot shared by consecutive supervised runs.

    A :class:`Supervisor` normally builds a fresh
    :class:`~concurrent.futures.ProcessPoolExecutor` per :meth:`run`
    and tears it down on exit.  That is correct but wasteful for
    lock-stepped protocols (the windowed cross-shard engine issues one
    supervised run *per window*) where worker processes also hold warm
    module-level state.  A lease keeps one executor alive across runs:

    - :meth:`executor` hands the current pool to a supervisor, creating
      (or growing) it on demand;
    - :meth:`discard` kills it outright — the supervisor calls this on a
      crash or a hung-job kill, so a poisoned pool is never reused;
    - :meth:`close` shuts it down at end of session.

    Correctness never depends on the lease: every supervised job is
    pure, so a discarded pool only costs warm state, not result bytes.
    """

    def __init__(self):
        self._executor: ProcessPoolExecutor | None = None
        self._workers = 0

    def executor(self, ctx, workers: int) -> ProcessPoolExecutor:
        """The live pool, built (or rebuilt larger) on demand."""
        if self._executor is not None and self._workers < workers:
            self.discard()
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=workers, mp_context=ctx,
            )
            self._workers = workers
        return self._executor

    def owns(self, executor) -> bool:
        return executor is not None and executor is self._executor

    def discard(self) -> None:
        """Kill the pool now (hung or crashed workers included)."""
        if self._executor is not None:
            Supervisor._kill_executor(self._executor)
            self._executor = None
            self._workers = 0

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
            self._workers = 0

    def __enter__(self) -> "PoolLease":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class _Job:
    """Mutable supervision state for one pending job."""

    __slots__ = (
        "index", "payload", "key", "label", "failures", "crash_strikes",
        "not_before",
    )

    def __init__(self, index: int, payload, key: str, label: str | None):
        self.index = index
        self.payload = payload
        self.key = key
        self.label = label
        self.failures = 0        # attributed failures: error / timeout
        self.crash_strikes = 0   # pool crashes while this job was in flight
        self.not_before = 0.0    # monotonic embargo from backoff

    @property
    def attempts(self) -> int:
        """Attempts consumed so far (for outcome reporting)."""
        return self.failures + self.crash_strikes


class Supervisor:
    """Run independent jobs under timeouts, retries, and checkpoints.

    ``workers`` is the resolved pool size (1 = in-process serial, where
    exceptions are still converted to typed outcomes and checkpoints
    still work, but hung-job detection is impossible and pool-level
    faults cannot occur).  ``tracer`` receives ``job.retry`` /
    ``job.timeout`` / ``job.quarantine`` records; :attr:`metrics` counts
    the same events for the ``repro-metrics-v1`` catalog.

    ``diagnosis`` is a :class:`repro.diagnose.DiagnosisHook` already
    attached to the campaign tracer: each completed job's trace segment
    is scored, recorded as ``diagnose.*`` metrics and a
    ``diagnosis.verdict`` trace record, and — when the hook was built
    with ``quarantine=True`` — a pathological verdict quarantines the
    job (kind ``diagnosis``) instead of completing it.  Diagnosis needs
    the trace stream, which only exists in-process, so it pairs with
    ``workers=1`` + a tracer (the configuration tracing already forces).

    ``remedy`` is a :class:`repro.remedy.RemedyEngine`: completed jobs
    that drew diagnosis findings and every quarantine are forwarded to
    it so remediation playbooks can probe and classify the root cause.
    Remediation observes only — it never changes an outcome, the
    checkpoint store, or the campaign's trace-derived diagnosis.
    """

    def __init__(
        self,
        workers: int = 1,
        start_method: str | None = None,
        policy: SupervisePolicy | None = None,
        checkpoint: CheckpointStore | None = None,
        tracer=None,
        log=None,
        diagnosis=None,
        remedy=None,
        pool: "PoolLease | None" = None,
    ):
        self.workers = max(1, workers)
        self.start_method = start_method
        self.pool = pool
        self.policy = policy if policy is not None else SupervisePolicy()
        self.policy.validate()
        self.checkpoint = checkpoint
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.log = log if log is not None else NULL_LOG
        self.metrics = MetricsRegistry()
        self.diagnosis = diagnosis
        self.remedy = remedy
        if remedy is not None:
            remedy.bind_runtime(
                tracer=self.tracer, metrics=self.metrics, log=self.log,
            )

    # ------------------------------------------------------------------
    # Entry point.
    # ------------------------------------------------------------------

    def run(
        self,
        fn: Callable,
        payloads: Sequence,
        keys: Sequence[str] | None = None,
        labels: Sequence[str] | None = None,
    ) -> list[JobOutcome]:
        """Run ``fn`` over ``payloads``; outcomes align with ``payloads``.

        ``keys`` overrides the content digest per job (same length as
        ``payloads``); ``labels`` attaches human-readable hints used in
        checkpoint records and progress lines.  A payload with no stable
        content digest (a closure) gets a positional volatile key when
        there is no checkpoint to corrupt; with a checkpoint attached it
        raises :class:`~repro.errors.SuperviseError` instead.

        Jobs sharing one content key are *deduplicated*: the first
        occurrence runs, the rest reuse its outcome (jobs are pure, so
        the duplicates' results are byte-identical by construction).
        Volatile keys carry no content identity and are never deduped.
        """
        n = len(payloads)
        if keys is None:
            keys = derive_keys(payloads, durable=self.checkpoint is not None)
        if labels is None:
            labels = [None] * n
        outcomes: list[JobOutcome | None] = [None] * n
        self.metrics.counter("supervise.jobs").inc(n)

        jobs: deque[_Job] = deque()
        hits = 0
        primaries: dict[str, int] = {}
        duplicates: list[tuple[int, str, int]] = []  # (index, key, primary)
        for index, (payload, key, label) in enumerate(
            zip(payloads, keys, labels)
        ):
            # Dedupe before the store lookup so a duplicate neither
            # re-reads the store nor skews cache hit/miss accounting.
            primary = primaries.get(key)
            if primary is not None:
                duplicates.append((index, key, primary))
                continue
            # `is not None`, not truthiness: an *empty* store has
            # __len__ == 0 and must still be consulted so cache
            # accounting sees the miss.
            stored = (
                self.checkpoint.get(key)
                if self.checkpoint is not None else None
            )
            if stored is not None:
                result, attempts = stored
                outcomes[index] = JobSuccess(
                    index=index, key=key, result=result,
                    attempts=attempts, from_checkpoint=True,
                )
                hits += 1
                continue
            if not key.startswith("volatile-"):
                primaries[key] = index
            jobs.append(_Job(index, payload, key, label))
        if hits:
            self.metrics.counter("supervise.checkpoint_hits").inc(hits)
            self.log.info(
                f"resume: skipped {hits}/{n} jobs already checkpointed"
            )
        if duplicates:
            self.metrics.counter("supervise.deduped").inc(len(duplicates))
            self.log.info(
                f"dedup: {len(duplicates)}/{n} jobs share another job's "
                f"content key; running each key once"
            )

        if jobs:
            if min(self.workers, len(jobs)) <= 1:
                self._run_serial(fn, jobs, outcomes)
            else:
                self._run_pooled(fn, jobs, outcomes)

        # Mirror each primary's outcome into its duplicates' slots (the
        # supervisor fills every primary slot before returning, so the
        # lookup cannot miss).
        for index, key, primary in duplicates:
            outcome = outcomes[primary]
            if outcome.ok:
                outcomes[index] = JobSuccess(
                    index=index, key=key, result=outcome.result,
                    attempts=outcome.attempts,
                    from_checkpoint=outcome.from_checkpoint,
                )
            else:
                outcomes[index] = JobFailure(
                    index=index, key=key, kind=outcome.kind,
                    message=outcome.message, attempts=outcome.attempts,
                    error_type=outcome.error_type,
                    traceback=outcome.traceback,
                )
        return outcomes  # type: ignore[return-value]  # every slot filled

    # ------------------------------------------------------------------
    # Shared bookkeeping.
    # ------------------------------------------------------------------

    def _complete(self, outcomes, job: _Job, result) -> None:
        if self.diagnosis is not None and not self._diagnose(
            outcomes, job, result
        ):
            return  # pathological verdict escalated to quarantine
        outcome = JobSuccess(
            index=job.index, key=job.key, result=result,
            attempts=job.attempts + 1,
        )
        outcomes[job.index] = outcome
        if self.checkpoint is not None:
            self.checkpoint.record_success(
                job.key, result, attempts=outcome.attempts, label=job.label,
            )

    def _diagnose(self, outcomes, job: _Job, result) -> bool:
        """Score the job's trace segment; False quarantines the job.

        Runs before the success is recorded so a quarantined-by-verdict
        job is never checkpointed (a later resume re-runs and re-judges
        it).  A flagged-but-not-quarantined job is handed to the remedy
        engine (with its result, for digest comparison probes).
        """
        verdict = self.diagnosis.job_completed(job.index, job.key)
        self.metrics.gauge("diagnose.connections").set(verdict.connections)
        self.metrics.counter("diagnose.findings").inc(verdict.findings)
        if verdict.findings:
            self.metrics.counter("diagnose.flagged_jobs").inc()
            self.log.info(
                f"diagnosis: job {job.index} ({job.key[:12]}): "
                f"{verdict.describe()}"
            )
        if self.tracer.enabled:
            self.tracer.diagnosis_verdict(
                job.index, job.key, verdict.connections,
                verdict.findings, list(verdict.classes),
                verdict.pathological,
            )
        if verdict.pathological and self.diagnosis.quarantine:
            self.metrics.counter("diagnose.quarantined").inc()
            self._quarantine(
                outcomes, job, KIND_DIAGNOSIS, None,
                f"diagnosis flagged pathological behavior: "
                f"{', '.join(verdict.classes)}", None,
            )
            return False
        if verdict.findings and self.remedy is not None:
            self.remedy.job_flagged(
                job.index, job.key, job.label,
                verdict.findings, verdict.classes, result,
            )
        return True

    def _quarantine(
        self, outcomes, job: _Job, kind: str,
        error_type: str | None, message: str, tb: str | None,
    ) -> None:
        failure = JobFailure(
            index=job.index, key=job.key, kind=kind,
            message=message, attempts=job.attempts,
            error_type=error_type, traceback=tb,
        )
        outcomes[job.index] = failure
        self.metrics.counter("supervise.quarantined").inc()
        if self.tracer.enabled:
            self.tracer.job_quarantine(
                job.key, job.index, job.attempts, kind,
                error=error_type, message=message,
            )
        if self.checkpoint is not None:
            self.checkpoint.record_failure(job.key, failure)
        self.log.info(f"quarantined: {failure.describe()}")
        if self.remedy is not None:
            self.remedy.job_quarantined(
                job.index, job.key, job.label, kind, error_type, message,
            )

    def _schedule_retry(self, job: _Job, kind: str) -> None:
        """Embargo a failed job for its deterministic backoff window."""
        backoff = self.policy.backoff_s(job.failures + job.crash_strikes)
        job.not_before = time.monotonic() + backoff
        self.metrics.counter("supervise.retries").inc()
        if self.tracer.enabled:
            self.tracer.job_retry(
                job.key, job.index, job.attempts, kind, backoff_s=backoff,
            )

    def _failed(
        self, outcomes, pending: deque, job: _Job, kind: str,
        error_type: str | None, message: str, tb: str | None,
        poison: bool,
    ) -> None:
        """One attributed failure: retry with backoff, or quarantine."""
        job.failures += 1
        if kind == KIND_TIMEOUT:
            self.metrics.counter("supervise.timeouts").inc()
            if self.tracer.enabled:
                self.tracer.job_timeout(
                    job.key, job.index, job.attempts,
                    timeout_s=self.policy.job_timeout_s or 0.0,
                )
        else:
            self.metrics.counter("supervise.errors").inc()
        if poison or job.failures >= self.policy.max_attempts:
            self._quarantine(outcomes, job, kind, error_type, message, tb)
        else:
            self._schedule_retry(job, kind)
            pending.append(job)

    def _crashed(self, outcomes, pending: deque, job: _Job) -> None:
        """The pool died while this job was in flight."""
        job.crash_strikes += 1
        self.metrics.counter("supervise.crashes").inc()
        if job.crash_strikes >= self.policy.max_crash_strikes:
            self._quarantine(
                outcomes, job, KIND_CRASH, None,
                "worker process died repeatedly under this job", None,
            )
        else:
            self._schedule_retry(job, KIND_CRASH)
            pending.append(job)

    # ------------------------------------------------------------------
    # Serial execution (workers == 1).
    # ------------------------------------------------------------------

    def _run_serial(self, fn, jobs: deque, outcomes) -> None:
        pending = deque(jobs)
        while pending:
            job = pending.popleft()
            delay = job.not_before - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            envelope = _guarded(fn, job.payload)
            if envelope[0] == "ok":
                self._complete(outcomes, job, envelope[1])
            else:
                _, error_type, message, tb, poison = envelope
                self._failed(
                    outcomes, pending, job, KIND_ERROR,
                    error_type, message, tb, poison,
                )

    # ------------------------------------------------------------------
    # Pooled execution (workers > 1).
    # ------------------------------------------------------------------

    def _new_executor(self, ctx, workers: int) -> ProcessPoolExecutor:
        if self.pool is not None:
            return self.pool.executor(ctx, workers)
        return ProcessPoolExecutor(max_workers=workers, mp_context=ctx)

    def _discard_executor(self, executor: ProcessPoolExecutor) -> None:
        """Retire a broken/hung pool, through the lease when it owns it."""
        if self.pool is not None and self.pool.owns(executor):
            self.pool.discard()
        else:
            self._kill_executor(executor)

    @staticmethod
    def _kill_executor(executor: ProcessPoolExecutor) -> None:
        """Tear a pool down *now*, including hung workers."""
        processes = getattr(executor, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.kill()
            except Exception:
                pass
        executor.shutdown(wait=False, cancel_futures=True)

    def _pop_eligible(self, pending: deque) -> _Job | None:
        """The first job whose backoff embargo has expired."""
        now = time.monotonic()
        for _ in range(len(pending)):
            job = pending.popleft()
            if job.not_before <= now:
                return job
            pending.append(job)
        return None

    def _run_pooled(self, fn, jobs: deque, outcomes) -> None:
        policy = self.policy
        workers = min(self.workers, len(jobs))
        ctx = multiprocessing.get_context(self.start_method)
        pending: deque[_Job] = deque(jobs)
        executor = self._new_executor(ctx, workers)
        # future -> (job, wall-clock deadline or None, owning executor)
        inflight: dict = {}
        try:
            while pending or inflight:
                while pending and len(inflight) < workers:
                    job = self._pop_eligible(pending)
                    if job is None:
                        break
                    future = executor.submit(_guarded, fn, job.payload)
                    deadline = (
                        time.monotonic() + policy.job_timeout_s
                        if policy.job_timeout_s is not None else None
                    )
                    inflight[future] = (job, deadline, executor)

                if not inflight:
                    time.sleep(policy.poll_interval_s)
                    continue

                done, _ = futures_wait(
                    set(inflight),
                    timeout=policy.poll_interval_s,
                    return_when=FIRST_COMPLETED,
                )

                current_broken = False
                for future in done:
                    job, _, owner = inflight.pop(future)
                    try:
                        envelope = future.result()
                    except Exception:
                        # The owning pool died under this job.  Futures
                        # from an already-replaced pool don't force
                        # another rebuild.
                        self._crashed(outcomes, pending, job)
                        if owner is executor:
                            current_broken = True
                        continue
                    if envelope[0] == "ok":
                        self._complete(outcomes, job, envelope[1])
                    else:
                        _, error_type, message, tb, poison = envelope
                        self._failed(
                            outcomes, pending, job, KIND_ERROR,
                            error_type, message, tb, poison,
                        )

                if current_broken:
                    self.metrics.counter("supervise.pool_restarts").inc()
                    self.log.info(
                        "worker pool died; restarting on a fresh pool"
                    )
                    self._discard_executor(executor)
                    executor = self._new_executor(ctx, workers)

                # Hung-worker detection: any in-flight job past its
                # deadline takes a timeout strike; the pool that ran it
                # is killed (there is no way to stop one worker), and
                # innocent in-flight jobs are requeued penalty-free.
                now = time.monotonic()
                hung = [
                    future
                    for future, (_, deadline, _owner) in inflight.items()
                    if deadline is not None and now > deadline
                ]
                if hung:
                    killed = set()
                    for future in hung:
                        job, _, owner = inflight.pop(future)
                        killed.add(owner)
                        self._failed(
                            outcomes, pending, job, KIND_TIMEOUT, None,
                            f"exceeded the {policy.job_timeout_s:.3g}s "
                            f"wall-clock budget", None, False,
                        )
                    for future in list(inflight):
                        job, _, owner = inflight[future]
                        if owner in killed:
                            del inflight[future]
                            job.not_before = 0.0
                            pending.appendleft(job)
                    for owner in killed:
                        self._discard_executor(owner)
                    self.metrics.counter("supervise.pool_restarts").inc(
                        len(killed)
                    )
                    if executor in killed:
                        executor = self._new_executor(ctx, workers)
        finally:
            # A leased pool outlives the run by design; the lease owner
            # closes it.  Anything else is torn down here as before.
            if not (self.pool is not None and self.pool.owns(executor)):
                executor.shutdown(wait=False, cancel_futures=True)
