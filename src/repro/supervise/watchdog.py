"""In-simulation watchdog budgets: fail fast on runaway configurations.

A discrete-event run is bounded in *simulated* time by construction
(``sim.run(until=...)``), but not in *work*: a config near a stability
edge can generate events far faster than the clock advances (retransmit
storms, zero-delay feedback loops), turning one campaign job into an
unbounded wall-clock sink.  A :class:`Watchdog` attached to
:func:`~repro.loadgen.lancet.run_benchmark` bounds both axes:

- ``max_events`` caps executed simulator callbacks (enforced by
  :meth:`repro.sim.loop.Simulator.set_event_budget`);
- ``max_sim_time_ns`` caps the run's total simulated horizon
  (warmup + measurement), rejected before the testbed is even built.

Both violations raise :class:`~repro.errors.WatchdogError` — a *typed*
error, so a campaign supervisor can quarantine the config as poison
instead of retrying work that will fail identically every time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import SuperviseError


@dataclass(frozen=True)
class Watchdog:
    """Per-run budgets; ``None`` disables the corresponding check."""

    max_events: int | None = None
    max_sim_time_ns: int | None = None

    def scaled(self, factor: float) -> Watchdog:
        """A watchdog with every defined budget multiplied by ``factor``.

        The remediation layer's ``relax-watchdog`` playbook probes a
        quarantined job with a slackened budget — a run that succeeds
        under ``scaled(4)`` blew a budget set too tight, while one that
        still fails is a genuine runaway.  Budgets round up, so scaling
        never tightens.
        """
        if factor <= 0:
            raise SuperviseError(
                f"watchdog scale factor must be positive, got {factor}"
            )
        return Watchdog(
            max_events=(
                None if self.max_events is None
                else math.ceil(self.max_events * factor)
            ),
            max_sim_time_ns=(
                None if self.max_sim_time_ns is None
                else math.ceil(self.max_sim_time_ns * factor)
            ),
        )

    def validate(self) -> None:
        """Raise on nonsensical budgets."""
        if self.max_events is not None and self.max_events <= 0:
            raise SuperviseError(
                f"watchdog max_events must be positive, got {self.max_events}"
            )
        if self.max_sim_time_ns is not None and self.max_sim_time_ns <= 0:
            raise SuperviseError(
                f"watchdog max_sim_time_ns must be positive, "
                f"got {self.max_sim_time_ns}"
            )
