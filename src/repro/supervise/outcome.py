"""Typed per-job outcomes: what a supervised campaign returns.

Every job ends as exactly one of two records, index-aligned with the
submitted job list — never a ``None`` hole, never a half-filled result
list.  A :class:`JobFailure` is data, not an exception: the supervisor
records it and keeps the campaign alive; the strict entry points
(:func:`repro.parallel.run_campaign` and friends) convert any failure
into a :class:`~repro.errors.CampaignError` *after* the whole campaign
has run, with the full outcome list attached for salvage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

#: Failure kinds, in the order the supervisor distinguishes them.
KIND_ERROR = "error"          # the job raised inside the worker
KIND_TIMEOUT = "timeout"      # the job exceeded its wall-clock budget
KIND_CRASH = "crash"          # the worker process died under the job
KIND_DIAGNOSIS = "diagnosis"  # the diagnosis hook flagged it pathological


@dataclass(frozen=True)
class JobSuccess:
    """One job's result, with its supervision history."""

    index: int
    key: str
    result: object
    attempts: int = 1
    from_checkpoint: bool = False

    @property
    def ok(self) -> bool:
        return True


@dataclass(frozen=True)
class JobFailure:
    """One quarantined job: every retry exhausted (or poison-typed).

    ``kind`` is one of ``error`` / ``timeout`` / ``crash``;
    ``error_type`` is the exception class name for ``error`` kinds;
    ``traceback`` carries the worker-side traceback text when one was
    captured.
    """

    index: int
    key: str
    kind: str
    message: str
    attempts: int
    error_type: str | None = None
    traceback: str | None = None

    @property
    def ok(self) -> bool:
        return False

    def describe(self) -> str:
        """One human line for logs and CampaignError messages."""
        error = f" [{self.error_type}]" if self.error_type else ""
        return (
            f"job {self.index} ({self.key[:12]}): {self.kind}{error} "
            f"after {self.attempts} attempt(s): {self.message}"
        )


JobOutcome = Union[JobSuccess, JobFailure]


def split_outcomes(
    outcomes: list[JobOutcome],
) -> tuple[list[JobSuccess], list[JobFailure]]:
    """Partition an outcome list, preserving order."""
    successes = [o for o in outcomes if o.ok]
    failures = [o for o in outcomes if not o.ok]
    return successes, failures
