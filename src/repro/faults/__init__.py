"""Deterministic fault injection and the vocabulary to describe it.

``repro.faults`` makes the clean-testbed assumption explicit and
optional: a :class:`FaultPlan` describes a network-misbehavior scenario
(bursty loss, jitter/reordering, link flaps, receiver stalls, metadata
corruption), and a :class:`FaultInjector` wires it into a simulation at
the link, NIC, socket, and metadata-exchange layers.  With no plan
attached every injection point is a single ``is None`` check — fault
support is zero-cost when off, and runs without faults are byte-
identical to builds without this package.
"""

from repro.faults.injector import (
    DROP,
    EpisodeLog,
    ExchangeFaultHook,
    FaultInjector,
    LinkFaultHook,
    NicFaultHook,
)
from repro.faults.plan import (
    FAULT_PLANS,
    DelayJitter,
    ExchangeFaults,
    FaultPlan,
    GilbertElliott,
    LinkFlap,
    NicFaults,
    ReceiverStall,
    named_plan,
)

__all__ = [
    "DROP",
    "DelayJitter",
    "EpisodeLog",
    "ExchangeFaultHook",
    "ExchangeFaults",
    "FAULT_PLANS",
    "FaultInjector",
    "FaultPlan",
    "GilbertElliott",
    "LinkFaultHook",
    "LinkFlap",
    "NicFaultHook",
    "NicFaults",
    "ReceiverStall",
    "named_plan",
]
