"""Fault plans: declarative, seed-deterministic network misbehavior.

The paper's testbed is lossless, and the reproduction inherited that
assumption everywhere above the link: the estimator trusted every
metadata exchange and the toggler trusted every sample.  A
:class:`FaultPlan` is the declarative half of the chaos story — it
*describes* a misbehavior scenario; :class:`repro.faults.injector
.FaultInjector` binds it to a simulator plus RNG registry and injects it
at the link, NIC, socket and exchange layers.

Every component is an immutable dataclass, so plans are hashable,
picklable (they ride inside ``BenchConfig`` through the parallel
runner), and cheap to scale: :meth:`FaultPlan.scaled` multiplies every
intensity-like knob by a factor, which is how the chaos driver sweeps
fault intensity with one preset.

Components:

- :class:`GilbertElliott` — the classic two-state bursty loss chain:
  mostly-clean *good* state, lossy *bad* state, per-packet transitions.
- :class:`DelayJitter` — random extra propagation delay; because each
  packet is delayed independently, jitter also reorders.
- :class:`LinkFlap` — periodic blackout windows in which the link drops
  every packet (a flapping port or a rerouting transient).
- :class:`ReceiverStall` — the receiving application stops reading for a
  window, so the unread queue grows and the receive window slams shut.
- :class:`NicFaults` — ingress-side drops (ring overrun) and deferred
  interrupt processing (IRQ starvation).
- :class:`ExchangeFaults` — the metadata exchange's own failure modes:
  dropped, corrupted, or stale (replayed) peer states.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import FaultError
from repro.units import msecs, usecs


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise FaultError(f"{name} must be a probability in [0, 1]: {value}")


def _scale_probability(value: float, factor: float) -> float:
    return min(1.0, value * factor)


@dataclass(frozen=True)
class GilbertElliott:
    """Two-state bursty loss (Gilbert–Elliott).

    Each packet first advances the chain — with probability
    ``p_good_bad`` a good link turns bad, with ``p_bad_good`` a bad link
    recovers — then is dropped with the current state's loss
    probability.  Mean burst length is ``1 / p_bad_good`` packets.
    """

    p_good_bad: float = 0.02
    p_bad_good: float = 0.25
    loss_good: float = 0.0005
    loss_bad: float = 0.3

    def validate(self) -> None:
        """Raise on out-of-range probabilities."""
        for name in ("p_good_bad", "p_bad_good", "loss_good", "loss_bad"):
            _check_probability(name, getattr(self, name))

    def scaled(self, factor: float) -> "GilbertElliott":
        """Scale burst frequency and in-burst loss by ``factor``."""
        return replace(
            self,
            p_good_bad=_scale_probability(self.p_good_bad, factor),
            loss_good=_scale_probability(self.loss_good, factor),
            loss_bad=_scale_probability(self.loss_bad, factor),
        )


@dataclass(frozen=True)
class DelayJitter:
    """Random extra one-way delay, uniform in [0, ``jitter_ns``].

    ``probability`` is the fraction of packets jittered; a jittered
    packet can arrive after packets serialized later, so this is also
    the reordering fault.
    """

    jitter_ns: int = usecs(200)
    probability: float = 0.3

    def validate(self) -> None:
        """Raise on negative jitter or bad probability."""
        if self.jitter_ns < 0:
            raise FaultError(f"jitter must be >= 0 ns: {self.jitter_ns}")
        _check_probability("probability", self.probability)

    def scaled(self, factor: float) -> "DelayJitter":
        """Scale the jitter magnitude by ``factor``."""
        return replace(self, jitter_ns=round(self.jitter_ns * factor))


@dataclass(frozen=True)
class LinkFlap:
    """Periodic total blackout: every ``period_ns`` the link goes dark
    for ``down_ns`` (drops everything), starting at ``start_ns``."""

    period_ns: int = msecs(50)
    down_ns: int = msecs(5)
    start_ns: int = 0

    def validate(self) -> None:
        """Raise on an impossible flap schedule."""
        if self.period_ns <= 0:
            raise FaultError(f"flap period must be positive: {self.period_ns}")
        if not 0 <= self.down_ns <= self.period_ns:
            raise FaultError(
                f"blackout {self.down_ns} ns must fit the period "
                f"{self.period_ns} ns"
            )
        if self.start_ns < 0:
            raise FaultError(f"flap start must be >= 0: {self.start_ns}")

    def scaled(self, factor: float) -> "LinkFlap":
        """Scale the blackout fraction of each period by ``factor``."""
        return replace(
            self, down_ns=min(self.period_ns, round(self.down_ns * factor))
        )


@dataclass(frozen=True)
class ReceiverStall:
    """The receiving application stops calling ``read()`` for
    ``stall_ns`` out of every ``period_ns`` (GC pause, page fault storm,
    noisy neighbor).  Unread bytes pile up and the advertised window
    closes — the failure mode Dapper calls a receiver-limited flow."""

    period_ns: int = msecs(40)
    stall_ns: int = msecs(8)
    start_ns: int = 0

    def validate(self) -> None:
        """Raise on an impossible stall schedule."""
        if self.period_ns <= 0:
            raise FaultError(f"stall period must be positive: {self.period_ns}")
        if not 0 <= self.stall_ns <= self.period_ns:
            raise FaultError(
                f"stall {self.stall_ns} ns must fit the period "
                f"{self.period_ns} ns"
            )
        if self.start_ns < 0:
            raise FaultError(f"stall start must be >= 0: {self.start_ns}")

    def scaled(self, factor: float) -> "ReceiverStall":
        """Scale the stalled fraction of each period by ``factor``."""
        return replace(
            self, stall_ns=min(self.period_ns, round(self.stall_ns * factor))
        )


@dataclass(frozen=True)
class NicFaults:
    """Ingress NIC misbehavior: ``rx_drop_probability`` models ring
    overrun (the packet made it over the wire and dies in the host),
    ``rx_defer_ns`` defers ingress processing by up to that long
    (interrupt starvation under host overload)."""

    rx_drop_probability: float = 0.0
    rx_defer_ns: int = 0
    rx_defer_probability: float = 0.0

    def validate(self) -> None:
        """Raise on out-of-range knobs."""
        _check_probability("rx_drop_probability", self.rx_drop_probability)
        _check_probability("rx_defer_probability", self.rx_defer_probability)
        if self.rx_defer_ns < 0:
            raise FaultError(f"rx defer must be >= 0 ns: {self.rx_defer_ns}")

    def scaled(self, factor: float) -> "NicFaults":
        """Scale drop/defer intensity by ``factor``."""
        return replace(
            self,
            rx_drop_probability=_scale_probability(
                self.rx_drop_probability, factor
            ),
            rx_defer_ns=round(self.rx_defer_ns * factor),
        )


@dataclass(frozen=True)
class ExchangeFaults:
    """Metadata-exchange failure modes, applied per received state:
    dropped outright, corrupted (random counter bit-flips), or replaced
    with a stale replay of an earlier state."""

    drop_probability: float = 0.0
    corrupt_probability: float = 0.0
    stale_probability: float = 0.0

    def validate(self) -> None:
        """Raise on out-of-range probabilities."""
        for name in (
            "drop_probability", "corrupt_probability", "stale_probability"
        ):
            _check_probability(name, getattr(self, name))

    def scaled(self, factor: float) -> "ExchangeFaults":
        """Scale every probability by ``factor``."""
        return replace(
            self,
            drop_probability=_scale_probability(self.drop_probability, factor),
            corrupt_probability=_scale_probability(
                self.corrupt_probability, factor
            ),
            stale_probability=_scale_probability(
                self.stale_probability, factor
            ),
        )


_DIRECTIONS = ("forward", "backward")


@dataclass(frozen=True)
class FaultPlan:
    """One complete misbehavior scenario.

    Every component is optional; ``directions`` restricts the wire-level
    faults (loss, jitter, flap, NIC) to one direction of the
    point-to-point pair ("forward" is client→server).  Receiver stalls
    and exchange faults are attached per endpoint by the injector
    regardless of direction.
    """

    name: str = "custom"
    loss: GilbertElliott | None = None
    jitter: DelayJitter | None = None
    flap: LinkFlap | None = None
    stall: ReceiverStall | None = None
    nic: NicFaults | None = None
    exchange: ExchangeFaults | None = None
    directions: tuple[str, ...] = _DIRECTIONS

    def validate(self) -> None:
        """Validate every present component and the direction set."""
        for direction in self.directions:
            if direction not in _DIRECTIONS:
                raise FaultError(
                    f"unknown direction {direction!r}; pick from {_DIRECTIONS}"
                )
        for component in (
            self.loss, self.jitter, self.flap, self.stall, self.nic,
            self.exchange,
        ):
            if component is not None:
                component.validate()

    @property
    def is_noop(self) -> bool:
        """Whether the plan injects nothing (every component absent)."""
        return all(
            component is None
            for component in (
                self.loss, self.jitter, self.flap, self.stall, self.nic,
                self.exchange,
            )
        )

    def scaled(self, factor: float) -> "FaultPlan":
        """Scale fault intensity; ``factor == 0`` yields a no-op plan.

        Probabilities and durations scale linearly (capped at their
        natural maxima); a zero factor drops every component so the
        chaos driver's intensity-0 point is *exactly* the fault-free
        configuration.
        """
        if factor < 0:
            raise FaultError(f"intensity factor must be >= 0: {factor}")
        if factor == 0:
            return FaultPlan(name=self.name, directions=self.directions)
        return replace(
            self,
            loss=self.loss.scaled(factor) if self.loss else None,
            jitter=self.jitter.scaled(factor) if self.jitter else None,
            flap=self.flap.scaled(factor) if self.flap else None,
            stall=self.stall.scaled(factor) if self.stall else None,
            nic=self.nic.scaled(factor) if self.nic else None,
            exchange=self.exchange.scaled(factor) if self.exchange else None,
        )


# ---------------------------------------------------------------------------
# Presets: the scenarios the chaos driver and CLI expose by name.
# ---------------------------------------------------------------------------

FAULT_PLANS: dict[str, FaultPlan] = {
    "bursty-loss": FaultPlan(name="bursty-loss", loss=GilbertElliott()),
    "jitter": FaultPlan(name="jitter", jitter=DelayJitter()),
    "blackout": FaultPlan(name="blackout", flap=LinkFlap()),
    "slow-receiver": FaultPlan(name="slow-receiver", stall=ReceiverStall()),
    "nic-overrun": FaultPlan(
        name="nic-overrun",
        nic=NicFaults(
            rx_drop_probability=0.01,
            rx_defer_ns=usecs(50),
            rx_defer_probability=0.05,
        ),
    ),
    "exchange-chaos": FaultPlan(
        name="exchange-chaos",
        exchange=ExchangeFaults(
            drop_probability=0.3,
            corrupt_probability=0.1,
            stale_probability=0.1,
        ),
    ),
    "mixed": FaultPlan(
        name="mixed",
        loss=GilbertElliott(p_good_bad=0.01, loss_bad=0.2),
        jitter=DelayJitter(jitter_ns=usecs(100), probability=0.2),
        stall=ReceiverStall(stall_ns=msecs(4)),
        exchange=ExchangeFaults(drop_probability=0.15,
                                corrupt_probability=0.05),
    ),
}


def named_plan(name: str) -> FaultPlan:
    """Look up a preset plan; raise :class:`FaultError` on unknown names."""
    plan = FAULT_PLANS.get(name)
    if plan is None:
        raise FaultError(
            f"unknown fault plan {name!r}; choose from "
            f"{sorted(FAULT_PLANS)}"
        )
    return plan
