"""The fault injector: binds a :class:`~repro.faults.plan.FaultPlan` to
one simulation and wires its hooks into the layers it targets.

Injection points (all zero-cost when no hook is attached):

- ``net/link.py`` — :meth:`FaultInjector.attach_link` installs a
  per-packet hook consulted after serialization: Gilbert–Elliott loss,
  blackout windows, and delay jitter (which reorders, because each
  packet's extra delay is independent).
- ``net/nic.py`` — :meth:`FaultInjector.attach_nic` installs an ingress
  hook: ring-overrun drops and deferred interrupt processing.
- ``tcp/socket.py`` — :meth:`FaultInjector.attach_receiver` schedules
  read-stall windows on a socket via ``set_read_stall``.
- ``core/exchange.py`` — :meth:`FaultInjector.attach_exchange` installs
  an option filter that drops, corrupts, or replays peer states.

Determinism: every hook draws from its own named stream of the
simulation's :class:`~repro.sim.rng.RngRegistry`, so a (seed, plan)
pair replays exactly and adding a fault stream never perturbs the
draws existing consumers see.
"""

from __future__ import annotations

from repro.core.exchange import OPTION_E2E, WirePeerState, WireQueueState
from repro.errors import FaultError
from repro.faults.plan import FaultPlan
from repro.units import msecs

#: Verdict constant for per-packet hooks: drop the packet.  Any
#: non-negative verdict is an extra delay in nanoseconds (0 = deliver
#: untouched).
DROP = -1

#: Episode clustering: fault events on one (class, target) closer than
#: this fold into a single labeled ground-truth episode.
EPISODE_MERGE_GAP_NS = msecs(20)


class EpisodeLog:
    """Labeled ground-truth episodes of what the injector inflicted.

    Hooks report each fault event (or window) as it happens; events on
    the same ``(class, target)`` within :data:`EPISODE_MERGE_GAP_NS` of
    each other merge into one episode, so a loss burst is one labeled
    interval rather than a hundred points.  The log is what detection
    recall is scored against (``repro diagnose --score``), exported via
    :meth:`FaultInjector.episodes` into the robustness JSON.

    Recording draws no randomness and schedules no events, so attaching
    it never perturbs the run it is labeling.
    """

    def __init__(self, merge_gap_ns: int = EPISODE_MERGE_GAP_NS):
        self._gap = merge_gap_ns
        self._open: dict[tuple[str, str], list] = {}
        self._closed: list[dict] = []

    def record(
        self, cls: str, target: str, start_ns: int, end_ns: int | None = None
    ) -> None:
        """Fold one fault event (or window) into the episode clustering."""
        end_ns = start_ns if end_ns is None else end_ns
        key = (cls, target)
        episode = self._open.get(key)
        if episode is not None and start_ns - episode[1] <= self._gap:
            episode[1] = max(episode[1], end_ns)
            episode[2] += 1
            return
        if episode is not None:
            self._close(key, episode)
        self._open[key] = [start_ns, end_ns, 1]

    def _close(self, key: tuple[str, str], episode: list) -> None:
        self._closed.append({
            "class": key[0],
            "target": key[1],
            "start_ns": episode[0],
            "end_ns": episode[1],
            "events": episode[2],
        })

    def episodes(self) -> list[dict]:
        """Every episode, open ones included, in (start, class) order."""
        out = list(self._closed)
        for key, episode in self._open.items():
            out.append({
                "class": key[0],
                "target": key[1],
                "start_ns": episode[0],
                "end_ns": episode[1],
                "events": episode[2],
            })
        out.sort(key=lambda e: (e["start_ns"], e["class"], e["target"]))
        return out


class _GilbertElliottChain:
    """The per-direction two-state loss chain."""

    __slots__ = ("_spec", "_rng", "bad", "bursts")

    def __init__(self, spec, rng):
        self._spec = spec
        self._rng = rng
        self.bad = False
        self.bursts = 0  # good->bad transitions taken

    def lost(self) -> bool:
        """Advance the chain one packet; True if that packet is lost."""
        spec = self._spec
        if self.bad:
            if self._rng.bernoulli(spec.p_bad_good):
                self.bad = False
        elif self._rng.bernoulli(spec.p_good_bad):
            self.bad = True
            self.bursts += 1
        return self._rng.bernoulli(
            spec.loss_bad if self.bad else spec.loss_good
        )


class LinkFaultHook:
    """Per-packet link verdicts: blackout, bursty loss, then jitter."""

    def __init__(
        self, sim, plan: FaultPlan, rng, tracer=None, src="link",
        episodes: EpisodeLog | None = None,
    ):
        from repro.obs.tracer import NULL_TRACER

        self._sim = sim
        self._rng = rng
        self._flap = plan.flap
        self._jitter = plan.jitter
        self._chain = (
            _GilbertElliottChain(plan.loss, rng) if plan.loss else None
        )
        self.loss_drops = 0
        self.blackout_drops = 0
        self.jittered = 0
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._src = src
        self._episodes = episodes

    def _in_blackout(self) -> bool:
        flap = self._flap
        now = self._sim.now
        if now < flap.start_ns:
            return False
        return (now - flap.start_ns) % flap.period_ns < flap.down_ns

    def __call__(self, packet) -> int:
        if self._flap is not None and self._in_blackout():
            self.blackout_drops += 1
            if self._episodes is not None:
                flap = self._flap
                since = (self._sim.now - flap.start_ns) % flap.period_ns
                start = self._sim.now - since
                # Label the whole analytic down-window, not just the one
                # packet that happened to probe it.
                self._episodes.record(
                    "blackout", self._src, start, start + flap.down_ns
                )
            if self._tracer.enabled:
                self._tracer.fault_verdict(self._src, "link", "blackout-drop")
            return DROP
        if self._chain is not None and self._chain.lost():
            self.loss_drops += 1
            if self._episodes is not None:
                self._episodes.record("loss", self._src, self._sim.now)
            if self._tracer.enabled:
                self._tracer.fault_verdict(self._src, "link", "loss-drop")
            return DROP
        jitter = self._jitter
        if (
            jitter is not None
            and jitter.jitter_ns > 0
            and self._rng.bernoulli(jitter.probability)
        ):
            self.jittered += 1
            delay = self._rng.uniform_ns(0, jitter.jitter_ns)
            if self._episodes is not None:
                self._episodes.record("jitter", self._src, self._sim.now)
            if self._tracer.enabled:
                self._tracer.fault_verdict(
                    self._src, "link", "jitter", delay_ns=delay
                )
            return delay
        return 0

    @property
    def drops(self) -> int:
        """Packets this hook dropped, all causes."""
        return self.loss_drops + self.blackout_drops


class NicFaultHook:
    """Ingress NIC verdicts: ring-overrun drops and deferred IRQs."""

    def __init__(
        self, plan: FaultPlan, rng, tracer=None, src="nic",
        episodes: EpisodeLog | None = None, sim=None,
    ):
        from repro.obs.tracer import NULL_TRACER

        self._sim = sim
        self._spec = plan.nic
        self._rng = rng
        self.drops = 0
        self.deferred = 0
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._src = src
        self._episodes = episodes if sim is not None else None

    def __call__(self, packet) -> int:
        spec = self._spec
        if spec.rx_drop_probability > 0 and self._rng.bernoulli(
            spec.rx_drop_probability
        ):
            self.drops += 1
            if self._episodes is not None:
                self._episodes.record("nic-overrun", self._src, self._sim.now)
            if self._tracer.enabled:
                self._tracer.fault_verdict(self._src, "nic", "ring-drop")
            return DROP
        if (
            spec.rx_defer_ns > 0
            and spec.rx_defer_probability > 0
            and self._rng.bernoulli(spec.rx_defer_probability)
        ):
            self.deferred += 1
            delay = self._rng.uniform_ns(0, spec.rx_defer_ns)
            if self._episodes is not None:
                self._episodes.record("jitter", self._src, self._sim.now)
            if self._tracer.enabled:
                self._tracer.fault_verdict(
                    self._src, "nic", "irq-defer", delay_ns=delay
                )
            return delay
        return 0


def _corrupt_state(state: WirePeerState, rng) -> WirePeerState:
    """Flip random bits in one randomly chosen wire counter."""
    queues = {
        "unacked": state.unacked,
        "unread": state.unread,
        "ackdelay": state.ackdelay,
    }
    victim = rng.choice(sorted(queues))
    wire = queues[victim]
    field = rng.choice(("time32", "total32", "integral32"))
    mangled = WireQueueState(wire.time32, wire.total32, wire.integral32)
    setattr(
        mangled, field, getattr(wire, field) ^ rng.getrandbits(32)
    )
    queues[victim] = mangled
    return WirePeerState(
        unacked=queues["unacked"],
        unread=queues["unread"],
        ackdelay=queues["ackdelay"],
    )


class ExchangeFaultHook:
    """Option filter for :meth:`MetadataExchange.on_receive`.

    Returns the (possibly rewritten) options dict, or None to drop the
    segment's options entirely.  The incoming dict is never mutated —
    a fresh dict is built for any rewrite, since the same dict object
    belongs to the segment.
    """

    def __init__(
        self, plan: FaultPlan, rng, tracer=None, src="exchange",
        episodes: EpisodeLog | None = None, sim=None,
    ):
        from repro.obs.tracer import NULL_TRACER

        self._sim = sim
        self._spec = plan.exchange
        self._rng = rng
        self._last_state: WirePeerState | None = None
        self.dropped = 0
        self.corrupted = 0
        self.staled = 0
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._src = src
        self._episodes = episodes if sim is not None else None

    def _mark(self) -> None:
        if self._episodes is not None:
            self._episodes.record("stale-exchange", self._src, self._sim.now)

    def __call__(self, options: dict) -> dict | None:
        state = options.get(OPTION_E2E)
        if state is None:
            return options
        spec = self._spec
        if spec.drop_probability > 0 and self._rng.bernoulli(
            spec.drop_probability
        ):
            self.dropped += 1
            self._mark()
            if self._tracer.enabled:
                self._tracer.fault_verdict(self._src, "exchange", "drop-option")
            rewritten = {
                key: value
                for key, value in options.items()
                if key != OPTION_E2E
            }
            return rewritten or None
        if (
            spec.stale_probability > 0
            and self._last_state is not None
            and self._rng.bernoulli(spec.stale_probability)
        ):
            self.staled += 1
            self._mark()
            if self._tracer.enabled:
                self._tracer.fault_verdict(self._src, "exchange", "stale-replay")
            rewritten = dict(options)
            rewritten[OPTION_E2E] = self._last_state
            return rewritten
        if spec.corrupt_probability > 0 and self._rng.bernoulli(
            spec.corrupt_probability
        ):
            self.corrupted += 1
            self._mark()
            if self._tracer.enabled:
                self._tracer.fault_verdict(self._src, "exchange", "corrupt")
            rewritten = dict(options)
            rewritten[OPTION_E2E] = _corrupt_state(state, self._rng)
            return rewritten
        self._last_state = state
        return options


class FaultInjector:
    """Binds one plan to one simulation; attaches hooks layer by layer.

    Construction validates the plan.  Attach methods are no-ops when the
    plan has nothing for that layer, so callers can attach uniformly.
    """

    def __init__(self, sim, plan: FaultPlan, rng, tracer=None):
        from repro.obs.tracer import NULL_TRACER

        if plan.is_noop:
            raise FaultError(
                "refusing to build an injector for a no-op plan; "
                "pass fault_plan=None instead"
            )
        plan.validate()
        self.sim = sim
        self.plan = plan
        self._rng = rng
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self.link_hooks: dict[str, LinkFaultHook] = {}
        self.nic_hooks: dict[str, NicFaultHook] = {}
        self.exchange_hooks: dict[str, ExchangeFaultHook] = {}
        self.stall_windows = 0
        self._stalled_sockets: list = []
        self.episode_log = EpisodeLog()

    # ------------------------------------------------------------------
    # Layer attachment.
    # ------------------------------------------------------------------

    def _wire_faults_for(self, direction: str) -> bool:
        return direction in self.plan.directions

    def attach_link(self, link, direction: str) -> None:
        """Install the wire-fault hook on one link direction."""
        if not self._wire_faults_for(direction):
            return
        plan = self.plan
        if plan.loss is None and plan.jitter is None and plan.flap is None:
            return
        hook = LinkFaultHook(
            self.sim,
            plan,
            self._rng.stream(f"faults.link.{direction}"),
            tracer=self._tracer,
            src=f"link.{direction}",
            episodes=self.episode_log,
        )
        link.set_fault_hook(hook)
        self.link_hooks[direction] = hook

    def attach_nic(self, nic, direction: str) -> None:
        """Install the ingress-fault hook on the NIC receiving
        ``direction`` traffic."""
        if self.plan.nic is None or not self._wire_faults_for(direction):
            return
        hook = NicFaultHook(
            self.plan,
            self._rng.stream(f"faults.nic.{direction}"),
            tracer=self._tracer,
            src=f"nic.{direction}",
            episodes=self.episode_log,
            sim=self.sim,
        )
        nic.set_rx_fault_hook(hook)
        self.nic_hooks[direction] = hook

    def attach_exchange(self, exchange, name: str) -> None:
        """Install the metadata-fault filter on one endpoint's exchange."""
        if self.plan.exchange is None:
            return
        hook = ExchangeFaultHook(
            self.plan,
            self._rng.stream(f"faults.exchange.{name}"),
            tracer=self._tracer,
            src=f"exchange.{name}",
            episodes=self.episode_log,
            sim=self.sim,
        )
        exchange.fault_hook = hook
        self.exchange_hooks[name] = hook

    def attach_receiver(self, socket) -> None:
        """Schedule periodic read-stall windows on a receiving socket."""
        spec = self.plan.stall
        if spec is None or spec.stall_ns == 0:
            return
        self._stalled_sockets.append(socket)
        tracer = self._tracer
        src = f"stall.{getattr(socket, 'name', 'socket')}"

        def stall_on() -> None:
            self.stall_windows += 1
            socket.set_read_stall(True)
            self.episode_log.record(
                "stall", src, self.sim.now, self.sim.now + spec.stall_ns
            )
            if tracer.enabled:
                tracer.fault_verdict(src, "socket", "stall-on")
            self.sim.call_after(spec.stall_ns, stall_off)

        def stall_off() -> None:
            socket.set_read_stall(False)
            if tracer.enabled:
                tracer.fault_verdict(src, "socket", "stall-off")
            self.sim.call_after(spec.period_ns - spec.stall_ns, stall_on)

        self.sim.call_at(max(self.sim.now, spec.start_ns), stall_on)

    # ------------------------------------------------------------------
    # Reporting.
    # ------------------------------------------------------------------

    def summary(self) -> dict:
        """Machine-readable injected-fault counters."""
        return {
            "plan": self.plan.name,
            "link": {
                direction: {
                    "loss_drops": hook.loss_drops,
                    "blackout_drops": hook.blackout_drops,
                    "jittered": hook.jittered,
                }
                for direction, hook in sorted(self.link_hooks.items())
            },
            "nic": {
                direction: {"drops": hook.drops, "deferred": hook.deferred}
                for direction, hook in sorted(self.nic_hooks.items())
            },
            "exchange": {
                name: {
                    "dropped": hook.dropped,
                    "corrupted": hook.corrupted,
                    "staled": hook.staled,
                }
                for name, hook in sorted(self.exchange_hooks.items())
            },
            "stall_windows": self.stall_windows,
        }

    def episodes(self) -> list[dict]:
        """Labeled ground-truth fault episodes inflicted so far."""
        return self.episode_log.episodes()
