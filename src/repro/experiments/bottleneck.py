"""Shared-bottleneck contention: N flows × one link, windowed cross-shard.

The regime the decomposed fan-in cannot reach: every flow's packets
contend for the *same* bottleneck link, so the flows' sub-simulations
are coupled and the plain shard map of :mod:`repro.sim.shard` does not
apply.  This experiment is the first consumer of the conservative
windowed engine (:mod:`repro.sim.sync`):

- **Flow component** ``i`` (components ``0..flows-1``): hosts
  ``sender{i}`` and ``rcv{i}`` with one TCP connection between them
  (the SET-heavy workload pushes data sender → receiver).  Each host's
  NIC egress is a zero-propagation access link — serialization is paid
  locally at line rate — whose receiver posts the packet to the net
  component with arrival ``now + propagation_delay_ns``.
- **Net component** (component ``flows``): one
  :class:`~repro.net.switch.Switch` whose ``rcv{i}`` ports all share
  *one* bottleneck :class:`~repro.net.link.Link` (the switch allows many
  port names per link), plus a per-sender return link for acks.  Both
  directions post back to the owning flow with the same ``+ P`` arrival.

Every cut edge therefore has latency exactly ``propagation_delay_ns``
— the engine's lookahead — and the window schedule is a pure function
of the config, never of the partition.  The output
(:class:`BottleneckResult`) is byte-identical across every ``(shards,
workers)`` combination; the golden-digest suite and the CI ``cmp``
smoke enforce it, exactly as for the fan-in.

Scope: this experiment measures transport-level end-to-end latency
under contention (per-flow means, the merged completion stream, and
bottleneck-link stats).  It deliberately carries no §3 counter
collectors or estimators — those live on the fan-in scenarios — so the
engine's contract is exercised without coupling it to the estimator
stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial

from repro.analysis.report import format_table
from repro.apps.kvstore import KVStore
from repro.apps.redis_client import ClientConfig, RedisClient
from repro.apps.redis_server import RedisServer, ServerConfig
from repro.errors import WorkloadError
from repro.host.host import Host, HostCosts
from repro.loadgen.arrivals import Workload, poisson_schedule
from repro.loadgen.stats import summarize
from repro.net.link import Link
from repro.net.switch import Switch
from repro.sim.loop import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.sync import Mailbox, SyncComponent, WindowPlan, run_windowed
from repro.tcp.connect import connect_pair
from repro.tcp.socket import TcpConfig
from repro.units import KIB, msecs, to_usecs, usecs


@dataclass(frozen=True)
class BottleneckConfig:
    """The shared-bottleneck scenario's knobs.

    ``propagation_delay_ns`` is the one-way latency of every cut edge
    (host ↔ switch fabric) and therefore the engine's lookahead: smaller
    values mean more, shorter windows.  ``bottleneck_bandwidth_bps`` is
    the shared link all receiver-bound traffic serializes through;
    ``access_bandwidth_bps`` paces each host's own egress and the
    per-sender return paths.
    """

    flows: int = 4
    total_rate_per_sec: float = 8_000.0
    bottleneck_bandwidth_bps: float = 400e6
    access_bandwidth_bps: float = 10e9
    propagation_delay_ns: int = usecs(500)
    forwarding_delay_ns: int = 500
    nagle: bool = False
    workload: Workload = field(
        default_factory=lambda: Workload(value_bytes=4 * KIB)
    )
    warmup_ns: int = msecs(40)
    measure_ns: int = msecs(150)
    seed: int = 1
    queue_sample_ns: int = usecs(100)

    @property
    def horizon_ns(self) -> int:
        return self.warmup_ns + self.measure_ns


@dataclass(frozen=True)
class FlowShardResult:
    """One flow component's output (picklable, partition-neutral)."""

    index: int
    mean_ns: float
    events: tuple
    events_executed: int


@dataclass(frozen=True)
class NetShardResult:
    """The net component's output: switch + bottleneck statistics."""

    index: int
    switch_packets: int
    bottleneck_packets: int
    bottleneck_bytes: int
    bottleneck_busy_ns: int
    bottleneck_peak_queue: int


def _flow_of(dst: str, flows: int) -> int:
    """Map a host name (``sender3`` / ``rcv3``) to its flow component."""
    for prefix in ("sender", "rcv"):
        if dst.startswith(prefix):
            try:
                index = int(dst[len(prefix):])
            except ValueError:
                break
            if 0 <= index < flows:
                return index
    raise WorkloadError(f"packet addressed to unknown host {dst!r}")


class _FlowComponent(SyncComponent):
    """One sender/receiver pair and its TCP connection."""

    def __init__(self, config: BottleneckConfig, index: int):
        self.index = index
        self.config = config
        sim = Simulator()
        rng = RngRegistry(config.seed)
        mailbox = Mailbox(index)
        net_index = config.flows
        propagation = config.propagation_delay_ns

        sender = Host(sim, f"sender{index}", costs=HostCosts())
        receiver = Host(sim, f"rcv{index}", costs=HostCosts())
        for host in (sender, receiver):
            cut = Link(
                sim, config.access_bandwidth_bps, 0,
                name=f"{host.name}->fabric",
            )
            host.nic.attach_egress(cut)
            cut.attach_receiver(
                lambda packet: mailbox.post(
                    sim.now + propagation, net_index, packet
                )
            )

        tcp_config = TcpConfig(nagle=config.nagle)
        client_sock, server_sock = connect_pair(
            sim, sender, receiver, tcp_config, tcp_config,
            name=f"conn{index}",
            conn_id=index + 1,
        )
        client = RedisClient(
            sim, sender, client_sock, config=ClientConfig(),
            name=f"lancet{index}",
        )
        server = RedisServer(
            sim, receiver, server_sock, store=KVStore(),
            config=ServerConfig(),
        )

        workload = config.workload
        for key_index in range(workload.keyspace):
            server.store.set(
                workload.make_key(key_index), workload.value_bytes
            )
        server.start()
        schedule = poisson_schedule(
            rng.stream(f"arrivals.{index}"),
            workload,
            config.total_rate_per_sec / config.flows,
            start_ns=sim.now,
            duration_ns=config.horizon_ns,
        )
        client.start(schedule)

        self.sim = sim
        self.client = client
        self.mailbox = mailbox
        self._nics = {
            sender.name: sender.nic,
            receiver.name: receiver.nic,
        }

    def deliver(self, message) -> None:
        packet = message.payload
        nic = self._nics.get(packet.dst)
        if nic is None:
            raise WorkloadError(
                f"flow {self.index} received a packet for {packet.dst!r}"
            )
        self.sim.call_at(message.arrival_ns, lambda: nic.receive(packet))

    def advance(self, until_ns: int) -> list:
        self.sim.run(until=until_ns)
        return self.mailbox.drain()

    def events_executed(self) -> int:
        return self.sim.events_executed

    def finish(self) -> FlowShardResult:
        config = self.config
        measure_start = config.warmup_ns
        measure_end = config.horizon_ns
        events = tuple(
            (r.completed_at, (r.kind, r.latency_ns))
            for r in self.client.records
            if measure_start <= r.completed_at <= measure_end
        )
        return FlowShardResult(
            index=self.index,
            mean_ns=summarize(
                [latency for _, (_, latency) in events]
            ).mean_ns,
            events=events,
            events_executed=self.sim.events_executed,
        )


class _NetComponent(SyncComponent):
    """The switch fabric: one shared bottleneck plus return paths."""

    def __init__(self, config: BottleneckConfig):
        self.index = config.flows
        self.config = config
        sim = Simulator()
        mailbox = Mailbox(self.index)
        propagation = config.propagation_delay_ns
        flows = config.flows

        def to_flow(packet) -> None:
            mailbox.post(
                sim.now + propagation, _flow_of(packet.dst, flows), packet
            )

        switch = Switch(
            sim, forwarding_delay_ns=config.forwarding_delay_ns
        )
        bottleneck = Link(
            sim, config.bottleneck_bandwidth_bps, 0, name="bottleneck"
        )
        bottleneck.attach_receiver(to_flow)
        for index in range(flows):
            # Every receiver-bound port shares the one bottleneck link:
            # this is where the flows contend.
            switch.attach_port(f"rcv{index}", bottleneck)
            ret = Link(
                sim, config.access_bandwidth_bps, 0,
                name=f"fabric->sender{index}",
            )
            ret.attach_receiver(to_flow)
            switch.attach_port(f"sender{index}", ret)

        self.peak_queue = 0

        def sample_queue() -> None:
            if bottleneck.queued > self.peak_queue:
                self.peak_queue = bottleneck.queued
            sim.call_after(config.queue_sample_ns, sample_queue)

        sim.call_after(config.queue_sample_ns, sample_queue)

        self.sim = sim
        self.switch = switch
        self.bottleneck = bottleneck
        self.mailbox = mailbox

    def deliver(self, message) -> None:
        packet = message.payload
        self.sim.call_at(
            message.arrival_ns, lambda: self.switch.receive(packet)
        )

    def advance(self, until_ns: int) -> list:
        self.sim.run(until=until_ns)
        return self.mailbox.drain()

    def events_executed(self) -> int:
        return self.sim.events_executed

    def finish(self) -> NetShardResult:
        return NetShardResult(
            index=self.index,
            switch_packets=self.switch.packets_forwarded,
            bottleneck_packets=self.bottleneck.packets_sent,
            bottleneck_bytes=self.bottleneck.bytes_sent,
            bottleneck_busy_ns=self.bottleneck.busy_ns,
            bottleneck_peak_queue=self.peak_queue,
        )


def _build_component(config: BottleneckConfig, index: int) -> SyncComponent:
    """Picklable component builder (component ``flows`` is the fabric)."""
    if index == config.flows:
        return _NetComponent(config)
    return _FlowComponent(config, index)


@dataclass
class BottleneckResult:
    """A shared-bottleneck run's measurements.

    Free of execution metadata in the same sense as the sharded fan-in
    result: ``windows`` and ``exchanged_events`` *are* included because
    both are pure functions of the config (the window schedule is
    partition-free and every inter-component message is exchanged even
    when co-located), so they cannot differ across ``(shards,
    workers)`` — which the byte-diff of this JSON proves on every run.
    """

    config: BottleneckConfig
    per_flow_mean_ns: list[float]
    aggregate_mean_ns: float
    merged_events: int
    merge_fingerprint: str
    bottleneck_utilization: float
    bottleneck_packets: int
    bottleneck_peak_queue: int
    switch_packets: int
    windows: int
    exchanged_events: int
    events_executed: int

    def render(self) -> str:
        rows = [
            (f"flow {index}", to_usecs(mean))
            for index, mean in enumerate(self.per_flow_mean_ns)
        ]
        rows.append(("aggregate", to_usecs(self.aggregate_mean_ns)))
        title = (
            f"Shared bottleneck: {self.config.flows} flows x "
            f"{self.config.bottleneck_bandwidth_bps / 1e6:,.0f} Mb/s at "
            f"{self.config.total_rate_per_sec:,.0f} RPS total, "
            f"nagle={'on' if self.config.nagle else 'off'}"
        )
        return format_table(
            ["series", "mean latency (us)"], rows, title=title
        )

    def to_json(self) -> str:
        """Canonical JSON (sorted keys, no whitespace) for byte-diffs."""
        import dataclasses
        import json

        return json.dumps(
            dataclasses.asdict(self),
            sort_keys=True,
            separators=(",", ":"),
            default=repr,
        )


def run_shared_bottleneck(
    config: BottleneckConfig,
    shards: int = 1,
    workers: int = 1,
    policy=None,
    checkpoint=None,
    tracer=None,
    metrics=None,
) -> BottleneckResult:
    """Run the shared-bottleneck scenario through the windowed engine.

    ``shards``/``workers`` choose the partition and pool; ``policy``,
    ``checkpoint`` and ``tracer`` thread through the supervised runner
    exactly as for :func:`~repro.experiments.fanin.run_fanin_sharded`
    (a checkpointed run resumes window by window).  Output is
    byte-identical for every ``(shards, workers)`` combination — the
    contract CI enforces by diffing ``--shards 2 --workers 2`` against
    the serial run.
    """
    from repro.sim.shard import merge_digest, merge_streams

    plan = WindowPlan(
        horizon_ns=config.horizon_ns,
        lookahead_ns=config.propagation_delay_ns,
    )
    sync = run_windowed(
        partial(_build_component, config),
        config.flows + 1, plan,
        shards=shards, workers=workers, policy=policy,
        checkpoint=checkpoint, tracer=tracer, metrics=metrics,
        label="bottleneck",
    )
    flows: list[FlowShardResult] = sync.results[: config.flows]
    net: NetShardResult = sync.results[config.flows]

    merged = merge_streams(
        (flow.index, list(flow.events)) for flow in flows
    )
    return BottleneckResult(
        config=config,
        per_flow_mean_ns=[flow.mean_ns for flow in flows],
        aggregate_mean_ns=summarize(
            [latency for _, _, _, (_, latency) in merged]
        ).mean_ns,
        merged_events=len(merged),
        merge_fingerprint=merge_digest(merged),
        bottleneck_utilization=net.bottleneck_busy_ns / config.horizon_ns,
        bottleneck_packets=net.bottleneck_packets,
        bottleneck_peak_queue=net.bottleneck_peak_queue,
        switch_packets=net.switch_packets,
        windows=sync.windows,
        exchanged_events=sync.exchanged_events,
        events_executed=sync.events_executed,
    )
