"""E4 — Figure 4b: heterogeneous 95:5 SET:GET workload.

5% of requests are GETs whose 16 KiB responses dwarf the SET responses
(one GET reply carries ~34× the bytes of 95 SET replies' worth of +OK).
Byte-granularity estimation consequently mis-weights the traffic: the
estimated curves no longer track the (SET-dominated) measured request
latency, and the estimated cutoff diverges from the measured one —
exactly the failure the paper demonstrates to motivate syscall/hint
units (§3.3).  The hint-based estimate, recorded in the same runs,
stays accurate.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.analysis.cutoff import crossover_rate
from repro.analysis.report import format_table
from repro.experiments.fig4a import default_config
from repro.loadgen.arrivals import Workload
from repro.loadgen.lancet import BenchConfig
from repro.loadgen.sweep import (
    SweepPoint,
    estimated_curve,
    measured_curve,
    sweep_nagle_pair,
)
from repro.units import KIB, to_usecs

DEFAULT_RATES = [
    5_000.0, 15_000.0, 25_000.0, 30_000.0, 35_000.0,
    40_000.0, 50_000.0, 60_000.0, 70_000.0,
]


def mixed_config() -> BenchConfig:
    """The 95:5 SET:GET mix of Figure 4b."""
    base = default_config()
    return replace(
        base,
        workload=Workload(set_ratio=0.95, key_bytes=16, value_bytes=16 * KIB),
    )


@dataclass
class Fig4bResult:
    """Sweeps for both configurations plus divergence diagnostics."""

    off_points: list[SweepPoint]
    on_points: list[SweepPoint]
    measured_cutoff: float | None = None
    estimated_cutoff: float | None = None
    mean_abs_error_fraction: float = 0.0
    hint_mean_abs_error_fraction: float = 0.0

    def render(self) -> str:
        """Figure 4b as a table plus cutoff comparison."""
        rows = []
        for off, on in zip(self.off_points, self.on_points):
            rows.append((
                int(off.rate_per_sec),
                to_usecs(off.result.latency.mean_ns),
                to_usecs(off.result.estimate.latency_ns)
                if off.result.estimate and off.result.estimate.defined else float("nan"),
                to_usecs(off.result.hint_latency_ns)
                if off.result.hint_latency_ns else float("nan"),
                to_usecs(on.result.latency.mean_ns),
                to_usecs(on.result.estimate.latency_ns)
                if on.result.estimate and on.result.estimate.defined else float("nan"),
            ))
        table = format_table(
            ["rate (RPS)", "meas off", "byte-est off", "hint-est off",
             "meas on", "byte-est on"],
            rows,
            title="Figure 4b: 95:5 SET:GET — byte estimates diverge (us)",
        )
        return "\n".join([
            table,
            f"measured cutoff: {self.measured_cutoff and round(self.measured_cutoff)} RPS; "
            f"byte-estimated cutoff: {self.estimated_cutoff and round(self.estimated_cutoff)} RPS",
            f"byte-estimate mean |error|: {self.mean_abs_error_fraction:.1%}; "
            f"hint-estimate mean |error|: {self.hint_mean_abs_error_fraction:.1%}",
        ])


def _mean_abs_error(points: list[SweepPoint], use_hint: bool) -> float:
    errors = []
    for point in points:
        measured = point.result.send_latency.mean_ns
        if use_hint:
            estimate = point.result.hint_latency_ns
        else:
            estimate = (
                point.result.estimate.latency_ns
                if point.result.estimate and point.result.estimate.defined
                else None
            )
        if estimate is not None and measured > 0:
            errors.append(abs(estimate - measured) / measured)
    return sum(errors) / len(errors) if errors else float("nan")


def run_fig4b(
    rates: list[float] | None = None,
    base: BenchConfig | None = None,
    workers: int = 1,
    policy=None,
    checkpoint=None,
    watchdog=None,
) -> Fig4bResult:
    """Run the full Figure 4b sweep (both configurations).

    ``workers > 1`` fans the 2 x len(rates) grid over a process pool;
    the result is identical to the serial sweep.  ``policy``,
    ``checkpoint`` and ``watchdog`` forward to the supervised campaign
    (see :func:`repro.parallel.run_campaign`); a checkpoint directory
    makes the sweep resumable.
    """
    rates = rates or DEFAULT_RATES
    base = base or mixed_config()
    off_points, on_points = sweep_nagle_pair(
        base, rates, workers=workers,
        policy=policy, checkpoint=checkpoint, watchdog=watchdog,
    )

    result = Fig4bResult(off_points=off_points, on_points=on_points)
    off_curve = measured_curve(off_points)
    on_curve = measured_curve(on_points)
    result.measured_cutoff = crossover_rate(off_curve, on_curve)
    est_off = estimated_curve(off_points)
    est_on = estimated_curve(on_points)
    if est_off and est_on:
        result.estimated_cutoff = crossover_rate(est_off, est_on)
    result.mean_abs_error_fraction = _mean_abs_error(
        off_points + on_points, use_hint=False
    )
    result.hint_mean_abs_error_fraction = _mean_abs_error(
        off_points + on_points, use_hint=True
    )
    return result
