"""E1 — Figure 1: the analytic batching scenario.

Three client processing costs (c = 1, 3, 5) under n=3, α=2, β=4, showing
batching (a) improving both metrics, (b) degrading both, (c) trading
latency for throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.analytic.batching_model import ScenarioParams, compare


@dataclass(frozen=True)
class Fig1Row:
    """One panel of Figure 1."""

    c: float
    batched_latency: float
    unbatched_latency: float
    batched_throughput: float
    unbatched_throughput: float
    latency_verdict: str
    throughput_verdict: str


@dataclass
class Fig1Result:
    """All three panels."""

    rows: list[Fig1Row]

    def render(self) -> str:
        """Figure 1 as a table."""
        return format_table(
            ["c", "lat(batch)", "lat(none)", "tput(batch)", "tput(none)",
             "batching:latency", "batching:throughput"],
            [
                (row.c, row.batched_latency, row.unbatched_latency,
                 row.batched_throughput, row.unbatched_throughput,
                 row.latency_verdict, row.throughput_verdict)
                for row in self.rows
            ],
            title="Figure 1: batching outcome vs client cost c (n=3, alpha=2, beta=4)",
        )


def run_fig1(cs: tuple[float, ...] = (1.0, 3.0, 5.0)) -> Fig1Result:
    """Evaluate the model at the paper's three client costs."""
    rows = []
    for c in cs:
        outcome = compare(ScenarioParams(c=c))
        rows.append(
            Fig1Row(
                c=c,
                batched_latency=outcome["batched"].avg_latency,
                unbatched_latency=outcome["unbatched"].avg_latency,
                batched_throughput=outcome["batched"].throughput,
                unbatched_throughput=outcome["unbatched"].throughput,
                latency_verdict=(
                    "improves" if outcome["batching_improves_latency"] else "degrades"
                ),
                throughput_verdict=(
                    "improves"
                    if outcome["batching_improves_throughput"]
                    else "degrades"
                ),
            )
        )
    return Fig1Result(rows=rows)
