"""E3 — Figure 4a: homogeneous SET workload, load sweep.

Series: measured and §3.2-estimated mean latency, for Nagle enabled and
disabled, across offered loads; plus the derived headlines (E5): the
cutoff where batching starts winning, the SLO-sustainable range of each
configuration and the extension factor, and the latency improvement just
past the cutoff.

Expected shape (paper): no-batching wins at low load; past the cutoff
batching extends the sustainable range by ≈2× (1.93× in the paper) and
improves latency by ≈3× (2.80×); the estimates track the measured
curves and identify the same cutoff.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.cutoff import (
    crossover_rate,
    improvement_at,
    range_extension,
)
from repro.analysis.report import format_table
from repro.loadgen.arrivals import Workload
from repro.loadgen.lancet import BenchConfig
from repro.loadgen.sweep import (
    SweepPoint,
    estimated_curve,
    measured_curve,
    sweep_nagle_pair,
)
from repro.units import KIB, msecs, to_usecs, usecs

DEFAULT_RATES = [
    5_000.0, 15_000.0, 25_000.0, 30_000.0, 35_000.0, 37_500.0,
    40_000.0, 50_000.0, 60_000.0, 70_000.0, 80_000.0,
]
SLO_NS = usecs(500)


def default_config(measure_ns: int = msecs(120)) -> BenchConfig:
    """The Figure 4a workload: SETs of 16 KiB values under 16 B keys."""
    return BenchConfig(
        rate_per_sec=10_000.0,
        workload=Workload(set_ratio=1.0, key_bytes=16, value_bytes=16 * KIB),
        warmup_ns=msecs(40),
        measure_ns=measure_ns,
    )


@dataclass
class Fig4aResult:
    """Sweep points for both configurations plus derived headlines."""

    off_points: list[SweepPoint]
    on_points: list[SweepPoint]
    slo_ns: float = SLO_NS
    cutoff_rate: float | None = None
    off_max_rate: float = 0.0
    on_max_rate: float = 0.0
    extension_factor: float = 0.0
    improvement_rate: float | None = None
    improvement_factor: float | None = None
    estimated_cutoff_rate: float | None = field(default=None)

    def render(self) -> str:
        """Figure 4a as a table plus headline lines."""
        rows = []
        for off, on in zip(self.off_points, self.on_points):
            rows.append((
                int(off.rate_per_sec),
                to_usecs(off.result.latency.mean_ns),
                to_usecs(off.result.estimate.latency_ns)
                if off.result.estimate and off.result.estimate.defined else float("nan"),
                to_usecs(on.result.latency.mean_ns),
                to_usecs(on.result.estimate.latency_ns)
                if on.result.estimate and on.result.estimate.defined else float("nan"),
            ))
        table = format_table(
            ["rate (RPS)", "meas off (us)", "est off (us)",
             "meas on (us)", "est on (us)"],
            rows,
            title="Figure 4a: SET 16KiB — mean latency vs offered load",
        )
        lines = [
            table,
            f"cutoff (batching starts winning): "
            f"{self.cutoff_rate and round(self.cutoff_rate)} RPS "
            f"(estimated-cutoff: {self.estimated_cutoff_rate and round(self.estimated_cutoff_rate)})",
            f"SLO {to_usecs(self.slo_ns):.0f}us sustainable: off={self.off_max_rate:.0f} "
            f"on={self.on_max_rate:.0f} -> extension {self.extension_factor:.2f}x "
            f"(paper: 1.93x)",
        ]
        if self.improvement_factor is not None:
            lines.append(
                f"latency improvement at {self.improvement_rate:.0f} RPS: "
                f"{self.improvement_factor:.2f}x (paper: 2.80x at 37.5 kRPS)"
            )
        return "\n".join(lines)


def run_fig4a(
    rates: list[float] | None = None,
    base: BenchConfig | None = None,
    workers: int = 1,
    policy=None,
    checkpoint=None,
    watchdog=None,
) -> Fig4aResult:
    """Run the full Figure 4a sweep (both configurations).

    ``workers > 1`` fans the 2 x len(rates) grid over a process pool;
    the result is identical to the serial sweep.  ``policy``,
    ``checkpoint`` and ``watchdog`` forward to the supervised campaign
    (see :func:`repro.parallel.run_campaign`); a checkpoint directory
    makes the sweep resumable.
    """
    rates = rates or DEFAULT_RATES
    base = base or default_config()
    off_points, on_points = sweep_nagle_pair(
        base, rates, workers=workers,
        policy=policy, checkpoint=checkpoint, watchdog=watchdog,
    )

    off_curve = measured_curve(off_points)
    on_curve = measured_curve(on_points)
    result = Fig4aResult(off_points=off_points, on_points=on_points)
    result.cutoff_rate = crossover_rate(off_curve, on_curve)
    result.off_max_rate, result.on_max_rate, result.extension_factor = (
        range_extension(off_curve, on_curve, SLO_NS)
    )
    est_off = estimated_curve(off_points)
    est_on = estimated_curve(on_points)
    if est_off and est_on:
        result.estimated_cutoff_rate = crossover_rate(est_off, est_on)

    # Latency improvement at the highest rate both configs sustain with
    # the baseline still under (or near) the SLO — the paper's "within
    # this range" comparison at 37.5 kRPS.
    if result.off_max_rate > 0:
        result.improvement_rate = result.off_max_rate
        result.improvement_factor = improvement_at(
            off_curve, on_curve, result.off_max_rate
        )
    return result
