"""E2 — Figure 2: the VM client flips the Nagle outcome at a fixed load.

The paper runs one Redis client at a fixed 20 kRPS from bare metal and
from inside a VM.  The VM client burns far more CPU for the same
workload (Figure 2a) while the server's CPU stays the same (Figure 2b)
— i.e. only the client-side cost ``c`` changed — and that alone flips
whether Nagle batching helps (Figure 2c), the live analogue of the
Figure 1 model.

Our VM model multiplies every client-side cost (per-delivery, per-packet,
per-response ``c``, per-wakeup) by ``vm_factor``; the server runs a
calibrated cost profile placing 20 kRPS just past its no-batching knee,
so batching visibly relieves the server for the fast client while its
response clumping penalizes the slow client.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.apps.redis_client import ClientConfig
from repro.host.host import HostCosts
from repro.loadgen.lancet import BenchConfig, RunResult
from repro.loadgen.stats import summarize
from repro.parallel import run_campaign
from repro.units import msecs, to_usecs

FIXED_RATE = 20_000.0
SERVER_SCALE = 1.6
VM_FACTOR = 3.0
CLIENT_C_NS = 12_000
CLIENT_ITER_NS = 2_000
DEFAULT_SEEDS = (1, 2, 3)


def fig2_config(vm: bool, nagle: bool, seed: int,
                measure_ns: int = msecs(150)) -> BenchConfig:
    """One Figure 2 cell: client placement × Nagle setting."""
    factor = VM_FACTOR if vm else 1.0
    return BenchConfig(
        rate_per_sec=FIXED_RATE,
        nagle=nagle,
        seed=seed,
        warmup_ns=msecs(40),
        measure_ns=measure_ns,
        server_costs=HostCosts().scaled(SERVER_SCALE),
        client_cpu_factor=factor,
        client_config=ClientConfig(
            c_ns=round(CLIENT_C_NS * factor),
            iteration_extra_ns=round(CLIENT_ITER_NS * factor),
        ),
    )


@dataclass
class Fig2Cell:
    """Seed-averaged metrics for one (placement, nagle) cell."""

    vm: bool
    nagle: bool
    mean_latency_ns: float
    client_cpu: float
    server_cpu: float
    runs: list[RunResult]


@dataclass
class Fig2Result:
    """All four cells plus the paper's three panel verdicts."""

    cells: dict[tuple[bool, bool], Fig2Cell]

    def cell(self, vm: bool, nagle: bool) -> Fig2Cell:
        """Fetch one cell."""
        return self.cells[(vm, nagle)]

    @property
    def client_cpu_ratio(self) -> float:
        """Figure 2a: VM client CPU over bare-metal client CPU."""
        return self.cell(True, False).client_cpu / self.cell(False, False).client_cpu

    @property
    def server_cpu_ratio(self) -> float:
        """Figure 2b: server CPU with VM client over bare (≈1 expected)."""
        return self.cell(True, False).server_cpu / self.cell(False, False).server_cpu

    @property
    def nagle_helps_bare(self) -> bool:
        """Figure 2c, left: batching outcome for the bare-metal client."""
        return (
            self.cell(False, True).mean_latency_ns
            < self.cell(False, False).mean_latency_ns
        )

    @property
    def nagle_helps_vm(self) -> bool:
        """Figure 2c, right: batching outcome for the VM client."""
        return (
            self.cell(True, True).mean_latency_ns
            < self.cell(True, False).mean_latency_ns
        )

    def render(self) -> str:
        """Figure 2 as a table plus verdicts."""
        rows = []
        for vm in (False, True):
            for nagle in (False, True):
                cell = self.cell(vm, nagle)
                rows.append((
                    "VM" if vm else "bare",
                    "on" if nagle else "off",
                    to_usecs(cell.mean_latency_ns),
                    cell.client_cpu,
                    cell.server_cpu,
                ))
        table = format_table(
            ["client", "nagle", "latency (us)", "client CPU", "server CPU"],
            rows,
            title=f"Figure 2: fixed {FIXED_RATE:.0f} RPS, bare-metal vs VM client",
        )
        return "\n".join([
            table,
            f"(a) VM client uses {self.client_cpu_ratio:.1f}x the client CPU",
            f"(b) server CPU ratio VM/bare: {self.server_cpu_ratio:.2f} (~1 expected)",
            f"(c) Nagle helps bare-metal: {self.nagle_helps_bare}; "
            f"Nagle helps VM: {self.nagle_helps_vm} (paper: True / False)",
        ])


def run_fig2(seeds: tuple[int, ...] = DEFAULT_SEEDS,
             measure_ns: int = msecs(150),
             workers: int = 1,
             tracer=None,
             policy=None,
             checkpoint=None,
             watchdog=None,
             diagnosis=None) -> Fig2Result:
    """Run all four cells, averaging each over the given seeds.

    The 4 x len(seeds) grid is one campaign, so ``workers > 1`` keeps a
    process pool busy across every cell; results equal the serial run.
    ``tracer`` records the whole campaign into one ``repro-trace-v1``
    stream (forcing serial execution — see
    :meth:`repro.parallel.ParallelRunner.run_many`).  ``policy``,
    ``checkpoint`` and ``watchdog`` forward to
    :func:`repro.parallel.run_campaign`; pointing ``checkpoint`` at a
    directory makes the campaign resumable (completed cells are skipped
    on a rerun, with identical results).  ``diagnosis`` (a
    :class:`repro.diagnose.DiagnosisHook`; requires ``tracer``) scores
    each cell's trace segment as it completes.
    """
    grid = [(vm, nagle) for vm in (False, True) for nagle in (False, True)]
    configs = [
        fig2_config(vm, nagle, seed, measure_ns)
        for vm, nagle in grid
        for seed in seeds
    ]
    results = run_campaign(
        configs, workers=workers, tracer=tracer,
        policy=policy, checkpoint=checkpoint, watchdog=watchdog,
        diagnosis=diagnosis,
    )
    cells = {}
    for i, (vm, nagle) in enumerate(grid):
        runs = results[i * len(seeds):(i + 1) * len(seeds)]
        cells[(vm, nagle)] = Fig2Cell(
            vm=vm,
            nagle=nagle,
            mean_latency_ns=summarize(
                [r.latency.mean_ns for r in runs]
            ).mean_ns,
            client_cpu=sum(r.client_cpu for r in runs) / len(runs),
            server_cpu=sum(r.server_cpu for r in runs) / len(runs),
            runs=runs,
        )
    return Fig2Result(cells=cells)
