"""Chaos experiment: estimator and toggler robustness under faults.

The paper's testbed is a clean two-machine wire; a deployment's network
is not.  :func:`run_faults` sweeps a fault plan's intensity from zero
(exactly the fault-free configuration — the injector is not even built)
upward, and reports how gracefully the end-to-end machinery degrades:

- **estimator error** — wire-mode estimate vs measured latency, plus the
  hardening counters (rejected exchanges, stale windows, clamps).  The
  headline robustness claim is that the estimator never *emits* a
  negative latency, however mangled its inputs.
- **toggler stability** — mode changes, their minimum spacing in ticks
  (which must respect the configured freeze window), and how many loss
  episodes froze the controller on its last-known-good EWMAs.

Every point is deterministic in (seed, plan, intensity); the JSON
artifact (see :meth:`ChaosResult.write_json`) is the machine-readable
robustness report CI archives next to perf.json.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, replace

from repro.analysis.report import format_table
from repro.core.estimator import E2EEstimator, combine_estimates
from repro.core.policy import LatencyFirstPolicy, PerfSample
from repro.core.toggler import NagleToggler, TogglerConfig
from repro.experiments.fig4a import default_config
from repro.faults import named_plan
from repro.loadgen.lancet import run_benchmark
from repro.units import SEC, msecs, to_usecs

#: Intensity factors the sweep uses unless told otherwise.  Zero is the
#: fault-free baseline and runs with ``fault_plan=None`` exactly.  The
#: ladder is deliberately front-loaded: under an open-loop arrival
#: process any fault that cuts capacity below the offered rate explodes
#: the queue, so the interesting degradation lives at low intensities.
DEFAULT_INTENSITIES = (0.0, 0.25, 0.5, 1.0)

#: Hardened controller settings for chaos runs: a real freeze window and
#: a loss-episode hold, unlike the legacy-compatible defaults.
CHAOS_TOGGLER = TogglerConfig(
    tick_ns=msecs(4),
    settle_ticks=1,
    min_samples=2,
    freeze_ticks=4,
    loss_freeze_ticks=4,
)


@dataclass
class ChaosPoint:
    """One intensity's robustness metrics."""

    intensity: float
    offered_rate: float
    achieved_rate: float
    measured_ns: float
    estimated_ns: float | None
    estimate_samples: int
    negative_estimates: int        # estimates emitted below zero: must be 0
    negative_clamps: int
    absurd_clamps: int
    stale_rejections: int
    nonmonotonic_rejections: int
    states_rejected: int
    rebaselines: int
    toggles: int
    min_toggle_gap_ticks: int | None
    loss_episodes: int
    frozen_ticks: int
    freeze_holds: int
    fault_summary: dict | None
    #: Labeled ground-truth episodes the injector inflicted (class,
    #: target, interval, event count) — what ``repro diagnose --score``
    #: matches detection findings against.  Empty for fault-free points.
    fault_episodes: list | None = None

    @property
    def error_fraction(self) -> float | None:
        """|estimate − measured| / measured."""
        if self.estimated_ns is None or self.measured_ns <= 0:
            return None
        return abs(self.estimated_ns - self.measured_ns) / self.measured_ns


@dataclass
class ChaosResult:
    """The full intensity sweep for one plan."""

    plan: str
    rate: float
    seed: int
    freeze_ticks: int
    points: list[ChaosPoint]

    def render(self) -> str:
        """The sweep as a table."""
        return format_table(
            ["intensity", "achieved", "measured (us)", "estimate (us)",
             "error", "neg est", "rejected", "rebase", "toggles",
             "min gap", "loss eps"],
            [
                (
                    point.intensity,
                    int(point.achieved_rate),
                    to_usecs(point.measured_ns),
                    to_usecs(point.estimated_ns)
                    if point.estimated_ns is not None else float("nan"),
                    f"{point.error_fraction:.1%}"
                    if point.error_fraction is not None else "-",
                    point.negative_estimates,
                    point.states_rejected,
                    point.rebaselines,
                    point.toggles,
                    point.min_toggle_gap_ticks
                    if point.min_toggle_gap_ticks is not None else "-",
                    point.loss_episodes,
                )
                for point in self.points
            ],
            title=(
                f"Chaos sweep: plan {self.plan!r} at {self.rate:.0f} RPS "
                f"(freeze window {self.freeze_ticks} ticks)"
            ),
        )

    def to_json(self) -> dict:
        """Machine-readable robustness metrics."""
        return {
            "schema": "repro-robustness-v1",
            "plan": self.plan,
            "rate": self.rate,
            "seed": self.seed,
            "freeze_ticks": self.freeze_ticks,
            "points": [
                {**asdict(point), "error_fraction": point.error_fraction}
                for point in self.points
            ],
        }

    def write_json(self, path) -> None:
        """Write :meth:`to_json` to ``path`` (parents created)."""
        import pathlib

        target = pathlib.Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(self.to_json(), indent=2) + "\n")


def attach_chaos_controller(bed, config: TogglerConfig | None = None) -> dict:
    """Wire the hardened estimator+toggler stack onto a testbed.

    Like :func:`repro.experiments.ablations.attach_toggler` but with the
    degradation features enabled: both wire-mode estimators run with a
    staleness budget and an absurdity ceiling, and the controller gets a
    freeze window plus a loss signal that diffs the sockets' retransmit
    counters each tick.

    Returns a holder dict with the toggler, both estimators and the
    per-tick estimate log (for counting emitted negatives).
    """
    config = config or CHAOS_TOGGLER
    staleness = 8 * bed.config.exchange_period_ns
    tracer = getattr(bed, "tracer", None)
    client_estimator = E2EEstimator(
        bed.client_sock, exchange=bed.client_exchange,
        max_staleness_ns=staleness, max_latency_ns=SEC, tracer=tracer,
    )
    server_estimator = E2EEstimator(
        bed.server_sock, exchange=bed.server_exchange,
        max_staleness_ns=staleness, max_latency_ns=SEC, tracer=tracer,
    )
    estimates: list[float] = []

    def sample_fn() -> PerfSample | None:
        client_sample = client_estimator.sample()
        server_sample = server_estimator.sample()
        latency = combine_estimates(client_sample, server_sample)
        if latency is None:
            return None
        estimates.append(latency)
        throughput = (
            client_sample.throughput_per_sec
            if client_sample is not None and client_sample.defined
            else server_sample.throughput_per_sec
        )
        return PerfSample(latency_ns=latency, throughput_per_sec=throughput)

    def apply_fn(mode: bool) -> None:
        bed.client_sock.set_nagle(mode)
        bed.server_sock.set_nagle(mode)

    last_retransmits = [0]

    def loss_signal_fn() -> bool:
        total = bed.client_sock.retransmits + bed.server_sock.retransmits
        seen, last_retransmits[0] = last_retransmits[0], total
        return total > seen

    toggler = NagleToggler(
        bed.sim,
        sample_fn=sample_fn,
        apply_fn=apply_fn,
        policy=LatencyFirstPolicy(),
        rng=bed.rng.stream("toggler"),
        config=config,
        initial_mode=False,
        loss_signal_fn=loss_signal_fn,
        tracer=tracer,
    )
    toggler.start()
    return {
        "toggler": toggler,
        "client_estimator": client_estimator,
        "server_estimator": server_estimator,
        "estimates": estimates,
    }


def min_toggle_gap_ticks(toggler: NagleToggler) -> int | None:
    """Smallest tick spacing between consecutive mode changes.

    None with fewer than two mode changes (no spacing exists).  The
    freeze-window guarantee is that this never drops below
    ``config.freeze_ticks``.
    """
    change_ticks = []
    previous = None
    for index, record in enumerate(toggler.history):
        if previous is not None and record.mode != previous:
            change_ticks.append(index)
        previous = record.mode
    if len(change_ticks) < 2:
        return None
    return min(b - a for a, b in zip(change_ticks, change_ticks[1:]))


def run_faults(
    plan_name: str = "mixed",
    intensities: tuple[float, ...] = DEFAULT_INTENSITIES,
    rate: float = 15_000.0,
    measure_ns: int = msecs(300),
    seed: int = 1,
    toggler_config: TogglerConfig | None = None,
    log=None,
    tracer=None,
) -> ChaosResult:
    """Sweep one fault plan's intensity; report robustness metrics.

    ``intensities`` are multipliers on the named plan's knobs; 0 runs
    the exact fault-free configuration (``fault_plan=None``, no injector
    built), so the first row doubles as the regression baseline.

    ``log`` is a :class:`repro.obs.ProgressLog` for per-intensity
    progress (default: silent); ``tracer`` records every point's run
    into one ``repro-trace-v1`` stream.
    """
    from repro.obs.log import NULL_LOG

    if log is None:
        log = NULL_LOG
    preset = named_plan(plan_name)
    config = toggler_config or CHAOS_TOGGLER
    # A 5 ms RTO floor (the loss ablation's choice) instead of the
    # Linux-like 200 ms default: a bursty-loss episode that eats a fast
    # retransmit must cost milliseconds, not the whole run.
    base = replace(
        default_config(measure_ns=measure_ns),
        rate_per_sec=rate,
        seed=seed,
        min_rto_ns=msecs(5),
    )
    points: list[ChaosPoint] = []
    for index, intensity in enumerate(intensities):
        log.info(
            f"chaos {plan_name}: intensity {intensity:g} "
            f"({index + 1}/{len(intensities)})"
        )
        plan = preset.scaled(intensity) if intensity > 0 else None
        bench = replace(base, fault_plan=plan)
        holder: dict = {}

        def tweak(bed, holder=holder, config=config):
            holder["bed"] = bed
            holder.update(attach_chaos_controller(bed, config=config))

        result = run_benchmark(bench, tweak=tweak, tracer=tracer)
        bed = holder["bed"]
        toggler = holder["toggler"]
        estimates = holder["estimates"]
        estimators = (holder["client_estimator"], holder["server_estimator"])
        exchanges = (bed.client_exchange, bed.server_exchange)
        points.append(
            ChaosPoint(
                intensity=intensity,
                offered_rate=rate,
                achieved_rate=result.achieved_rate,
                measured_ns=result.latency.mean_ns,
                estimated_ns=(
                    sum(estimates) / len(estimates) if estimates else None
                ),
                estimate_samples=len(estimates),
                negative_estimates=sum(1 for value in estimates if value < 0),
                negative_clamps=sum(e.negative_clamps for e in estimators),
                absurd_clamps=sum(e.absurd_clamps for e in estimators),
                stale_rejections=sum(e.stale_rejections for e in estimators),
                nonmonotonic_rejections=sum(
                    e.nonmonotonic_rejections for e in estimators
                ),
                states_rejected=sum(x.states_rejected for x in exchanges),
                rebaselines=sum(x.rebaselines for x in exchanges),
                toggles=toggler.toggles,
                min_toggle_gap_ticks=min_toggle_gap_ticks(toggler),
                loss_episodes=toggler.loss_episodes,
                frozen_ticks=toggler.frozen_ticks,
                freeze_holds=toggler.freeze_holds,
                fault_summary=(
                    bed.faults.summary() if bed.faults is not None else None
                ),
                fault_episodes=(
                    bed.faults.episodes() if bed.faults is not None else []
                ),
            )
        )
        point = points[-1]
        log.info(
            f"  achieved {point.achieved_rate:,.0f} RPS, "
            f"{point.toggles} toggles, "
            f"{point.states_rejected} states rejected, "
            f"{point.loss_episodes} loss episodes"
        )
    return ChaosResult(
        plan=plan_name,
        rate=rate,
        seed=seed,
        freeze_ticks=config.freeze_ticks,
        points=points,
    )
