"""A10 — many clients, one server: fan-in through a switch.

The paper's evaluation uses one client machine; its §3.2 notes that
per-connection estimates "can be averaged if a batching policy
simultaneously affects multiple connections."  This experiment builds
the deployment that sentence implies: N independent client machines
funnel through a switch into one server, the offline estimates are
computed per connection and throughput-weighted-averaged, and a single
dynamic toggler flips Nagle on *every* connection from that averaged
estimate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.counters import CounterCollector
from repro.analysis.report import format_table
from repro.apps.kvstore import KVStore
from repro.apps.redis_client import ClientConfig, RedisClient
from repro.apps.redis_server import RedisServer, ServerConfig
from repro.core.estimator import E2EEstimator, combine_estimates
from repro.core.policy import LatencyFirstPolicy, PerfSample
from repro.core.toggler import NagleToggler, TogglerConfig
from repro.host.host import Host, HostCosts
from repro.loadgen.arrivals import Workload, poisson_schedule
from repro.loadgen.stats import summarize
from repro.net.switch import Star
from repro.sim.loop import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.sync import SyncComponent
from repro.tcp.connect import connect_pair
from repro.tcp.socket import TcpConfig
from repro.units import msecs, to_usecs, usecs


@dataclass(frozen=True)
class FaninConfig:
    """The fan-in scenario's knobs."""

    clients: int = 4
    total_rate_per_sec: float = 48_000.0
    nagle: bool = False
    workload: Workload = field(default_factory=Workload)
    warmup_ns: int = msecs(40)
    measure_ns: int = msecs(150)
    seed: int = 1
    propagation_delay_ns: int = usecs(5)


@dataclass
class FaninBed:
    """Everything the fan-in builder assembles."""

    sim: Simulator
    rng: RngRegistry
    server_host: Host
    client_hosts: list[Host]
    client_socks: list
    server_socks: list
    clients: list[RedisClient]
    server: RedisServer
    collectors: list[CounterCollector]


def build_fanin(config: FaninConfig, backend=None) -> FaninBed:
    """Assemble N client machines, a switch, and one server.

    ``backend`` selects the batch pipeline (see :mod:`repro.config`);
    byte-identity-neutral, like everywhere else.
    """
    from repro.config import resolve_backend

    backend = resolve_backend(backend)
    sim = Simulator()
    rng = RngRegistry(config.seed)
    server_host = Host(sim, "server", costs=HostCosts())
    client_hosts = [
        Host(sim, f"client{index}", costs=HostCosts())
        for index in range(config.clients)
    ]
    Star.connect(
        sim,
        {host.name: host.nic for host in client_hosts + [server_host]},
        propagation_delay_ns=config.propagation_delay_ns,
    )
    tcp_config = TcpConfig(nagle=config.nagle)
    client_socks, server_socks, clients, collectors = [], [], [], []
    for index, host in enumerate(client_hosts):
        client_sock, server_sock = connect_pair(
            sim, host, server_host, tcp_config, tcp_config,
            name=f"conn{index}",
        )
        client_socks.append(client_sock)
        server_socks.append(server_sock)
        clients.append(
            RedisClient(sim, host, client_sock, config=ClientConfig(),
                        name=f"lancet{index}")
        )
        sample_batch = None
        if backend != "legacy":
            from repro.sim.batch import SampleBatch

            sample_batch = SampleBatch(backend)
        collectors.append(
            CounterCollector(
                sim, client_sock, server_sock, period_ns=msecs(10),
                batch=sample_batch,
            )
        )
    server = RedisServer(
        sim, server_host, server_socks[0], store=KVStore(),
        config=ServerConfig(), extra_sockets=server_socks[1:],
    )
    return FaninBed(
        sim=sim, rng=rng, server_host=server_host, client_hosts=client_hosts,
        client_socks=client_socks, server_socks=server_socks,
        clients=clients, server=server, collectors=collectors,
    )


@dataclass
class FaninResult:
    """One fan-in run's measurements."""

    config: FaninConfig
    per_client_mean_ns: list[float]
    aggregate_mean_ns: float
    averaged_estimate_ns: float | None
    server_net_util: float
    toggler_final_mode: bool | None = None
    toggler_toggles: int | None = None

    def render(self) -> str:
        """A10 as a table."""
        rows = [
            (f"client {index}", to_usecs(mean))
            for index, mean in enumerate(self.per_client_mean_ns)
        ]
        rows.append(("aggregate", to_usecs(self.aggregate_mean_ns)))
        if self.averaged_estimate_ns is not None:
            rows.append(("averaged estimate (sec. 3.2)",
                         to_usecs(self.averaged_estimate_ns)))
        title = (
            f"A10: {self.config.clients} clients -> 1 server at "
            f"{self.config.total_rate_per_sec:,.0f} RPS total, "
            f"nagle={'on' if self.config.nagle else 'off'}"
        )
        return format_table(["series", "mean latency (us)"], rows, title=title)

    def to_json(self) -> str:
        """Canonical JSON (sorted keys, no whitespace) for byte-diffs."""
        import dataclasses
        import json

        return json.dumps(
            dataclasses.asdict(self),
            sort_keys=True,
            separators=(",", ":"),
            default=repr,
        )


def run_fanin(
    config: FaninConfig, with_toggler: bool = False, backend=None
) -> FaninResult:
    """Run the fan-in scenario, optionally under a spanning toggler."""
    bed = build_fanin(config, backend=backend)
    toggler = None
    if with_toggler:
        toggler = _attach_spanning_toggler(bed)

    workload = config.workload
    for index in range(workload.keyspace):
        bed.server.store.set(workload.make_key(index), workload.value_bytes)
    bed.server.start()
    per_client_rate = config.total_rate_per_sec / config.clients
    for index, client in enumerate(bed.clients):
        schedule = poisson_schedule(
            bed.rng.stream(f"arrivals.{index}"), workload, per_client_rate,
            start_ns=bed.sim.now,
            duration_ns=config.warmup_ns + config.measure_ns,
        )
        client.start(schedule)

    measure_start = bed.sim.now + config.warmup_ns
    measure_end = measure_start + config.measure_ns

    def begin() -> None:
        bed.server_host.reset_utilization_windows()
        for collector in bed.collectors:
            collector.start()

    bed.sim.call_at(measure_start, begin)
    bed.sim.run(until=measure_end)
    for collector in bed.collectors:
        collector.stop()

    per_client = []
    all_samples = []
    for client in bed.clients:
        samples = [
            r.latency_ns for r in client.records
            if measure_start <= r.completed_at <= measure_end
        ]
        per_client.append(summarize(samples).mean_ns)
        all_samples.extend(samples)

    estimates = [
        collector.window_estimate(measure_start, measure_end)
        for collector in bed.collectors
        if collector.sample_count >= 2
    ]
    defined = [e for e in estimates if e.defined and e.throughput_per_sec > 0]
    averaged = None
    if defined:
        total = sum(e.throughput_per_sec for e in defined)
        averaged = sum(e.latency_ns * e.throughput_per_sec for e in defined) / total

    return FaninResult(
        config=config,
        per_client_mean_ns=per_client,
        aggregate_mean_ns=summarize(all_samples).mean_ns,
        averaged_estimate_ns=averaged,
        server_net_util=bed.server_host.net_core.utilization(),
        toggler_final_mode=toggler.mode if toggler else None,
        toggler_toggles=toggler.toggles if toggler else None,
    )


@dataclass(frozen=True)
class ConnectionShard:
    """One connection's sub-simulation output (picklable, shard-neutral).

    ``events`` is the connection's completion stream inside the
    measurement window — ``(completed_at, (kind, latency_ns))`` in
    emission order — the merge input of :func:`run_fanin_sharded`.
    Nothing here depends on which shard ran the connection.
    """

    index: int
    mean_ns: float
    events: tuple
    estimate_latency_ns: float | None
    estimate_throughput: float | None
    server_net_util: float
    events_executed: int


class _ConnectionSim:
    """One fan-in connection's isolated sub-simulation, build/run split.

    The decomposed model: this client and a server *replica* of its own,
    joined by the same switch fabric — not the shared, contended server
    of :func:`run_fanin` (see docs/PERFORMANCE.md for when each model
    applies).  Everything partition-relevant is keyed by the *global*
    connection index — the RNG stream (``arrivals.{index}``), host and
    socket names — so the output is a pure function of ``(config,
    index, backend-neutral execution)``, never of the shard that
    happened to run it.  The build/run split exists so the windowed
    engine (:func:`run_fanin_synced`) can drive the identical
    simulation in steps; :func:`_run_fanin_connection` remains the
    one-shot form.
    """

    def __init__(self, config: FaninConfig, index: int, backend=None):
        from repro.config import resolve_backend

        backend = resolve_backend(backend)
        sim = Simulator()
        rng = RngRegistry(config.seed)
        server_host = Host(sim, "server", costs=HostCosts())
        client_host = Host(sim, f"client{index}", costs=HostCosts())
        Star.connect(
            sim,
            {client_host.name: client_host.nic,
             server_host.name: server_host.nic},
            propagation_delay_ns=config.propagation_delay_ns,
        )
        tcp_config = TcpConfig(nagle=config.nagle)
        client_sock, server_sock = connect_pair(
            sim, client_host, server_host, tcp_config, tcp_config,
            name=f"conn{index}",
        )
        client = RedisClient(
            sim, client_host, client_sock, config=ClientConfig(),
            name=f"lancet{index}",
        )
        sample_batch = None
        if backend != "legacy":
            from repro.sim.batch import SampleBatch

            sample_batch = SampleBatch(backend)
        collector = CounterCollector(
            sim, client_sock, server_sock, period_ns=msecs(10),
            batch=sample_batch,
        )
        server = RedisServer(
            sim, server_host, server_sock, store=KVStore(),
            config=ServerConfig(),
        )

        workload = config.workload
        for key_index in range(workload.keyspace):
            server.store.set(
                workload.make_key(key_index), workload.value_bytes
            )
        server.start()
        schedule = poisson_schedule(
            rng.stream(f"arrivals.{index}"),
            workload,
            config.total_rate_per_sec / config.clients,
            start_ns=sim.now,
            duration_ns=config.warmup_ns + config.measure_ns,
        )
        client.start(schedule)

        measure_start = sim.now + config.warmup_ns
        measure_end = measure_start + config.measure_ns

        def begin() -> None:
            server_host.reset_utilization_windows()
            collector.start()

        sim.call_at(measure_start, begin)

        self.index = index
        self.sim = sim
        self.client = client
        self.collector = collector
        self.server_host = server_host
        self.measure_start = measure_start
        self.measure_end = measure_end

    def finish(self) -> ConnectionShard:
        """Stop collection and package the shard-neutral output."""
        self.collector.stop()
        events = tuple(
            (r.completed_at, (r.kind, r.latency_ns))
            for r in self.client.records
            if self.measure_start <= r.completed_at <= self.measure_end
        )
        estimate_latency = None
        estimate_throughput = None
        if self.collector.sample_count >= 2:
            estimate = self.collector.window_estimate(
                self.measure_start, self.measure_end
            )
            estimate_latency = estimate.latency_ns
            estimate_throughput = estimate.throughput_per_sec
        return ConnectionShard(
            index=self.index,
            mean_ns=summarize(
                [latency for _, (_, latency) in events]
            ).mean_ns,
            events=events,
            estimate_latency_ns=estimate_latency,
            estimate_throughput=estimate_throughput,
            server_net_util=self.server_host.net_core.utilization(),
            events_executed=self.sim.events_executed,
        )


def _run_fanin_connection(
    config: FaninConfig, index: int, backend=None
) -> ConnectionShard:
    """Run one fan-in connection as an isolated sub-simulation."""
    conn = _ConnectionSim(config, index, backend=backend)
    conn.sim.run(until=conn.measure_end)
    return conn.finish()


def _run_fanin_shard(config: FaninConfig, indices, backend=None) -> list:
    """Worker entry point: run one shard's connections (must be
    module-level so it pickles under every start method)."""
    return [
        _run_fanin_connection(config, index, backend=backend)
        for index in indices
    ]


@dataclass
class ShardedFaninResult:
    """A sharded fan-in run's measurements.

    Deliberately free of execution metadata — no shard count, no worker
    count — because the byte-identity contract says those must not
    change the output.  ``merge_fingerprint`` is the order-sensitive
    digest of the merged completion stream (see
    :func:`repro.sim.shard.merge_digest`); two runs agree on it iff
    their merged event streams are identical, which is how CI byte-diffs
    sharded against serial execution.
    """

    config: FaninConfig
    per_client_mean_ns: list[float]
    aggregate_mean_ns: float
    averaged_estimate_ns: float | None
    server_net_util_mean: float
    merged_events: int
    merge_fingerprint: str
    events_executed: int

    def to_json(self) -> str:
        """Canonical JSON (sorted keys, no whitespace) for byte-diffs."""
        import dataclasses
        import json

        return json.dumps(
            dataclasses.asdict(self),
            sort_keys=True,
            separators=(",", ":"),
            default=repr,
        )


def run_fanin_sharded(
    config: FaninConfig,
    shards: int = 1,
    workers: int = 1,
    policy=None,
    checkpoint=None,
    backend=None,
    tracer=None,
    metrics=None,
) -> ShardedFaninResult:
    """Run the decomposed fan-in scenario across a supervised shard pool.

    Connections are partitioned by :class:`~repro.sim.shard.ShardPlan`
    (round-robin on global index), each shard runs its connections'
    sub-simulations in a supervised worker (retries, checkpoints, and
    traces work exactly as in any campaign — ``checkpoint`` makes the
    shard set resumable, ``tracer`` forces serial traced execution),
    and the per-connection completion streams are recombined with the
    deterministic :func:`~repro.sim.shard.merge_streams` order
    ``(timestamp, connection, sequence)``.  Output is byte-identical
    for every ``(shards, workers)`` combination — the contract CI
    enforces by diffing ``--shards 2`` against the serial run.

    ``metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry`) receives
    the ``sim.shard.merged_events`` counter.
    """
    from repro.parallel import ParallelRunner, _require_all_ok
    from repro.sim.shard import ShardPlan, merge_digest, merge_streams

    plan = ShardPlan.round_robin(config.clients, shards)
    payloads = [
        (config, indices, backend) for indices in plan.assignments
    ]
    labels = [
        f"fanin shard {number}/{plan.shards}: conns {list(indices)}"
        for number, indices in enumerate(plan.assignments, start=1)
    ]
    runner = ParallelRunner(workers, policy=policy)
    outcomes = runner.map_outcomes(
        _run_fanin_shard, payloads,
        checkpoint=checkpoint, labels=labels, tracer=tracer,
    )
    shard_results = _require_all_ok(outcomes)

    conns = sorted(
        (conn for shard in shard_results for conn in shard),
        key=lambda conn: conn.index,
    )
    return _assemble_sharded_result(config, conns, metrics)


def _assemble_sharded_result(
    config: FaninConfig, conns, metrics=None
) -> ShardedFaninResult:
    """Recombine per-connection outputs into the partition-free result.

    Shared by the shard-map path (:func:`run_fanin_sharded`) and the
    windowed-engine path (:func:`run_fanin_synced`); both therefore
    agree byte for byte on everything derived from the same
    :class:`ConnectionShard` set.
    """
    from repro.sim.shard import merge_digest, merge_streams

    merged = merge_streams((conn.index, list(conn.events)) for conn in conns)
    if metrics is not None:
        metrics.counter("sim.shard.merged_events").inc(len(merged))

    defined = [
        conn for conn in conns
        if conn.estimate_latency_ns is not None
        and conn.estimate_throughput is not None
        and conn.estimate_throughput > 0
    ]
    averaged = None
    if defined:
        total = sum(conn.estimate_throughput for conn in defined)
        averaged = sum(
            conn.estimate_latency_ns * conn.estimate_throughput
            for conn in defined
        ) / total

    utils = [conn.server_net_util for conn in conns]
    return ShardedFaninResult(
        config=config,
        per_client_mean_ns=[conn.mean_ns for conn in conns],
        aggregate_mean_ns=summarize(
            [latency for _, _, _, (_, latency) in merged]
        ).mean_ns,
        averaged_estimate_ns=averaged,
        server_net_util_mean=sum(utils) / len(utils),
        merged_events=len(merged),
        merge_fingerprint=merge_digest(merged),
        events_executed=sum(conn.events_executed for conn in conns),
    )


class _FaninSyncComponent(SyncComponent):
    """One fan-in connection as a windowed-engine component.

    Fan-in connections never exchange packets (each has its own server
    replica), so the component has infinite lookahead: it posts nothing
    and must receive nothing.
    """

    def __init__(self, config: FaninConfig, index: int, backend=None):
        self.index = index
        self._conn = _ConnectionSim(config, index, backend=backend)

    def deliver(self, message) -> None:
        from repro.errors import WorkloadError

        raise WorkloadError(
            "fan-in connections are independent; nothing should be "
            f"addressed to component {self.index}"
        )

    def advance(self, until_ns: int) -> list:
        self._conn.sim.run(until=until_ns)
        return []

    def events_executed(self) -> int:
        return self._conn.sim.events_executed

    def finish(self) -> ConnectionShard:
        return self._conn.finish()


def _build_fanin_component(
    config: FaninConfig, backend, index: int
) -> _FaninSyncComponent:
    """Picklable component builder for :func:`run_fanin_synced`."""
    return _FaninSyncComponent(config, index, backend=backend)


def run_fanin_synced(
    config: FaninConfig,
    shards: int = 1,
    workers: int = 1,
    policy=None,
    checkpoint=None,
    backend=None,
    tracer=None,
    metrics=None,
) -> ShardedFaninResult:
    """The decomposed fan-in through the windowed cross-shard engine.

    With no cross-component links the lookahead is infinite, the plan
    collapses to a single window, and the engine degenerates to the
    plain shard map — which is exactly the point: this path proves (and
    ``benchmarks/test_bench_perf.py`` gates) that the sync machinery
    costs ~nothing when there is nothing to synchronize.  Output is
    byte-identical to :func:`run_fanin_sharded` at every ``(shards,
    workers)`` combination.
    """
    from functools import partial

    from repro.sim.sync import WindowPlan, run_windowed

    plan = WindowPlan(
        horizon_ns=config.warmup_ns + config.measure_ns, lookahead_ns=None
    )
    sync = run_windowed(
        partial(_build_fanin_component, config, backend),
        config.clients, plan,
        shards=shards, workers=workers, policy=policy,
        checkpoint=checkpoint, tracer=tracer, metrics=metrics,
        label="fanin",
    )
    conns = sorted(sync.results, key=lambda conn: conn.index)
    return _assemble_sharded_result(config, conns, metrics)


def run_fanin_many(
    configs: list[FaninConfig],
    with_toggler: bool = False,
    workers: int = 1,
    policy=None,
    checkpoint=None,
) -> list[FaninResult]:
    """Run several fan-in scenarios, optionally over a worker pool.

    Each scenario is an independent deterministic simulation, so the
    results are identical to running :func:`run_fanin` serially over
    ``configs`` (and come back in the same order).  The campaign is
    supervised (see :mod:`repro.supervise`): ``policy`` tunes retry and
    timeout handling, and ``checkpoint`` (a store or directory) makes
    the batch resumable.
    """
    from repro.parallel import ParallelRunner, _require_all_ok

    runner = ParallelRunner(workers, policy=policy)
    outcomes = runner.map_outcomes(
        run_fanin,
        [(config, with_toggler) for config in configs],
        checkpoint=checkpoint,
    )
    return _require_all_ok(outcomes)


def _attach_spanning_toggler(bed: FaninBed) -> NagleToggler:
    """One controller governing every connection (§3.2 averaging)."""
    estimators = [
        (E2EEstimator(client_sock, remote=server_sock),
         E2EEstimator(server_sock, remote=client_sock))
        for client_sock, server_sock in zip(bed.client_socks, bed.server_socks)
    ]

    def sample_fn() -> PerfSample | None:
        latencies, throughput = [], 0.0
        for client_est, server_est in estimators:
            client_sample = client_est.sample()
            server_sample = server_est.sample()
            combined = combine_estimates(client_sample, server_sample)
            if combined is not None:
                latencies.append(combined)
            if client_sample is not None:
                throughput += client_sample.throughput_per_sec
        if not latencies:
            return None
        return PerfSample(
            latency_ns=sum(latencies) / len(latencies),
            throughput_per_sec=throughput,
        )

    def apply_fn(mode: bool) -> None:
        for sock in bed.client_socks + bed.server_socks:
            sock.set_nagle(mode)

    toggler = NagleToggler(
        bed.sim,
        sample_fn=sample_fn,
        apply_fn=apply_fn,
        policy=LatencyFirstPolicy(),
        rng=bed.rng.stream("toggler"),
        config=TogglerConfig(tick_ns=msecs(16), settle_ticks=1, min_samples=2),
        initial_mode=False,
    )
    toggler.start()
    return toggler
