"""A8 — dynamic toggling under time-varying load.

The strongest case for estimate-driven batching control: no static
Nagle setting is right when the load moves around.  The offered load
walks low → high → low; static-off collapses during the high phase,
static-on overpays during the low phases, and the ε-greedy controller
should re-toggle as each phase begins.

This is the scenario §5's exploration/exploitation discussion is really
about — the optimum *changes*, so the controller must keep probing.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace

from repro.analysis.report import format_table
from repro.core.toggler import TogglerConfig
from repro.experiments.ablations import attach_toggler
from repro.experiments.fig4a import default_config
from repro.loadgen.arrivals import poisson_schedule
from repro.loadgen.lancet import BenchConfig, build_testbed
from repro.loadgen.stats import summarize
from repro.units import msecs, to_usecs


@dataclass(frozen=True)
class PhasePlan:
    """The low → high → low load walk."""

    low_rate: float = 10_000.0
    high_rate: float = 50_000.0
    phase_ns: int = msecs(200)

    @property
    def phases(self) -> list[tuple[str, float]]:
        """(name, rate) per phase, in order."""
        return [
            ("low-1", self.low_rate),
            ("high", self.high_rate),
            ("low-2", self.low_rate),
        ]

    @property
    def total_ns(self) -> int:
        """Run length."""
        return len(self.phases) * self.phase_ns


@dataclass
class PolicyPhases:
    """One policy's per-phase mean latency."""

    policy: str
    phase_latency_ns: dict[str, float]
    toggles: int | None = None
    mode_timeline: list[tuple[int, bool]] | None = None


@dataclass
class TimeVaryingResult:
    """All policies across the load walk."""

    plan: PhasePlan
    policies: list[PolicyPhases]

    def policy(self, name: str) -> PolicyPhases:
        """Fetch one policy's row."""
        for entry in self.policies:
            if entry.policy == name:
                return entry
        raise KeyError(name)

    def render(self) -> str:
        """A8 as a table."""
        phase_names = [name for name, _ in self.plan.phases]
        rows = []
        for entry in self.policies:
            rows.append(
                [entry.policy]
                + [to_usecs(entry.phase_latency_ns[name]) for name in phase_names]
                + [entry.toggles if entry.toggles is not None else "-"]
            )
        return format_table(
            ["policy"] + [f"{name} (us)" for name in phase_names] + ["toggles"],
            rows,
            title=(
                f"A8: load walk {self.plan.low_rate/1000:.0f}k -> "
                f"{self.plan.high_rate/1000:.0f}k -> "
                f"{self.plan.low_rate/1000:.0f}k RPS, "
                f"{self.plan.phase_ns/1e6:.0f} ms phases"
            ),
        )


def _composite_schedule(rng, workload, plan: PhasePlan, start_ns: int):
    parts = []
    offset = start_ns
    for _, rate in plan.phases:
        parts.append(
            poisson_schedule(rng, workload, rate, start_ns=offset,
                             duration_ns=plan.phase_ns)
        )
        offset += plan.phase_ns
    return itertools.chain(*parts)


def _run_policy(
    policy: str, plan: PhasePlan, base: BenchConfig, backend=None
) -> PolicyPhases:
    config = replace(
        base,
        rate_per_sec=plan.high_rate,  # only used for validation
        nagle=(policy == "static-on"),
        warmup_ns=0,
        measure_ns=plan.total_ns,
    )
    bed = build_testbed(config, backend=backend)
    toggler = None
    if policy == "dynamic":
        toggler = attach_toggler(
            bed,
            config=TogglerConfig(tick_ns=msecs(16), settle_ticks=1,
                                 min_samples=2, epsilon=0.1),
        )

    workload = config.workload
    for index in range(workload.keyspace):
        bed.server.store.set(workload.make_key(index), workload.value_bytes)
    bed.server.start()
    start = bed.sim.now
    bed.client.start(
        _composite_schedule(bed.rng.stream("arrivals.0"), workload, plan, start)
    )
    bed.sim.run(until=start + plan.total_ns)

    phase_latency = {}
    for index, (name, _) in enumerate(plan.phases):
        lo = start + index * plan.phase_ns
        hi = lo + plan.phase_ns
        samples = [
            r.latency_ns for r in bed.client.records if lo <= r.completed_at < hi
        ]
        phase_latency[name] = summarize(samples).mean_ns
    return PolicyPhases(
        policy=policy,
        phase_latency_ns=phase_latency,
        toggles=toggler.toggles if toggler is not None else None,
        mode_timeline=(
            [(record.time, record.mode) for record in toggler.history]
            if toggler is not None
            else None
        ),
    )


def run_timevarying(
    plan: PhasePlan | None = None,
    base: BenchConfig | None = None,
    backend=None,
) -> TimeVaryingResult:
    """Run static-off, static-on, and the dynamic toggler over the walk.

    ``backend`` selects the batch pipeline (see :mod:`repro.config`);
    byte-identity-neutral, like everywhere else.
    """
    plan = plan or PhasePlan()
    base = base or default_config()
    policies = [
        _run_policy(policy, plan, base, backend=backend)
        for policy in ("static-off", "static-on", "dynamic")
    ]
    return TimeVaryingResult(plan=plan, policies=policies)
