"""A9 — tail latency (the paper's deferred metric, §2 "Goal").

The paper optimizes averages and explicitly defers tail latency to
future work.  This extension runs the Figure 4a workload and reads the
same story off the p99 curve: does batching still extend the SLO range
when the SLO binds the 99th percentile instead of the mean?  (Tail SLOs
are the common deployment practice the 500 µs number comes from —
IX/ZygOS state theirs on the 99th percentile.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.cutoff import CurvePoint, range_extension
from repro.analysis.report import format_table
from repro.experiments.fig4a import SLO_NS, default_config
from repro.loadgen.lancet import BenchConfig
from repro.loadgen.sweep import SweepPoint, sweep_nagle_pair
from repro.units import msecs, to_usecs

DEFAULT_RATES = [5_000.0, 20_000.0, 30_000.0, 35_000.0, 45_000.0,
                 55_000.0, 65_000.0, 75_000.0]


def p99_curve(points: list[SweepPoint]) -> list[CurvePoint]:
    """The p99 latency curve of a sweep."""
    return [
        CurvePoint(p.rate_per_sec, p.result.latency.p99_ns) for p in points
    ]


@dataclass
class TailResult:
    """Mean and p99 views of both configurations plus a dynamic oracle.

    The finding on this substrate: static Nagle-on *violates* a p99
    SLO at low load — the occasional response held behind its own ack
    spikes the tail even though the mean looks fine — while static-off
    violates it past its knee.  Neither static mode serves a tail SLO;
    the per-rate best of the two (what an ideal dynamic toggler
    achieves) extends the p99-sustainable range substantially.
    """

    off_points: list[SweepPoint]
    on_points: list[SweepPoint]
    mean_extension: float = 0.0
    p99_off_max: float = 0.0
    p99_on_max: float = 0.0
    p99_oracle_max: float = 0.0
    p99_oracle_extension: float = 0.0
    on_low_load_p99_violates: bool = False

    def render(self) -> str:
        """A9 as a table plus the p99 headlines."""
        rows = []
        for off, on in zip(self.off_points, self.on_points):
            rows.append((
                int(off.rate_per_sec),
                to_usecs(off.result.latency.mean_ns),
                to_usecs(off.result.latency.p99_ns),
                to_usecs(on.result.latency.mean_ns),
                to_usecs(on.result.latency.p99_ns),
            ))
        table = format_table(
            ["rate (RPS)", "mean off", "p99 off", "mean on", "p99 on"],
            rows,
            title="A9: tail latency (us) — the paper's deferred metric",
        )
        return "\n".join([
            table,
            f"500us-SLO extension on the mean: {self.mean_extension:.2f}x",
            f"p99-SLO sustainable: off={self.p99_off_max:.0f}, "
            f"on={self.p99_on_max:.0f} (static on violates the tail SLO at "
            f"low load: {self.on_low_load_p99_violates}), "
            f"dynamic oracle={self.p99_oracle_max:.0f} RPS -> "
            f"{self.p99_oracle_extension:.2f}x over static off",
        ])


def _oracle_curve(
    off: list[CurvePoint], on: list[CurvePoint]
) -> list[CurvePoint]:
    on_by_rate = {p.rate_per_sec: p.latency_ns for p in on}
    return [
        CurvePoint(p.rate_per_sec, min(p.latency_ns, on_by_rate[p.rate_per_sec]))
        for p in off
    ]


def run_tail(
    rates: list[float] | None = None,
    base: BenchConfig | None = None,
    workers: int = 1,
    policy=None,
    checkpoint=None,
    watchdog=None,
) -> TailResult:
    """Sweep both configurations; compare mean- and p99-based headlines.

    ``workers > 1`` fans the 2 x len(rates) grid over a process pool;
    the result is identical to the serial sweep.  ``policy``,
    ``checkpoint`` and ``watchdog`` forward to the supervised campaign;
    a checkpoint directory makes the sweep resumable.
    """
    rates = rates or DEFAULT_RATES
    base = base or default_config(measure_ns=msecs(150))
    off_points, on_points = sweep_nagle_pair(
        base, rates, workers=workers,
        policy=policy, checkpoint=checkpoint, watchdog=watchdog,
    )
    result = TailResult(off_points=off_points, on_points=on_points)

    from repro.analysis.cutoff import max_sustainable_rate
    from repro.loadgen.sweep import measured_curve

    _, _, result.mean_extension = range_extension(
        measured_curve(off_points), measured_curve(on_points), SLO_NS
    )
    off_p99 = p99_curve(off_points)
    on_p99 = p99_curve(on_points)
    result.p99_off_max = max_sustainable_rate(off_p99, SLO_NS)
    result.p99_on_max = max_sustainable_rate(on_p99, SLO_NS)
    result.on_low_load_p99_violates = on_p99[0].latency_ns > SLO_NS
    oracle = _oracle_curve(off_p99, on_p99)
    result.p99_oracle_max = max_sustainable_rate(oracle, SLO_NS)
    if result.p99_off_max > 0:
        result.p99_oracle_extension = result.p99_oracle_max / result.p99_off_max
    return result
