"""Ablation experiments (DESIGN.md A1-A5).

- :func:`run_units_ablation` — §3.3's message-unit ladder: how accurate
  is the end-to-end estimate when the three queues are tracked in
  bytes, packets, send-syscalls, or application hints, on homogeneous
  and on mixed workloads.
- :func:`run_toggler_ablation` — §5 dynamic toggling: the ε-greedy
  controller against both static configurations across the load range;
  it should track the better static mode everywhere.
- :func:`run_exchange_ablation` — §5 metadata exchange cadence:
  estimate accuracy and option-byte overhead vs exchange period
  (Little's law should be insensitive to the period).
- :func:`run_granularity_ablation` — §5 toggling granularity and EWMA
  weight sweep.
- :func:`run_aimd_ablation` — §5 better batching heuristics: the AIMD
  batch-limit controller against static Nagle on/off.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.analysis.counters import TripleSnapshot
from repro.analysis.offline import estimate_between, CounterSample
from repro.analysis.report import format_table
from repro.core.aimd import AimdBatchLimiter, AimdConfig
from repro.core.estimator import E2EEstimator
from repro.core.policy import LatencyFirstPolicy, PerfSample
from repro.core.semantic import (
    ByteUnits,
    MessageUnits,
    PacketUnits,
    SyscallUnits,
    attach_units,
)
from repro.core.toggler import NagleToggler, TogglerConfig
from repro.experiments.fig4a import default_config
from repro.loadgen.lancet import run_benchmark
from repro.loadgen.arrivals import Workload
from repro.parallel import run_campaign
from repro.units import KIB, msecs, to_usecs, usecs


# ---------------------------------------------------------------------------
# A1 — message units.
# ---------------------------------------------------------------------------


@dataclass
class UnitsAblationRow:
    """Accuracy of one unit granularity on one workload."""

    workload: str
    unit: str
    measured_ns: float
    estimated_ns: float | None

    @property
    def error_fraction(self) -> float | None:
        """|estimate − measured| / measured."""
        if self.estimated_ns is None or self.measured_ns <= 0:
            return None
        return abs(self.estimated_ns - self.measured_ns) / self.measured_ns


@dataclass
class UnitsAblationResult:
    """All unit × workload cells."""

    rows: list[UnitsAblationRow]

    def render(self) -> str:
        """A1 as a table."""
        return format_table(
            ["workload", "unit", "measured (us)", "estimate (us)", "error"],
            [
                (
                    row.workload,
                    row.unit,
                    to_usecs(row.measured_ns),
                    to_usecs(row.estimated_ns) if row.estimated_ns else float("nan"),
                    f"{row.error_fraction:.1%}" if row.error_fraction is not None else "-",
                )
                for row in self.rows
            ],
            title="A1: estimate accuracy by message unit (send->read latency)",
        )


_UNIT_CLASSES: dict[str, type[MessageUnits]] = {
    "bytes": ByteUnits,
    "packets": PacketUnits,
    "syscalls": SyscallUnits,
}


def run_units_ablation(
    rate: float = 15_000.0, measure_ns: int = msecs(120), nagle: bool = True
) -> UnitsAblationResult:
    """A1: unit-granularity accuracy on homogeneous and mixed loads.

    Defaults to the regime where Figure 4b shows byte granularity
    failing: Nagle enabled at moderate load, where batching delays are
    invisible to byte-weighted averages on the mixed workload.
    """
    workloads = {
        "SET-only": Workload(set_ratio=1.0, value_bytes=16 * KIB),
        "95:5 SET:GET": Workload(set_ratio=0.95, value_bytes=16 * KIB),
    }
    rows: list[UnitsAblationRow] = []
    for workload_name, workload in workloads.items():
        config = replace(
            default_config(measure_ns=measure_ns),
            rate_per_sec=rate,
            workload=workload,
            nagle=nagle,
        )
        holder: dict = {}

        def tweak(bed, holder=holder):
            holder["bed"] = bed
            holder["adapters"] = {
                name: attach_units(bed.client_sock, bed.server_sock, cls)
                for name, cls in _UNIT_CLASSES.items()
            }
            holder["snapshots"] = {}

            def snap(tag):
                holder["snapshots"][tag] = {
                    name: (
                        TripleSnapshot.capture(pair[0]),
                        TripleSnapshot.capture(pair[1]),
                    )
                    for name, pair in holder["adapters"].items()
                }

            bed.sim.call_at(bed.sim.now + config.warmup_ns, lambda: snap("start"))
            bed.sim.call_at(
                bed.sim.now + config.warmup_ns + config.measure_ns - 1,
                lambda: snap("end"),
            )

        result = run_benchmark(config, tweak=tweak)
        measured = result.send_latency.mean_ns
        for unit_name in _UNIT_CLASSES:
            start_cli, start_srv = holder["snapshots"]["start"][unit_name]
            end_cli, end_srv = holder["snapshots"]["end"][unit_name]
            estimate = estimate_between(
                CounterSample(time=0, client=start_cli, server=start_srv),
                CounterSample(time=1, client=end_cli, server=end_srv),
            )
            rows.append(
                UnitsAblationRow(
                    workload=workload_name,
                    unit=unit_name,
                    measured_ns=measured,
                    estimated_ns=estimate.latency_ns,
                )
            )
        rows.append(
            UnitsAblationRow(
                workload=workload_name,
                unit="hints",
                measured_ns=measured,
                estimated_ns=result.hint_latency_ns,
            )
        )
    return UnitsAblationResult(rows=rows)


# ---------------------------------------------------------------------------
# A2 — dynamic toggling.
# ---------------------------------------------------------------------------


@dataclass
class TogglerAblationRow:
    """One offered load: static off, static on, dynamic toggling."""

    rate: float
    off_latency_ns: float
    on_latency_ns: float
    toggler_latency_ns: float
    toggles: int
    final_mode: bool

    @property
    def best_static_ns(self) -> float:
        """The better static configuration at this load."""
        return min(self.off_latency_ns, self.on_latency_ns)

    @property
    def regret_fraction(self) -> float:
        """How far the toggler is above the best static choice."""
        return (self.toggler_latency_ns - self.best_static_ns) / self.best_static_ns


@dataclass
class TogglerAblationResult:
    """The toggler across the load range."""

    rows: list[TogglerAblationRow]

    def render(self) -> str:
        """A2 as a table."""
        return format_table(
            ["rate", "static off (us)", "static on (us)", "toggler (us)",
             "regret", "toggles", "final mode"],
            [
                (
                    int(row.rate),
                    to_usecs(row.off_latency_ns),
                    to_usecs(row.on_latency_ns),
                    to_usecs(row.toggler_latency_ns),
                    f"{row.regret_fraction:+.1%}",
                    row.toggles,
                    "on" if row.final_mode else "off",
                )
                for row in self.rows
            ],
            title="A2: epsilon-greedy dynamic toggling vs static Nagle settings",
        )


def attach_toggler(
    bed,
    config: TogglerConfig | None = None,
    policy=None,
    on_demand_exchange: bool = False,
) -> NagleToggler:
    """Wire an estimate-fed ε-greedy toggler onto a testbed.

    The sample function runs wire-mode estimators at *both* endpoints
    (remote queue states arrive via the metadata exchange) and takes the
    maximum of the two views — the paper's §3.2 hedge against
    underestimation, which matters here: the client's byte-weighted view
    barely sees the Nagle tail stall, while the server's view does.  The
    apply function flips Nagle on both endpoints, as a kernel policy
    covering the connection would.

    With ``on_demand_exchange`` the controller requests a state exchange
    each tick instead of relying on the periodic cadence — the §5
    "we can do it on-demand" variant; the next outgoing segment in each
    direction then carries fresh counters regardless of the period.
    """
    from repro.core.estimator import combine_estimates

    tracer = getattr(bed, "tracer", None)
    client_estimator = E2EEstimator(
        bed.client_sock, exchange=bed.client_exchange, tracer=tracer,
    )
    server_estimator = E2EEstimator(
        bed.server_sock, exchange=bed.server_exchange, tracer=tracer,
    )

    def sample_fn() -> PerfSample | None:
        if on_demand_exchange:
            bed.client_exchange.request()
            bed.server_exchange.request()
        client_sample = client_estimator.sample()
        server_sample = server_estimator.sample()
        latency = combine_estimates(client_sample, server_sample)
        if latency is None:
            return None
        throughput = (
            client_sample.throughput_per_sec
            if client_sample is not None and client_sample.defined
            else server_sample.throughput_per_sec
        )
        return PerfSample(latency_ns=latency, throughput_per_sec=throughput)

    def apply_fn(mode: bool) -> None:
        bed.client_sock.set_nagle(mode)
        bed.server_sock.set_nagle(mode)

    toggler = NagleToggler(
        bed.sim,
        sample_fn=sample_fn,
        apply_fn=apply_fn,
        policy=policy or LatencyFirstPolicy(),
        rng=bed.rng.stream("toggler"),
        config=config or TogglerConfig(tick_ns=msecs(4)),
        initial_mode=False,
        tracer=tracer,
    )
    toggler.start()
    return toggler


def run_toggler_ablation(
    rates: tuple[float, ...] = (10_000.0, 30_000.0, 50_000.0, 65_000.0),
    measure_ns: int = msecs(300),
    toggler_config: TogglerConfig | None = None,
    workers: int = 1,
    policy=None,
    checkpoint=None,
    watchdog=None,
) -> TogglerAblationResult:
    """A2: dynamic toggling vs static settings across loads.

    The default tick is 16 ms: mode attribution needs the transition
    backlog to drain, and on this substrate the drain timescale near
    the knee is ~20 ms (A4 sweeps the granularity explicitly).

    ``workers > 1`` parallelizes the static off/on reference runs; the
    dynamic runs stay serial because the toggler attaches through an
    in-process tweak whose controller state is inspected afterwards.
    ``policy``/``checkpoint``/``watchdog`` supervise the static
    campaign (see :func:`repro.parallel.run_campaign`).
    """
    if toggler_config is None:
        toggler_config = TogglerConfig(
            tick_ns=msecs(16), settle_ticks=1, min_samples=2
        )
    bases = [
        replace(default_config(measure_ns=measure_ns), rate_per_sec=rate)
        for rate in rates
    ]
    statics = run_campaign(
        [replace(base, nagle=False) for base in bases]
        + [replace(base, nagle=True) for base in bases],
        workers=workers,
        policy=policy, checkpoint=checkpoint, watchdog=watchdog,
    )
    rows = []
    for index, (rate, base) in enumerate(zip(rates, bases)):
        off = statics[index]
        on = statics[len(bases) + index]
        holder: dict = {}

        def tweak(bed, holder=holder, toggler_config=toggler_config):
            holder["toggler"] = attach_toggler(bed, config=toggler_config)

        dynamic = run_benchmark(replace(base, nagle=False), tweak=tweak)
        toggler = holder["toggler"]
        rows.append(
            TogglerAblationRow(
                rate=rate,
                off_latency_ns=off.latency.mean_ns,
                on_latency_ns=on.latency.mean_ns,
                toggler_latency_ns=dynamic.latency.mean_ns,
                toggles=toggler.toggles,
                final_mode=toggler.mode,
            )
        )
    return TogglerAblationResult(rows=rows)


# ---------------------------------------------------------------------------
# A3 — exchange cadence.
# ---------------------------------------------------------------------------


@dataclass
class ExchangeAblationRow:
    """One exchange period's accuracy and overhead."""

    period_ns: int
    measured_ns: float
    estimated_ns: float | None
    states_sent: int
    option_bytes: int

    @property
    def error_fraction(self) -> float | None:
        """|estimate − measured| / measured."""
        if self.estimated_ns is None or self.measured_ns <= 0:
            return None
        return abs(self.estimated_ns - self.measured_ns) / self.measured_ns


@dataclass
class ExchangeAblationResult:
    """Accuracy/overhead across exchange periods."""

    rows: list[ExchangeAblationRow]

    def render(self) -> str:
        """A3 as a table."""
        return format_table(
            ["period (ms)", "measured (us)", "wire est (us)", "error",
             "states", "option bytes"],
            [
                (
                    row.period_ns / 1e6,
                    to_usecs(row.measured_ns),
                    to_usecs(row.estimated_ns) if row.estimated_ns else float("nan"),
                    f"{row.error_fraction:.1%}" if row.error_fraction is not None else "-",
                    row.states_sent,
                    row.option_bytes,
                )
                for row in self.rows
            ],
            title="A3: estimate accuracy vs metadata-exchange period",
        )


def run_exchange_ablation(
    periods_ns: tuple[int, ...] = (msecs(1), msecs(5), msecs(20), msecs(60)),
    rate: float = 35_000.0,
    measure_ns: int = msecs(240),
) -> ExchangeAblationResult:
    """A3: wire-mode estimate accuracy vs exchange cadence."""
    rows = []
    for period in periods_ns:
        config = replace(
            default_config(measure_ns=measure_ns),
            rate_per_sec=rate,
            nagle=False,
            exchange_period_ns=period,
        )
        holder: dict = {}

        def tweak(bed, holder=holder, config=config):
            holder["bed"] = bed
            estimator = E2EEstimator(bed.client_sock, exchange=bed.client_exchange)
            holder["estimates"] = []

            def tick():
                sample = estimator.sample()
                if sample is not None and sample.defined:
                    holder["estimates"].append(sample.latency_ns)
                bed.sim.call_after(msecs(20), tick)

            bed.sim.call_at(bed.sim.now + config.warmup_ns, tick)

        result = run_benchmark(config, tweak=tweak)
        estimates = holder["estimates"]
        bed = holder["bed"]
        rows.append(
            ExchangeAblationRow(
                period_ns=period,
                measured_ns=result.send_latency.mean_ns,
                estimated_ns=(sum(estimates) / len(estimates)) if estimates else None,
                states_sent=bed.client_exchange.states_sent
                + bed.server_exchange.states_sent,
                option_bytes=bed.client_exchange.option_bytes_sent
                + bed.server_exchange.option_bytes_sent,
            )
        )
    return ExchangeAblationResult(rows=rows)


# ---------------------------------------------------------------------------
# A4 — toggling granularity and smoothing.
# ---------------------------------------------------------------------------


@dataclass
class GranularityRow:
    """One (tick, alpha) toggler configuration."""

    tick_ns: int
    alpha: float
    latency_ns: float
    toggles: int
    final_mode: bool


@dataclass
class GranularityResult:
    """The granularity/EWMA sweep at one load."""

    rate: float
    best_static_ns: float
    rows: list[GranularityRow]

    def render(self) -> str:
        """A4 as a table."""
        return format_table(
            ["tick (ms)", "alpha", "latency (us)", "toggles", "final mode"],
            [
                (
                    row.tick_ns / 1e6,
                    row.alpha,
                    to_usecs(row.latency_ns),
                    row.toggles,
                    "on" if row.final_mode else "off",
                )
                for row in self.rows
            ],
            title=(
                f"A4: toggling granularity & EWMA at {self.rate:.0f} RPS "
                f"(best static: {to_usecs(self.best_static_ns):.1f} us)"
            ),
        )


def run_granularity_ablation(
    rate: float = 50_000.0,
    ticks_ns: tuple[int, ...] = (msecs(4), msecs(16), msecs(32)),
    alphas: tuple[float, ...] = (0.1, 0.5),
    measure_ns: int = msecs(320),
) -> GranularityResult:
    """A4: how tick size and smoothing affect the toggler.

    Fine ticks react faster but measure transition-contaminated
    intervals (drain timescale ~20 ms near the knee); coarse ticks
    attribute cleanly but adapt slower — the §5 trade-off.
    """
    base = replace(default_config(measure_ns=measure_ns), rate_per_sec=rate)
    off = run_benchmark(replace(base, nagle=False))
    on = run_benchmark(replace(base, nagle=True))
    rows = []
    for tick in ticks_ns:
        for alpha in alphas:
            holder: dict = {}

            def tweak(bed, holder=holder, tick=tick, alpha=alpha):
                holder["toggler"] = attach_toggler(
                    bed, config=TogglerConfig(tick_ns=tick, alpha=alpha)
                )

            result = run_benchmark(replace(base, nagle=False), tweak=tweak)
            rows.append(
                GranularityRow(
                    tick_ns=tick,
                    alpha=alpha,
                    latency_ns=result.latency.mean_ns,
                    toggles=holder["toggler"].toggles,
                    final_mode=holder["toggler"].mode,
                )
            )
    return GranularityResult(
        rate=rate,
        best_static_ns=min(off.latency.mean_ns, on.latency.mean_ns),
        rows=rows,
    )


# ---------------------------------------------------------------------------
# A7 — batching heuristic variants.
# ---------------------------------------------------------------------------


@dataclass
class VariantRow:
    """One heuristic variant's latency at one load."""

    variant: str
    rate: float
    latency_ns: float


@dataclass
class VariantAblationResult:
    """Static heuristic variants across loads."""

    rows: list[VariantRow]

    def latency(self, variant: str, rate: float) -> float:
        """Fetch one cell."""
        for row in self.rows:
            if row.variant == variant and row.rate == rate:
                return row.latency_ns
        raise KeyError((variant, rate))

    def render(self) -> str:
        """A7 as a table (variants as columns)."""
        rates = sorted({row.rate for row in self.rows})
        variants = []
        for row in self.rows:
            if row.variant not in variants:
                variants.append(row.variant)
        table_rows = []
        for rate in rates:
            table_rows.append(
                [int(rate)] + [
                    to_usecs(self.latency(variant, rate)) for variant in variants
                ]
            )
        return format_table(
            ["rate (RPS)"] + [f"{v} (us)" for v in variants],
            table_rows,
            title="A7: batching heuristic variants — mean latency",
        )


VARIANTS = {
    "off": dict(nagle=False, autocork=False),
    "nagle": dict(nagle=True, autocork=False),
    "minshall": dict(nagle=True, nagle_mode="minshall", autocork=False),
    "autocork": dict(nagle=False, autocork=True),
}


def variant_ablation_spec(
    rates: tuple[float, ...] = (8_000.0, 50_000.0),
    measure_ns: int = msecs(120),
):
    """The A7 grid as a declarative ``repro-campaign-v1`` spec.

    Each heuristic variant is a tweak and the load axis is a sweep, so
    the expansion order (tweak-major, then rate) reproduces the
    historical cell order exactly.
    """
    from repro.campaign import CampaignSpec, SweepSpec, TweakSpec

    return CampaignSpec(
        name="variant-ablation",
        scenario="run",
        base={"measure_ns": measure_ns},
        tweaks=tuple(
            TweakSpec(name=variant, overrides=dict(overrides))
            for variant, overrides in VARIANTS.items()
        ),
        sweeps=(SweepSpec(field="rate_per_sec", values=tuple(rates)),),
        matrix=("baseline",),
        metrics=("latency_mean_ns",),
    )


def run_variant_ablation(
    rates: tuple[float, ...] = (8_000.0, 50_000.0),
    measure_ns: int = msecs(120),
    workers: int = 1,
    policy=None,
    checkpoint=None,
    watchdog=None,
) -> VariantAblationResult:
    """A7: compare the stack's static batching heuristics head-to-head.

    Expected shape: Minshall's variant avoids classic Nagle's low-load
    tail-stall (matching "off") but, for the same reason, does not
    produce the request coalescing that rescues the overloaded receive
    path — the §2 point that *every* static policy embeds assumptions
    that hold only sometimes.

    The grid runs as a declarative campaign
    (:func:`variant_ablation_spec` through
    :func:`repro.campaign.run_spec`), so ``workers > 1`` fans it over a
    process pool with results identical to serial and
    ``policy``/``checkpoint``/``watchdog`` supervise it like any other
    campaign.  Rows come back in the historical order: variant-major,
    then rate.
    """
    from repro.campaign import run_spec

    run = run_spec(
        variant_ablation_spec(rates=tuple(rates), measure_ns=measure_ns),
        workers=workers,
        policy=policy, checkpoint=checkpoint, watchdog=watchdog,
    )
    return VariantAblationResult(rows=[
        VariantRow(
            variant=cell.tweak,
            rate=cell.sweep[0][1],
            latency_ns=values["latency_mean_ns"],
        )
        for cell, values in zip(run.matrix.cells, run.values)
    ])


# ---------------------------------------------------------------------------
# A12 — loss recovery: SACK vs NewReno-style dupacks.
# ---------------------------------------------------------------------------


@dataclass
class LossRecoveryRow:
    """One (loss rate, recovery mode) cell."""

    loss: float
    sack: bool
    completion_ms: float
    retransmits: int
    sack_retransmits: int


@dataclass
class LossRecoveryResult:
    """Bulk-transfer completion under loss, by recovery mechanism."""

    transfer_bytes: int
    rows: list[LossRecoveryRow]

    def completion(self, loss: float, sack: bool) -> float:
        """Fetch one cell's completion time (ms)."""
        for row in self.rows:
            if row.loss == loss and row.sack == sack:
                return row.completion_ms
        raise KeyError((loss, sack))

    def render(self) -> str:
        """A12 as a table."""
        losses = sorted({row.loss for row in self.rows})
        table_rows = []
        for loss in losses:
            table_rows.append((
                f"{loss:.0%}",
                self.completion(loss, False),
                self.completion(loss, True),
                self.completion(loss, False) / self.completion(loss, True),
            ))
        return format_table(
            ["loss", "dupack-only (ms)", "SACK (ms)", "speedup"],
            table_rows,
            title=(
                f"A12: {self.transfer_bytes//1024} KiB bulk transfer "
                "completion under loss"
            ),
        )


def run_loss_ablation(
    losses: tuple[float, ...] = (0.02, 0.05, 0.10),
    transfer_bytes: int = 400_000,
    seed: int = 17,
) -> LossRecoveryResult:
    """A12: how much SACK buys on lossy paths.

    Not a paper experiment — it validates the TCP substrate's recovery
    machinery and quantifies the SACK extension.  Each cell replays the
    *same* loss pattern (same seed) for both recovery modes.
    """
    from repro.sim.loop import Simulator
    from repro.sim.rng import RngRegistry
    from repro.host.host import Host
    from repro.net.topology import PointToPoint
    from repro.tcp.connect import connect_pair
    from repro.tcp.socket import TcpConfig

    rows = []
    for loss in losses:
        for sack in (False, True):
            sim = Simulator()
            rng = RngRegistry(seed).stream("loss")
            client = Host(sim, "client")
            server = Host(sim, "server")
            PointToPoint.connect(
                sim, client.nic, server.nic,
                loss_probability=loss, loss_rng=rng,
            )
            tcp_config = TcpConfig(sack=sack, min_rto_ns=5_000_000)
            sock_a, sock_b = connect_pair(
                sim, client, server, tcp_config, tcp_config
            )
            sock_a.send("bulk", transfer_bytes)
            done: dict = {}

            def reader(sock_b=sock_b, done=done):
                got = 0
                while got < transfer_bytes:
                    if sock_b.readable_bytes == 0:
                        yield sock_b.wait_readable()
                    nbytes, _ = sock_b.read()
                    got += nbytes
                done["time"] = sim.now

            sim.spawn(reader())
            sim.run(until=600 * 10**9)
            rows.append(
                LossRecoveryRow(
                    loss=loss,
                    sack=sack,
                    completion_ms=done["time"] / 1e6,
                    retransmits=sock_a.retransmits,
                    sack_retransmits=sock_a.sack_retransmits,
                )
            )
    return LossRecoveryResult(transfer_bytes=transfer_bytes, rows=rows)


# ---------------------------------------------------------------------------
# A5 — AIMD batch limits.
# ---------------------------------------------------------------------------


@dataclass
class AimdAblationResult:
    """AIMD batch-floor adaptation vs static Nagle settings."""

    rate: float
    off_latency_ns: float
    on_latency_ns: float
    aimd_latency_ns: float
    final_batch_bytes: int
    history: list[tuple[int, int, float | None]]

    def render(self) -> str:
        """A5 as a table."""
        return format_table(
            ["policy", "latency (us)"],
            [
                ("static off", to_usecs(self.off_latency_ns)),
                ("static on", to_usecs(self.on_latency_ns)),
                (f"AIMD (floor={self.final_batch_bytes}B)",
                 to_usecs(self.aimd_latency_ns)),
            ],
            title=f"A5: AIMD batch floor vs static Nagle at {self.rate:.0f} RPS",
        )


def run_aimd_ablation(
    rate: float = 50_000.0,
    measure_ns: int = msecs(200),
    aimd_config: AimdConfig | None = None,
) -> AimdAblationResult:
    """A5: gradual AIMD batching vs the binary heuristics."""
    base = replace(default_config(measure_ns=measure_ns), rate_per_sec=rate)
    off = run_benchmark(replace(base, nagle=False))
    on = run_benchmark(replace(base, nagle=True))
    holder: dict = {}

    def tweak(bed, holder=holder):
        estimator = E2EEstimator(bed.client_sock, exchange=bed.client_exchange)

        def sample_fn():
            sample = estimator.sample()
            if sample is None or not sample.defined:
                return None
            return PerfSample(
                latency_ns=sample.latency_ns,
                throughput_per_sec=sample.throughput_per_sec,
            )

        def apply_fn(batch_bytes: int) -> None:
            bed.client_sock.heuristics.min_batch_bytes = batch_bytes

        limiter = AimdBatchLimiter(
            bed.sim,
            sample_fn=sample_fn,
            apply_fn=apply_fn,
            config=aimd_config
            or AimdConfig(tick_ns=msecs(2), latency_target_ns=usecs(500)),
        )
        limiter.start()
        holder["limiter"] = limiter

    aimd = run_benchmark(replace(base, nagle=False), tweak=tweak)
    limiter = holder["limiter"]
    return AimdAblationResult(
        rate=rate,
        off_latency_ns=off.latency.mean_ns,
        on_latency_ns=on.latency.mean_ns,
        aimd_latency_ns=aimd.latency.mean_ns,
        final_batch_bytes=limiter.batch_bytes,
        history=limiter.history,
    )
