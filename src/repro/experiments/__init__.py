"""Experiment drivers: one module per paper figure plus ablations.

Each driver returns a structured result object and can render itself as
text; the benchmark suite under ``benchmarks/`` invokes these and prints
the same rows/series the paper reports.  See DESIGN.md's per-experiment
index (E1-E5, A1-A6).
"""

from repro.experiments.decomposition import DecompositionResult, run_decomposition
from repro.experiments.fanin import (
    FaninConfig,
    FaninResult,
    run_fanin,
    run_fanin_many,
)
from repro.experiments.faults import ChaosPoint, ChaosResult, run_faults
from repro.experiments.fig1 import Fig1Result, run_fig1
from repro.experiments.fig2 import Fig2Result, run_fig2
from repro.experiments.fig4a import Fig4aResult, run_fig4a
from repro.experiments.fig4b import Fig4bResult, run_fig4b
from repro.experiments.tail import TailResult, run_tail
from repro.experiments.timevarying import PhasePlan, TimeVaryingResult, run_timevarying

__all__ = [
    "ChaosPoint",
    "ChaosResult",
    "DecompositionResult",
    "FaninConfig",
    "FaninResult",
    "Fig1Result",
    "Fig2Result",
    "Fig4aResult",
    "Fig4bResult",
    "PhasePlan",
    "TailResult",
    "TimeVaryingResult",
    "run_decomposition",
    "run_fanin",
    "run_fanin_many",
    "run_faults",
    "run_fig1",
    "run_fig2",
    "run_fig4a",
    "run_fig4b",
    "run_tail",
    "run_timevarying",
]
