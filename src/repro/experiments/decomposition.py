"""A11 — decomposing L into its four queue delays (the Figure 3 story).

The §3.2 estimate is a *sum*:

    L ≈ L_unacked^local − L_ackdelay^remote + L_unread^local + L_unread^remote

Figure 3 argues each term covers a leg of the request/response journey.
This experiment makes that concrete: it reports the four components
across the load range and shows how the dominant term moves — wire/ack
time (unacked) at low load, receive-path queueing (remote unread) as the
server's softirq backlog grows — which is precisely the signal a
batching policy needs ("where is the time going?"), not just a single
scalar.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.analysis.offline import window_estimate
from repro.analysis.report import format_table
from repro.core.littles_law import get_avgs
from repro.experiments.fig4a import default_config
from repro.loadgen.lancet import BenchConfig, run_benchmark
from repro.units import msecs, to_usecs


@dataclass(frozen=True)
class Decomposition:
    """The client view's four components over one measure window (ns)."""

    rate: float
    unacked_local: float
    ackdelay_remote: float
    unread_local: float
    unread_remote: float
    total: float
    measured: float

    @property
    def recombined(self) -> float:
        """The formula's sum, from the components."""
        return (
            self.unacked_local
            - self.ackdelay_remote
            + self.unread_local
            + self.unread_remote
        )


@dataclass
class DecompositionResult:
    """Components across the load range."""

    rows: list[Decomposition]

    def render(self) -> str:
        """A11 as a table (all µs)."""
        return format_table(
            ["rate (RPS)", "unacked", "-ackdelay", "unread loc",
             "unread rem", "L (sum)", "measured"],
            [
                (
                    int(row.rate),
                    to_usecs(row.unacked_local),
                    to_usecs(-row.ackdelay_remote),
                    to_usecs(row.unread_local),
                    to_usecs(row.unread_remote),
                    to_usecs(row.total),
                    to_usecs(row.measured),
                )
                for row in self.rows
            ],
            title="A11: client-view latency decomposition (Figure 3's legs, us)",
        )


def _component(prev, cur) -> float:
    if cur.time <= prev.time:
        return 0.0
    return get_avgs(prev, cur).latency_ns or 0.0


def run_decomposition(
    rates: tuple[float, ...] = (5_000.0, 20_000.0, 30_000.0, 36_000.0),
    base: BenchConfig | None = None,
    nagle: bool = False,
) -> DecompositionResult:
    """Decompose the client-view estimate at several loads."""
    base = base or default_config(measure_ns=msecs(120))
    rows = []
    for rate in rates:
        config = replace(base, rate_per_sec=rate, nagle=nagle)
        holder: dict = {}
        result = run_benchmark(config, tweak=lambda bed: holder.update(bed=bed))
        samples = holder["bed"].collector.samples
        first, last = samples[0], samples[-1]
        estimate = window_estimate(samples, first.time, last.time)
        rows.append(
            Decomposition(
                rate=rate,
                unacked_local=_component(first.client.unacked, last.client.unacked),
                ackdelay_remote=_component(
                    first.server.ackdelay, last.server.ackdelay
                ),
                unread_local=_component(first.client.unread, last.client.unread),
                unread_remote=_component(first.server.unread, last.server.unread),
                total=estimate.client_view_ns or 0.0,
                measured=result.send_latency.mean_ns,
            )
        )
    return DecompositionResult(rows=rows)
