"""TCP option keys used by the metadata exchange.

The actual wire formats live with the contribution in
:mod:`repro.core.exchange`; this module re-exports the option keys so
TCP-layer code can refer to them without importing the estimator stack.
"""

from repro.core.exchange import OPTION_E2E, OPTION_HINT

__all__ = ["OPTION_E2E", "OPTION_HINT"]
