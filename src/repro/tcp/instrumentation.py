"""Socket instrumentation hook protocol.

The socket always maintains the paper's three queues in **byte** units
(the prototype's choice, §3.4).  Alternative message units — packets,
syscalls, application hints (§3.3) — attach as *instruments*: objects
registered on :attr:`repro.tcp.socket.TcpSocket.instruments` that receive
progress callbacks and maintain their own queue states.

All callbacks are optional in spirit; :class:`SocketInstrument` provides
no-op defaults so subclasses override only what they need.
"""

from __future__ import annotations


class SocketInstrument:
    """Base class: no-op implementations of every socket hook.

    Hooks and their meaning (offsets are absolute stream positions):

    - ``on_send(nbytes)`` — the application wrote ``nbytes`` (one send
      syscall);
    - ``on_segment_sent(seq, nbytes)`` — a (super-)segment left the
      stack for the NIC;
    - ``on_acked(new_snd_una)`` — cumulative ack advanced;
    - ``on_arrived(new_rcv_nxt)`` — in-order receive frontier advanced;
    - ``on_read(new_read_seq)`` — the application consumed up to this
      offset;
    - ``on_ack_sent(acked_upto)`` — an ack (pure or piggybacked) for
      everything up to this offset left this endpoint.
    """

    def on_send(self, nbytes: int) -> None:
        pass

    def on_segment_sent(self, seq: int, nbytes: int) -> None:
        pass

    def on_acked(self, new_snd_una: int) -> None:
        pass

    def on_arrived(self, new_rcv_nxt: int) -> None:
        pass

    def on_read(self, new_read_seq: int) -> None:
        pass

    def on_ack_sent(self, acked_upto: int) -> None:
        pass
