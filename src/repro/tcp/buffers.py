"""Byte-stream bookkeeping shared between a sender and its receiver.

Payload bytes are modelled by counts and absolute stream offsets.  A
:class:`ByteStream` records, per connection direction, which *messages*
(application-level units — RESP requests, responses) occupy which offset
ranges, so the receiving application can recover message boundaries
exactly as a real parser would, without the simulation shuffling real
buffers.

The sender side appends ``(end_offset, message)`` records as the
application writes; the receiver side pops every message whose last byte
it has consumed.  This is simulation bookkeeping, not a covert channel:
nothing about *timing* or *sizes* leaks — a message is only surfaced once
all of its bytes were delivered in order and read.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.errors import TcpError


class ByteStream:
    """Message-boundary registry for one direction of a connection."""

    __slots__ = ("write_seq", "_boundaries")

    def __init__(self):
        self.write_seq = 0
        self._boundaries: deque[tuple[int, Any]] = deque()

    def append(self, nbytes: int, message: Any) -> tuple[int, int]:
        """Record a message occupying the next ``nbytes`` of the stream.

        Returns the (start, end) offsets of the message.
        """
        if nbytes <= 0:
            raise TcpError(f"message length must be positive, got {nbytes}")
        start = self.write_seq
        self.write_seq += nbytes
        self._boundaries.append((self.write_seq, message))
        return start, self.write_seq

    def pop_completed(self, read_seq: int) -> list[Any]:
        """Pop every message whose end offset is at most ``read_seq``."""
        completed: list[Any] = []
        while self._boundaries and self._boundaries[0][0] <= read_seq:
            completed.append(self._boundaries.popleft()[1])
        return completed

    def pending_messages(self) -> int:
        """Messages written but not yet fully consumed by the receiver."""
        return len(self._boundaries)

    def boundaries_in(self, lo: int, hi: int) -> int:
        """How many message end-offsets fall in (lo, hi].

        Used by unit-granularity instrumentation to translate byte
        progress into message counts.
        """
        return sum(1 for end, _ in self._boundaries if lo < end <= hi)


class ReassemblyQueue:
    """Out-of-order segment holding area for the receiver.

    Stores ``(seq, end_seq)`` ranges beyond ``rcv_nxt`` and advances the
    in-order frontier as holes fill.  Duplicate and overlapping ranges
    (retransmits) are tolerated.
    """

    __slots__ = ("_ranges",)

    def __init__(self):
        self._ranges: list[tuple[int, int]] = []

    def __len__(self) -> int:
        return len(self._ranges)

    def add(self, seq: int, end_seq: int) -> None:
        """Hold an out-of-order range."""
        if end_seq <= seq:
            raise TcpError(f"empty range [{seq}, {end_seq})")
        self._ranges.append((seq, end_seq))
        self._ranges.sort()

    def advance(self, rcv_nxt: int) -> int:
        """Given the new in-order frontier, merge any now-contiguous held
        ranges and return the advanced frontier."""
        merged = True
        while merged:
            merged = False
            remaining: list[tuple[int, int]] = []
            for seq, end_seq in self._ranges:
                if seq <= rcv_nxt < end_seq:
                    rcv_nxt = end_seq
                    merged = True
                elif end_seq <= rcv_nxt:
                    continue  # fully duplicate, drop
                else:
                    remaining.append((seq, end_seq))
            self._ranges = remaining
        return rcv_nxt

    def blocks(self, limit: int = 3) -> tuple[tuple[int, int], ...]:
        """Up to ``limit`` held ranges, coalesced — the SACK blocks a
        receiver advertises."""
        if not self._ranges:
            return ()
        coalesced: list[tuple[int, int]] = []
        for seq, end_seq in self._ranges:  # already sorted
            if coalesced and seq <= coalesced[-1][1]:
                coalesced[-1] = (
                    coalesced[-1][0], max(coalesced[-1][1], end_seq)
                )
            else:
                coalesced.append((seq, end_seq))
        return tuple(coalesced[:limit])
