"""Reno-style congestion control.

Byte-counting slow start and congestion avoidance with multiplicative
decrease on loss.  On the paper's lossless 100 Gbps testbed the window
grows quickly and stops constraining the experiments; the implementation
exists so that (a) startup behaviour is realistic, and (b) the lossy-link
tests exercise a real control loop.  This is also the AIMD machinery the
paper's §5 points to as a model for adaptive batch limits.
"""

from __future__ import annotations

from repro.errors import TcpError


class RenoCongestionControl:
    """cwnd/ssthresh state, in bytes."""

    def __init__(self, mss: int, initial_window_segments: int = 10):
        if mss <= 0:
            raise TcpError(f"MSS must be positive, got {mss}")
        self.mss = mss
        self.cwnd = initial_window_segments * mss
        self.ssthresh = 1 << 30
        self.losses = 0

    @property
    def in_slow_start(self) -> bool:
        """Whether cwnd is below ssthresh."""
        return self.cwnd < self.ssthresh

    def on_ack(self, acked_bytes: int) -> None:
        """Grow cwnd for newly acknowledged bytes."""
        if acked_bytes < 0:
            raise TcpError(f"negative acked byte count {acked_bytes}")
        if acked_bytes == 0:
            return
        if self.in_slow_start:
            self.cwnd += acked_bytes
        else:
            # Byte-counting congestion avoidance: +MSS per cwnd of acks.
            self.cwnd += max(1, self.mss * acked_bytes // self.cwnd)

    def on_loss(self) -> None:
        """Multiplicative decrease (fast retransmit signal)."""
        self.losses += 1
        self.ssthresh = max(2 * self.mss, self.cwnd // 2)
        self.cwnd = self.ssthresh

    def on_timeout(self) -> None:
        """Collapse to one segment after a retransmission timeout."""
        self.losses += 1
        self.ssthresh = max(2 * self.mss, self.cwnd // 2)
        self.cwnd = self.mss
