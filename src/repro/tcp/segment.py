"""TCP segments.

A :class:`Segment` is the TCP layer's unit of transmission.  Payload bytes
are modelled by *length and stream offset*, not by materialized byte
arrays: the simulation only ever needs sizes and positions, and carrying
real buffers would dominate runtime at the packet rates we simulate.
Message boundaries travel out-of-band through the shared
:class:`~repro.tcp.buffers.ByteStream` bookkeeping.

Segments support :meth:`split_at` (used by the NIC to slice TSO
super-segments into MTU-sized wire packets) and :meth:`merge` (used by
GRO to coalesce contiguous arrivals into one delivery).

One segment is allocated per transmission (more under TSO/GRO), so the
class is a plain ``__slots__`` object with an explicit constructor —
the dataclass machinery (and ``dataclasses.replace`` in the split/merge
paths) measurably showed up in pipeline profiles.
"""

from __future__ import annotations

from typing import Any

from repro.errors import TcpError


class Segment:
    """One TCP segment (or a TSO/GRO aggregate of contiguous segments).

    ``seq`` is the absolute stream offset of the first payload byte;
    ``payload_len`` may exceed the MSS for super-segments.  ``ack`` is the
    cumulative acknowledgment for the reverse direction and ``wnd`` the
    advertised receive window.  ``wire_count`` tracks how many wire
    packets this (possibly GRO-merged) segment represents, for CPU-cost
    accounting.
    """

    __slots__ = (
        "conn_id",
        "src",
        "dst",
        "seq",
        "payload_len",
        "ack",
        "wnd",
        "options",
        "wire_count",
        "is_retransmit",
        "psh",
        "window_probe",
        "sack_blocks",
    )

    def __init__(
        self,
        conn_id: int,
        src: str,
        dst: str,
        seq: int,
        payload_len: int,
        ack: int,
        wnd: int,
        options: dict[str, Any] | None = None,
        wire_count: int = 1,
        is_retransmit: bool = False,
        psh: bool = False,
        # Zero-window probe marker.  Real TCP probes are recognized by
        # carrying a byte beyond the advertised window; the flag models
        # the same "please re-advertise your window" semantics directly.
        window_probe: bool = False,
        # SACK blocks: out-of-order ranges the receiver holds (RFC 2018).
        sack_blocks: tuple = (),
    ):
        self.conn_id = conn_id
        self.src = src
        self.dst = dst
        self.seq = seq
        self.payload_len = payload_len
        self.ack = ack
        self.wnd = wnd
        self.options = {} if options is None else options
        self.wire_count = wire_count
        self.is_retransmit = is_retransmit
        self.psh = psh
        self.window_probe = window_probe
        self.sack_blocks = sack_blocks

    @property
    def end_seq(self) -> int:
        """Stream offset just past this segment's payload."""
        return self.seq + self.payload_len

    @property
    def is_pure_ack(self) -> bool:
        """True for segments carrying no payload."""
        return self.payload_len == 0

    def options_bytes(self) -> int:
        """Wire bytes consumed by variable options (metadata exchange,
        SACK blocks: 2-byte header + 8 bytes per block)."""
        if not self.options:
            return 2 + 8 * len(self.sack_blocks) if self.sack_blocks else 0
        option_bytes = sum(
            getattr(value, "WIRE_BYTES", 8) for value in self.options.values()
        )
        if self.sack_blocks:
            option_bytes += 2 + 8 * len(self.sack_blocks)
        return option_bytes

    # ------------------------------------------------------------------
    # TSO slicing.
    # ------------------------------------------------------------------

    def split_at(self, nbytes: int) -> tuple["Segment", "Segment | None"]:
        """Split into a head of at most ``nbytes`` payload and the rest.

        Options stay on the *tail* slice so that, as on real NICs doing
        TSO, the final packet of the burst carries the freshest metadata;
        the cumulative ``ack``/``wnd`` are replicated on every slice.
        """
        if nbytes <= 0:
            raise TcpError(f"split size must be positive, got {nbytes}")
        if self.payload_len <= nbytes:
            return self, None
        head = Segment(
            self.conn_id,
            self.src,
            self.dst,
            self.seq,
            nbytes,
            self.ack,
            self.wnd,
            {},
            1,
            self.is_retransmit,
            False,  # PSH rides the last slice of the burst
            self.window_probe,
            (),
        )
        rest = Segment(
            self.conn_id,
            self.src,
            self.dst,
            self.seq + nbytes,
            self.payload_len - nbytes,
            self.ack,
            self.wnd,
            self.options,
            1,
            self.is_retransmit,
            self.psh,
            self.window_probe,
            self.sack_blocks,
        )
        return head, rest

    # ------------------------------------------------------------------
    # GRO merging.
    # ------------------------------------------------------------------

    def can_merge(self, nxt: "Segment") -> bool:
        """Whether ``nxt`` extends this segment contiguously."""
        return (
            nxt.conn_id == self.conn_id
            and nxt.src == self.src
            and nxt.seq == self.seq + self.payload_len
            and nxt.payload_len != 0
            and not self.is_retransmit
            and not nxt.is_retransmit
        )

    def merge(self, nxt: "Segment") -> "Segment":
        """Coalesce a contiguous successor into one delivery.

        The later segment's ``ack``/``wnd``/options win: they are
        cumulative (ack, wnd) or snapshot-valued (metadata option), so
        freshest-wins is semantically exact.
        """
        if not self.can_merge(nxt):
            raise TcpError(f"cannot merge {nxt!r} after {self!r}")
        if nxt.options:
            merged_options = dict(self.options)
            merged_options.update(nxt.options)
        else:
            merged_options = self.options
        return Segment(
            self.conn_id,
            self.src,
            self.dst,
            self.seq,
            self.payload_len + nxt.payload_len,
            nxt.ack if nxt.ack > self.ack else self.ack,
            nxt.wnd,
            merged_options,
            self.wire_count + nxt.wire_count,
            self.is_retransmit,
            self.psh or nxt.psh,
            self.window_probe,
            nxt.sack_blocks or self.sack_blocks,
        )

    def __repr__(self) -> str:
        kind = "ack" if self.payload_len == 0 else f"{self.payload_len}B"
        return (
            f"<Segment conn={self.conn_id} {self.src}->{self.dst} "
            f"seq={self.seq} {kind} ack={self.ack}>"
        )
