"""The simulated TCP socket.

One :class:`TcpSocket` is one endpoint of an established connection: a
sender (send buffer, cwnd, Nagle/auto-corking, retransmission) and a
receiver (reassembly, delayed acks, receive window) sharing a segment
demux.  Connections are created pre-established by
:func:`repro.tcp.connect.connect_pair` — the experiments never need the
handshake, and modelling it would add nothing to the batching story.

The three paper queues are instrumented exactly where the paper's kernel
prototype hooks them (§3.4, footnote 1):

- **unacked** (sk_wmem_queued): bytes enter on ``send()`` and leave when
  cumulatively acknowledged;
- **unread** (sk_rmem_alloc): bytes enter on in-order arrival and leave
  on application ``read()``;
- **ackdelay** (rcv_nxt − rcv_wup): bytes enter on in-order arrival and
  leave when an ack (pure or piggybacked) is sent.

Each queue is a :class:`repro.core.qstate.QueueState` updated via TRACK.
Additional message-unit instrumentation (packets, syscalls, hints — §3.3)
attaches through the :attr:`TcpSocket.instruments` hook list.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any

from repro.core.qstate import QueueState
from repro.errors import TcpError
from repro.net.packet import acquire_packet
from repro.sim.events import Event
from repro.tcp.buffers import ByteStream, ReassemblyQueue
from repro.tcp.cc import RenoCongestionControl
from repro.tcp.delack import DelayedAckManager
from repro.tcp.nagle import BatchingHeuristics
from repro.tcp.rtt import RttEstimator
from repro.tcp.segment import Segment
from repro.units import KIB, MIB, msecs

_conn_ids = itertools.count(1)


def next_conn_id() -> int:
    """Allocate a fresh connection identifier."""
    return next(_conn_ids)


@dataclass(frozen=True)
class TcpConfig:
    """Per-socket protocol parameters.

    ``nagle`` is the batching switch under study (inverse of
    TCP_NODELAY).  ``autocork`` defaults off so experiments isolate
    Nagle; the auto-corking ablation turns it on.  ``min_batch_bytes``
    is the §5 AIMD-adjustable batching floor (0 = disabled).
    """

    mss: int = 1448
    recv_buffer_bytes: int = 4 * MIB
    nagle: bool = True
    nagle_mode: str = "classic"
    autocork: bool = False
    min_batch_bytes: int = 0
    delack_delay_ns: int = msecs(40)
    delack_adaptive: bool = False
    initial_cwnd_segments: int = 10
    min_rto_ns: int = msecs(200)
    tso_max_bytes: int = 64 * KIB
    # RFC 2018 selective acknowledgments: the receiver advertises its
    # out-of-order holdings; the sender retransmits holes instead of
    # waiting out RTOs.  Off by default (the paper's testbed is
    # lossless); the lossy-path tests exercise it.
    sack: bool = False
    # tcp_slow_start_after_idle: collapse cwnd back to the initial
    # window after an idle period longer than the RTO.  Off by default
    # (the Figure 4 calibration assumes steady streams); the knob exists
    # because idle restarts interact with batching at low rates.
    slow_start_after_idle: bool = False


class TcpSocket:
    """One endpoint of an established TCP connection."""

    def __init__(self, sim, host, config: TcpConfig, conn_id: int, name: str):
        self._sim = sim
        self.host = host
        self.config = config
        self.conn_id = conn_id
        self.name = name
        self.peer: "TcpSocket | None" = None
        # Rebound once at construction: the config is frozen, and the
        # transmit path reads these per segment.
        self._sack = config.sack
        self._readable_name = f"{name}.readable"

        self.heuristics = BatchingHeuristics(
            nagle=config.nagle,
            nagle_mode=config.nagle_mode,
            autocork=config.autocork,
            min_batch_bytes=config.min_batch_bytes,
        )
        self._small_packet_end = 0  # end seq of the last sub-MSS send

        # --- sender state -------------------------------------------------
        self.out_stream = ByteStream()
        self.snd_una = 0
        self.snd_nxt = 0
        self.cc = RenoCongestionControl(config.mss, config.initial_cwnd_segments)
        self.rtt = RttEstimator(min_rto_ns=config.min_rto_ns)
        self.peer_rwnd = config.recv_buffer_bytes
        self._rtt_probe: tuple[int, int] | None = None  # (end_seq, sent_at)
        self._rtx_timer = None
        self._persist_timer = None
        self._persist_backoff = 1
        self.window_probes_sent = 0
        self._dupacks = 0
        self._last_send_ns = sim.now
        self.idle_restarts = 0
        # SACK scoreboard: peer-acknowledged ranges beyond snd_una.
        self._sacked: list[tuple[int, int]] = []
        self._recovery_rtx_upto = 0
        self.sack_retransmits = 0

        # --- receiver state ------------------------------------------------
        self.rcv_nxt = 0
        self.rcv_wup = 0
        self.read_seq = 0
        self.in_stream: ByteStream | None = None
        self.reassembly = ReassemblyQueue()
        self.delack = DelayedAckManager(
            sim, config.mss, self._delack_fire, config.delack_delay_ns,
            adaptive=config.delack_adaptive,
        )
        self._readers: list[Event] = []

        # --- paper instrumentation (byte units, §3.4) -----------------------
        self.qs_unacked = QueueState(host.clock)
        self.qs_unread = QueueState(host.clock)
        self.qs_ackdelay = QueueState(host.clock)
        self.instruments: list[Any] = []
        self.exchange = None  # attached by repro.core.exchange

        self._corked = False
        self._read_stalled = False
        self.read_stalls = 0

        # --- statistics ------------------------------------------------------
        self.segments_sent = 0
        self.pure_acks_sent = 0
        self.retransmits = 0
        self.bytes_sent = 0

    # ======================================================================
    # Application API.
    # ======================================================================

    def send(self, message: Any, nbytes: int) -> None:
        """Queue a message of ``nbytes`` on the stream and push.

        The CPU cost of the send syscall is the *application's* to charge
        (it knows its own context); this method does protocol work only.
        """
        if self.peer is None:
            raise TcpError(f"socket {self.name!r} is not connected")
        self.out_stream.append(nbytes, message)
        self.qs_unacked.track(nbytes)
        if self.instruments:
            for instrument in self.instruments:
                instrument.on_send(nbytes)
        self._push()

    @property
    def readable_bytes(self) -> int:
        """In-order received bytes not yet read by the application.

        Zero while a read stall is injected — the stalled application
        cannot make progress — though the backlog still shrinks the
        advertised window (see :meth:`_advertised_window`).
        """
        if self._read_stalled:
            return 0
        return self.rcv_nxt - self.read_seq

    def read(self, max_bytes: int | None = None) -> tuple[int, list[Any]]:
        """Consume up to ``max_bytes`` in-order bytes.

        Returns ``(nbytes, messages)`` where ``messages`` are the
        application-level units whose final byte was consumed by this
        read — exactly what a streaming parser would hand back.
        """
        nbytes = self.readable_bytes
        if max_bytes is not None:
            nbytes = min(nbytes, max_bytes)
        if nbytes == 0:
            return 0, []
        window_before = self._advertised_window()
        self.read_seq += nbytes
        self.qs_unread.track(-nbytes)
        if self.instruments:
            for instrument in self.instruments:
                instrument.on_read(self.read_seq)
        messages = self.in_stream.pop_completed(self.read_seq)
        # Receive-window update: if the window was nearly closed and the
        # read opened it by 2+ MSS, tell the peer so it can resume.
        window_after = self._advertised_window()
        if (
            window_before < 2 * self.config.mss
            and window_after >= 2 * self.config.mss
        ):
            self._emit_pure_ack()
        return nbytes, messages

    def wait_readable(self) -> Event:
        """Waitable that fires when in-order data is available."""
        event = Event(self._sim, name=self._readable_name)
        if self.readable_bytes > 0:
            event.trigger()
        else:
            self._readers.append(event)
        return event

    def cork(self) -> None:
        """TCP_CORK analogue: hold all transmission until :meth:`uncork`.

        Applications use this to flush several queued replies as one
        unit (the writev model of an event-loop server's output buffer).
        """
        self._corked = True

    def uncork(self) -> None:
        """Release a cork and push whatever accumulated."""
        self._corked = False
        self._push()

    def set_nagle(self, enabled: bool) -> None:
        """Toggle Nagle batching at runtime (the paper's dynamic knob)."""
        self.heuristics.nagle = enabled
        if not enabled:
            self._push()  # release anything currently held

    def set_read_stall(self, stalled: bool) -> None:
        """Fault hook: freeze/unfreeze the application read path.

        While stalled, :meth:`read` consumes nothing and
        :meth:`wait_readable` events stay pending, so unread bytes
        accumulate and the receive window closes — a slow receiver as
        the peer observes it.  Unstalling wakes any waiting readers.
        """
        if self._read_stalled == stalled:
            return
        self._read_stalled = stalled
        if stalled:
            self.read_stalls += 1
        elif self.readable_bytes > 0 and self._readers:
            readers, self._readers = self._readers, []
            for event in readers:
                event.trigger()

    # ======================================================================
    # Transmit path.
    # ======================================================================

    def _push(self) -> None:
        """tcp_write_xmit: send whatever the windows and batching allow."""
        if self._corked:
            return
        config = self.config
        if (
            config.slow_start_after_idle
            and self.snd_nxt == self.snd_una
            and self._sim.now - self._last_send_ns > self.rtt.rto_ns
            and self.cc.cwnd > config.initial_cwnd_segments * config.mss
            and self.out_stream.write_seq > self.snd_nxt
        ):
            # tcp_slow_start_after_idle: the old cwnd no longer reflects
            # the path after an idle RTO; restart from the initial window.
            self.cc.cwnd = config.initial_cwnd_segments * config.mss
            self.idle_restarts += 1
        while True:
            available = self.out_stream.write_seq - self.snd_nxt
            if available <= 0:
                self._cancel_persist_timer()
                return
            window_end = self.snd_una + min(self.cc.cwnd, self.peer_rwnd)
            window_avail = window_end - self.snd_nxt
            if window_avail <= 0:
                self._maybe_arm_persist(needed=1)
                return
            if available >= config.mss:
                if window_avail < config.mss:
                    # Sender-side SWS avoidance: wait for the window to
                    # open — but guard the wait with the persist timer,
                    # or a lost window update deadlocks the flow.
                    self._maybe_arm_persist(needed=config.mss)
                    return
                chunk = min(available, window_avail, config.tso_max_bytes)
                chunk -= chunk % config.mss  # keep the sub-MSS tail back
            else:
                if window_avail < available:
                    self._maybe_arm_persist(needed=available)
                    return
                if not self.heuristics.may_send_partial(
                    queued_bytes=available,
                    unacked_bytes=self.snd_nxt - self.snd_una,
                    tx_ring_occupancy=self.host.nic.tx_ring_occupancy,
                    small_packet_outstanding=(
                        self._small_packet_end > self.snd_una
                    ),
                ):
                    trace = self.host.trace
                    if trace.enabled or (
                        (fwd := trace.forward) is not None and fwd.enabled
                    ):
                        trace.emit(self.name, "batching_hold", available)
                    return  # held by Nagle / auto-corking / batch floor
                chunk = available
                self._small_packet_end = self.snd_nxt + chunk
            self._transmit(self.snd_nxt, chunk)
            self.snd_nxt += chunk

    def _transmit(self, seq: int, nbytes: int, retransmit: bool = False) -> None:
        host = self.host
        dst = self.peer.host.name
        segment = Segment(
            conn_id=self.conn_id,
            src=host.name,
            dst=dst,
            seq=seq,
            payload_len=nbytes,
            ack=self.rcv_nxt,
            wnd=self._advertised_window(),
            is_retransmit=retransmit,
            # PSH when this transmission empties the send queue — as in
            # tcp_push: the receiver should deliver without waiting for
            # more.  A Nagle-held residue keeps the queue non-empty, so
            # a batching sender naturally emits unpushed streams.
            psh=(seq + nbytes == self.out_stream.write_seq),
            sack_blocks=(
                self.reassembly.blocks() if self._sack else ()
            ),
        )
        self._note_ack_carried()
        if self.exchange is not None:
            self.exchange.on_transmit(segment)
        if retransmit:
            self.retransmits += 1
            if self._rtt_probe is not None and self._rtt_probe[0] > self.snd_una:
                self._rtt_probe = None  # Karn: never sample retransmitted data
        else:
            self.segments_sent += 1
            self.bytes_sent += nbytes
            if self._rtt_probe is None:
                self._rtt_probe = (seq + nbytes, self._sim.now)
            if self.instruments:
                for instrument in self.instruments:
                    instrument.on_segment_sent(seq, nbytes)
        self._last_send_ns = self._sim.now
        trace = host.trace
        if trace.enabled or (
            (fwd := trace.forward) is not None and fwd.enabled
        ):
            trace.emit(
                self.name, "tx",
                {"seq": seq, "len": nbytes, "psh": segment.psh,
                 "retransmit": retransmit},
            )
        host.nic.post(
            acquire_packet(
                host.name,
                dst,
                nbytes,
                payload=segment,
                options_bytes=segment.options_bytes(),
            )
        )
        if self._rtx_timer is None:
            self._arm_rtx_timer()

    def _emit_pure_ack(self, window_probe: bool = False) -> None:
        """Send an ack-only segment, charging the net core's tx cost."""
        segment = Segment(
            conn_id=self.conn_id,
            src=self.host.name,
            dst=self.peer.host.name,
            seq=self.snd_nxt,
            payload_len=0,
            ack=self.rcv_nxt,
            wnd=self._advertised_window(),
            window_probe=window_probe,
            sack_blocks=(
                self.reassembly.blocks() if self._sack else ()
            ),
        )
        self._note_ack_carried()
        if self.exchange is not None:
            self.exchange.on_transmit(segment)
        self.pure_acks_sent += 1
        packet = acquire_packet(
            self.host.name,
            self.peer.host.name,
            0,
            payload=segment,
            options_bytes=segment.options_bytes(),
        )
        self.host.net_core.execute(
            self.host.costs.tx_packet_ns, lambda: self.host.nic.post(packet)
        )

    def _delack_fire(self) -> None:
        self._emit_pure_ack()

    def _note_ack_carried(self) -> None:
        """An outgoing segment carries ack=rcv_nxt: drain the ackdelay
        queue and stand the delack machinery down."""
        pending = self.rcv_nxt - self.rcv_wup
        if pending > 0:
            self.qs_ackdelay.track(-pending)
            if self.instruments:
                for instrument in self.instruments:
                    instrument.on_ack_sent(self.rcv_nxt)
        self.rcv_wup = self.rcv_nxt
        self.delack.on_ack_piggybacked()

    # ======================================================================
    # Receive path (runs in softirq context; cost already charged).
    # ======================================================================

    def segment_arrived(self, segment: Segment) -> None:
        """Demux entry point for one (possibly GRO-merged) segment."""
        trace = self.host.trace
        if trace.enabled or (
            (fwd := trace.forward) is not None and fwd.enabled
        ):
            trace.emit(
                self.name, "rx",
                {"seq": segment.seq, "len": segment.payload_len,
                 "ack": segment.ack, "wire_count": segment.wire_count},
            )
        if self.exchange is not None and segment.options:
            self.exchange.on_receive(segment.options)
        old_rwnd = self.peer_rwnd
        self.peer_rwnd = segment.wnd
        if self._sack and segment.sack_blocks:
            self._record_sacked(segment.sack_blocks)
        if segment.ack > self.snd_una:
            self._process_ack(segment.ack)
        elif (
            segment.is_pure_ack
            and segment.ack == self.snd_una
            and self.snd_nxt > self.snd_una
        ):
            self._process_dupack()
        if segment.window_probe:
            self._emit_pure_ack()  # re-advertise the current window
        if not segment.is_pure_ack:
            self._process_data(segment)
        elif segment.wnd > old_rwnd:
            self._push()  # window update may unblock the sender

    def _process_ack(self, new_ack: int) -> None:
        if new_ack > self.snd_nxt:
            raise TcpError(
                f"{self.name}: ack {new_ack} beyond snd_nxt {self.snd_nxt}"
            )
        acked = new_ack - self.snd_una
        self.snd_una = new_ack
        self._dupacks = 0
        self._recovery_rtx_upto = 0
        if self._sacked:
            self._sacked = [
                (max(s, new_ack), e) for s, e in self._sacked if e > new_ack
            ]
            # Partial ack during SACK recovery: the scoreboard still
            # shows holes, so repair the first immediately rather than
            # waiting for three fresh dupacks per hole.
            hole = self._next_hole(0)
            if hole is not None:
                start, end = hole
                self.sack_retransmits += 1
                self._transmit(start, end - start, retransmit=True)
                self._recovery_rtx_upto = end
        self.qs_unacked.track(-acked)
        if self.instruments:
            for instrument in self.instruments:
                instrument.on_acked(new_ack)
        self.cc.on_ack(acked)
        if self._rtt_probe is not None and new_ack >= self._rtt_probe[0]:
            self.rtt.sample(self._sim.now - self._rtt_probe[1])
            self._rtt_probe = None
        self._cancel_rtx_timer()
        if self.snd_nxt > self.snd_una:
            self._arm_rtx_timer()
        self._push()  # window opened; may also release a Nagle-held tail

    def _process_dupack(self) -> None:
        self._dupacks += 1
        if self._dupacks < 3:
            return
        if not self.config.sack:
            if self._dupacks == 3:
                self.cc.on_loss()
                chunk = min(self.config.mss, self.snd_nxt - self.snd_una)
                self._transmit(self.snd_una, chunk, retransmit=True)
            return
        # SACK recovery: each further dupack repairs the next hole the
        # scoreboard exposes, instead of waiting out an RTO per hole.
        if self._dupacks == 3:
            self.cc.on_loss()
        hole = self._next_hole(self._recovery_rtx_upto)
        if hole is None:
            if self._dupacks == 3 and self.snd_nxt > self.snd_una:
                # Dupacks without scoreboard evidence (e.g. the blocks
                # were lost too): fall back to the classic retransmit.
                chunk = min(self.config.mss, self.snd_nxt - self.snd_una)
                self._transmit(self.snd_una, chunk, retransmit=True)
            return
        start, end = hole
        self.sack_retransmits += 1
        self._transmit(start, end - start, retransmit=True)
        self._recovery_rtx_upto = end

    # ------------------------------------------------------------------
    # SACK scoreboard.
    # ------------------------------------------------------------------

    def _record_sacked(self, blocks) -> None:
        for start, end in blocks:
            start = max(start, self.snd_una)
            if end > start:
                self._sacked.append((start, end))
        if not self._sacked:
            return
        self._sacked.sort()
        merged: list[tuple[int, int]] = []
        for start, end in self._sacked:
            if merged and start <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], end))
            else:
                merged.append((start, end))
        self._sacked = merged

    def _next_hole(self, from_seq: int) -> tuple[int, int] | None:
        """The next un-sacked, un-repaired chunk (≤ 1 MSS) to resend.

        Only data *below the highest SACKed byte* counts as a hole:
        everything above it may simply still be in flight, and
        retransmitting it speculatively wastes the recovery window.
        """
        if not self._sacked:
            return None
        cursor = max(self.snd_una, from_seq)
        for start, end in self._sacked:
            if cursor < start:
                return cursor, min(start, cursor + self.config.mss)
            cursor = max(cursor, end)
        # Past the highest SACKed byte: nothing provably lost remains.
        return None

    def _process_data(self, segment: Segment) -> None:
        if segment.end_seq <= self.rcv_nxt:
            self._emit_pure_ack()  # stale retransmit: re-ack
            return
        if segment.seq > self.rcv_nxt:
            self.reassembly.add(segment.seq, segment.end_seq)
            self.delack.on_out_of_order()  # dupack, triggers fast rtx
            return
        new_nxt = self.reassembly.advance(max(segment.end_seq, self.rcv_nxt))
        advanced = new_nxt - self.rcv_nxt
        self.rcv_nxt = new_nxt
        self.qs_unread.track(advanced)
        self.qs_ackdelay.track(advanced)
        if self.instruments:
            for instrument in self.instruments:
                instrument.on_arrived(self.rcv_nxt)
        self.delack.on_data_received(advanced)
        if self._readers and not self._read_stalled:
            readers, self._readers = self._readers, []
            for event in readers:
                event.trigger()

    # ======================================================================
    # Zero-window persist timer.
    # ======================================================================

    def _rwnd_blocked(self) -> bool:
        """Whether pending data is blocked on the peer's receive window
        (as opposed to cwnd or batching heuristics)."""
        available = self.out_stream.write_seq - self.snd_nxt
        if available <= 0:
            return False
        rwnd_remaining = self.snd_una + self.peer_rwnd - self.snd_nxt
        needed = min(available, self.config.mss)
        return rwnd_remaining < needed

    def _maybe_arm_persist(self, needed: int) -> None:
        """Arm the persist timer when the *receive* window (not cwnd)
        is what blocks transmission of ``needed`` bytes."""
        rwnd_remaining = self.snd_una + self.peer_rwnd - self.snd_nxt
        if rwnd_remaining < needed and self._persist_timer is None:
            self._arm_persist_timer()

    def _arm_persist_timer(self) -> None:
        delay = self.rtt.rto_ns * self._persist_backoff
        self._persist_timer = self._sim.call_after(delay, self._persist_expired)

    def _cancel_persist_timer(self) -> None:
        if self._persist_timer is not None:
            self._persist_timer.cancel()
            self._persist_timer = None
        self._persist_backoff = 1

    def _persist_expired(self) -> None:
        self._persist_timer = None
        if not self._rwnd_blocked():
            self._persist_backoff = 1
            self._push()
            return
        # Probe: an ack-only segment that elicits the peer's current
        # window, recovering from a lost window update.
        self.host.trace.emit(self.name, "window_probe", self._persist_backoff)
        self.window_probes_sent += 1
        self._emit_pure_ack(window_probe=True)
        self._persist_backoff = min(self._persist_backoff * 2, 64)
        self._arm_persist_timer()

    # ======================================================================
    # Retransmission timer.
    # ======================================================================

    def _arm_rtx_timer(self) -> None:
        self._rtx_timer = self._sim.call_after(self.rtt.rto_ns, self._rtx_expired)

    def _cancel_rtx_timer(self) -> None:
        if self._rtx_timer is not None:
            self._rtx_timer.cancel()
            self._rtx_timer = None

    def _rtx_expired(self) -> None:
        self._rtx_timer = None
        if self.snd_nxt <= self.snd_una:
            return
        self.cc.on_timeout()
        self.rtt.backoff()
        chunk = min(self.config.mss, self.snd_nxt - self.snd_una)
        self._transmit(self.snd_una, chunk, retransmit=True)
        self._arm_rtx_timer()

    # ======================================================================
    # Helpers.
    # ======================================================================

    def _advertised_window(self) -> int:
        # The raw unread backlog, not `readable_bytes`: a stalled reader
        # must still shrink the advertised window, or the peer would
        # keep pouring bytes into a receiver that consumes nothing.
        return max(
            0, self.config.recv_buffer_bytes - (self.rcv_nxt - self.read_seq)
        )

    @property
    def unacked_bytes(self) -> int:
        """Bytes written by the application and not yet acknowledged
        (the sk_wmem_queued analogue)."""
        return self.out_stream.write_seq - self.snd_una

    def __repr__(self) -> str:
        return (
            f"<TcpSocket {self.name} conn={self.conn_id} "
            f"una={self.snd_una} nxt={self.snd_nxt} rcv={self.rcv_nxt}>"
        )
