"""Round-trip-time estimation and retransmission timeout (RTO).

Implements the classic Jacobson/Karels estimator with Karn's rule
(RFC 6298 structure): SRTT and RTTVAR exponentially smoothed, RTO =
SRTT + 4·RTTVAR clamped to a floor.  Samples from retransmitted data are
never taken (Karn), and the caller enforces that by sampling only
segments transmitted once.

The paper's §2 notes that RTT is a poor proxy for end-to-end latency —
it misses application read delays and is inflated by delayed acks.  We
keep the estimator anyway: TCP needs it for the RTO, and exposing it lets
experiments *show* the RTT-vs-end-to-end gap.
"""

from __future__ import annotations

from repro.errors import TcpError
from repro.units import msecs


class RttEstimator:
    """SRTT/RTTVAR/RTO state for one connection."""

    def __init__(self, min_rto_ns: int = msecs(200), initial_rto_ns: int = msecs(200)):
        if min_rto_ns <= 0:
            raise TcpError(f"min RTO must be positive, got {min_rto_ns}")
        self.min_rto_ns = min_rto_ns
        self.srtt_ns: float | None = None
        self.rttvar_ns: float = 0.0
        self.rto_ns = initial_rto_ns
        self.samples = 0

    def sample(self, rtt_ns: int) -> None:
        """Fold in one RTT measurement (never from a retransmit — Karn)."""
        if rtt_ns < 0:
            raise TcpError(f"negative RTT sample {rtt_ns}")
        self.samples += 1
        if self.srtt_ns is None:
            self.srtt_ns = float(rtt_ns)
            self.rttvar_ns = rtt_ns / 2.0
        else:
            delta = abs(self.srtt_ns - rtt_ns)
            self.rttvar_ns = 0.75 * self.rttvar_ns + 0.25 * delta
            self.srtt_ns = 0.875 * self.srtt_ns + 0.125 * rtt_ns
        self.rto_ns = max(
            self.min_rto_ns, round(self.srtt_ns + 4.0 * self.rttvar_ns)
        )

    def backoff(self) -> None:
        """Exponential RTO backoff after a retransmission timeout."""
        self.rto_ns = min(self.rto_ns * 2, msecs(120_000))
