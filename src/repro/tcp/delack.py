"""Delayed acknowledgments (RFC 1122 semantics).

The receiver may delay an ack hoping to piggyback it on reverse-direction
data, but must ack at least every second full-sized segment and must not
delay beyond a timeout.  Delayed acks are half of the infamous
Nagle-interaction (§2 of the paper, Cheshire's write-up): a Nagle-held
partial segment can end up waiting for an ack the receiver is in no hurry
to send.

This module only decides *when* an ack is due; the socket sends it.  The
"queue" of not-yet-acked bytes (``rcv_nxt − rcv_wup``) is one of the
three queues the paper's estimator monitors (L_ackdelay).
"""

from __future__ import annotations

from typing import Callable

from repro.units import msecs


class DelayedAckManager:
    """Decides when received data must be acknowledged.

    With ``adaptive=True`` the delay follows Linux's *ato* behavior: an
    EWMA of the observed inter-arrival gap, clamped to
    [``min_delay_ns``, ``delay_ns``], so interactive flows get prompt
    acks while the 40 ms ceiling still bounds bulk receivers.
    """

    __slots__ = (
        "_sim",
        "_mss",
        "_ack_now",
        "delay_ns",
        "adaptive",
        "min_delay_ns",
        "_timer",
        "_unacked_since_ack",
        "_last_arrival_ns",
        "_ato_ns",
        "timer_fires",
        "quick_acks",
    )

    def __init__(
        self,
        sim,
        mss: int,
        ack_now: Callable[[], None],
        delay_ns: int = msecs(40),
        adaptive: bool = False,
        min_delay_ns: int = msecs(4),
    ):
        self._sim = sim
        self._mss = mss
        self._ack_now = ack_now
        self.delay_ns = delay_ns
        self.adaptive = adaptive
        self.min_delay_ns = min_delay_ns
        self._timer = None
        self._unacked_since_ack = 0
        self._last_arrival_ns: int | None = None
        self._ato_ns: float = float(delay_ns)
        self.timer_fires = 0
        self.quick_acks = 0

    @property
    def timer_armed(self) -> bool:
        """Whether a delayed-ack timer is currently pending."""
        return self._timer is not None

    @property
    def current_delay_ns(self) -> int:
        """The delay the next armed timer would use."""
        if not self.adaptive:
            return self.delay_ns
        return max(self.min_delay_ns, min(self.delay_ns, round(self._ato_ns)))

    def _observe_gap(self) -> None:
        now = self._sim.now
        if self._last_arrival_ns is not None:
            gap = now - self._last_arrival_ns
            # Linux: ato tracks the inter-packet gap, reacting faster
            # downward (shorter gaps) than upward.
            if gap < self._ato_ns:
                self._ato_ns = self._ato_ns / 2 + gap
            else:
                self._ato_ns = 0.75 * self._ato_ns + 0.25 * min(
                    gap, float(self.delay_ns)
                )
        self._last_arrival_ns = now

    def on_data_received(self, nbytes: int) -> None:
        """Account newly received in-order bytes and maybe ack now.

        Acks immediately once two full segments' worth of data is
        pending (RFC 1122's must-ack-every-second-full-segment, as
        byte-counted by Linux); otherwise arms the delack timer.
        """
        if self.adaptive:
            # The gap EWMA only ever feeds current_delay_ns, which
            # ignores it when not adaptive — skip the clock read then.
            self._observe_gap()
        self._unacked_since_ack += nbytes
        if self._unacked_since_ack >= 2 * self._mss:
            self.quick_acks += 1
            self._fire()
        elif self._timer is None:
            self._timer = self._sim.call_after(
                self.current_delay_ns, self._timer_fired
            )

    def on_out_of_order(self) -> None:
        """Out-of-order arrival: ack immediately (dupack for fast
        retransmit)."""
        self._fire()

    def on_ack_piggybacked(self) -> None:
        """An outgoing data segment carried the ack; stand down."""
        self._unacked_since_ack = 0
        self._cancel_timer()

    def _timer_fired(self) -> None:
        self._timer = None
        self.timer_fires += 1
        self._fire()

    def _fire(self) -> None:
        self._cancel_timer()
        self._unacked_since_ack = 0
        self._ack_now()

    def _cancel_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
