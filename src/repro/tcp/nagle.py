"""Transmit batching heuristics: Nagle's algorithm and auto-corking.

These are the batching policies the paper studies (§2).  All answer the
same question — *may a sub-MSS segment be transmitted now?* — from
different signals:

- **Nagle** [RFC 896]: hold a partial segment while any previously sent
  data is unacknowledged.  Full-MSS segments always pass.
- **Minshall's variant** [Minshall/Mogul, cited by the paper §2]: hold
  a partial segment only while a previously sent *sub-MSS* packet is
  unacknowledged — large writes' tails are not penalized for the
  full-sized segments in flight ahead of them.
- **Auto-corking** (Linux): hold a partial segment while the NIC TX ring
  still has unfinished descriptors for this flow, on the theory that more
  data will arrive before the ring drains.

The decision function is stateless given its inputs, which makes it easy
for the dynamic toggler (:mod:`repro.core.toggler`) to flip the enable
bits at runtime — the paper's proposed use of end-to-end estimates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TcpError

NAGLE_CLASSIC = "classic"
NAGLE_MINSHALL = "minshall"


@dataclass(slots=True)
class BatchingHeuristics:
    """Per-socket transmit batching switches.

    ``nagle`` mirrors the inverse of ``TCP_NODELAY``; ``nagle_mode``
    selects the classic RFC 896 test or Minshall's small-packet-only
    variant.  ``autocork`` mirrors ``net.ipv4.tcp_autocorking``.
    ``min_batch_bytes`` is the §5 "better batching heuristics" extension
    knob: when positive, a partial segment is additionally held until at
    least this many bytes are queued (an AIMD controller adjusts it
    gradually).
    """

    nagle: bool = True
    nagle_mode: str = NAGLE_CLASSIC
    autocork: bool = True
    min_batch_bytes: int = 0

    def __post_init__(self):
        if self.nagle_mode not in (NAGLE_CLASSIC, NAGLE_MINSHALL):
            raise TcpError(f"unknown Nagle mode {self.nagle_mode!r}")

    def may_send_partial(
        self,
        queued_bytes: int,
        unacked_bytes: int,
        tx_ring_occupancy: int,
        small_packet_outstanding: bool = False,
    ) -> bool:
        """Decide whether a sub-MSS chunk may go out now.

        ``queued_bytes`` — unsent bytes available (all sub-MSS here);
        ``unacked_bytes`` — sent-but-unacked bytes;
        ``tx_ring_occupancy`` — this host's NIC TX ring depth;
        ``small_packet_outstanding`` — whether an unacked sub-MSS
        packet is in flight (Minshall's test).
        """
        if self.min_batch_bytes > 0 and queued_bytes < self.min_batch_bytes:
            return False
        if self.nagle:
            if self.nagle_mode == NAGLE_CLASSIC:
                if unacked_bytes > 0:
                    return False
            elif small_packet_outstanding:
                return False
        if self.autocork and tx_ring_occupancy > 0:
            return False
        return True
