"""Connection setup: create an established socket pair across two hosts.

The experiments always start from an established connection; the TCP
handshake adds nothing to the batching analysis, so sockets are born
connected with synchronized initial sequence numbers (zero on both
streams).
"""

from __future__ import annotations

from repro.tcp.socket import TcpConfig, TcpSocket, next_conn_id


def connect_pair(
    sim,
    host_a,
    host_b,
    config_a: TcpConfig | None = None,
    config_b: TcpConfig | None = None,
    name: str = "conn",
    conn_id: int | None = None,
) -> tuple[TcpSocket, TcpSocket]:
    """Create an established connection between ``host_a`` and ``host_b``.

    Returns ``(socket_a, socket_b)``.  Each side can be configured
    independently (e.g. Nagle on the client only); passing a single
    config uses it for side A and a default for side B.  ``conn_id``
    defaults to a process-global counter; callers that rebuild the same
    topology in multiple processes (cross-shard windowed runs) must pass
    an explicit id so segments pickled in one process demux correctly
    after a replay in another.
    """
    config_a = config_a or TcpConfig()
    config_b = config_b or config_a
    if conn_id is None:
        conn_id = next_conn_id()
    sock_a = TcpSocket(sim, host_a, config_a, conn_id, name=f"{name}.a")
    sock_b = TcpSocket(sim, host_b, config_b, conn_id, name=f"{name}.b")
    sock_a.peer = sock_b
    sock_b.peer = sock_a
    sock_a.in_stream = sock_b.out_stream
    sock_b.in_stream = sock_a.out_stream
    host_a.register_socket(conn_id, sock_a)
    host_b.register_socket(conn_id, sock_b)
    return sock_a, sock_b
