"""A from-scratch simulated TCP stack.

Implements the protocol mechanisms the paper's batching analysis depends
on, at byte-stream granularity over the :mod:`repro.net` substrate:

- reliable, in-order byte streams with cumulative acks, retransmission
  timers and fast retransmit (:mod:`~repro.tcp.socket`);
- MSS segmentation with TSO super-segments (:mod:`~repro.tcp.segment`);
- **Nagle's algorithm** and auto-corking — the batching heuristics under
  study (:mod:`~repro.tcp.nagle`);
- **delayed acknowledgments** with quickack-on-full-segments and
  piggybacking (:mod:`~repro.tcp.delack`);
- SRTT/RTO estimation (:mod:`~repro.tcp.rtt`) and Reno-style congestion
  control (:mod:`~repro.tcp.cc`);
- TCP options carrying the end-to-end metadata exchange
  (:mod:`~repro.tcp.options`);
- the three instrumented queues — unacked, unread, ackdelay — updated via
  ``TRACK`` exactly where the paper's kernel patch hooks them
  (:mod:`~repro.tcp.instrumentation`).
"""

from repro.tcp.connect import connect_pair
from repro.tcp.segment import Segment
from repro.tcp.socket import TcpConfig, TcpSocket

__all__ = ["Segment", "TcpConfig", "TcpSocket", "connect_pair"]
