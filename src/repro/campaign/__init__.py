"""Declarative campaign specs and the ablation/importance engine.

A campaign spec (``repro-campaign-v1``, YAML or JSON) names a scenario,
a set of toggleable components, tweak variants, sweep axes, metrics,
and repetitions; :func:`expand` turns it into a deterministic run
matrix, :func:`run_spec` executes the matrix through the supervised
runner with content-addressed dedupe and checkpointing, and the result
is a ``repro-importance-v1`` component leaderboard.  See
``docs/CAMPAIGNS.md`` for the spec reference.
"""

from repro.campaign.engine import CampaignRun, build_cells, run_spec
from repro.campaign.importance import compute_importance
from repro.campaign.matrix import MatrixCell, RunMatrix, expand
from repro.campaign.report import ImportanceReport
from repro.campaign.schema import (
    IMPORTANCE_SCHEMA,
    SPEC_SCHEMA,
    validate_importance_document,
    validate_spec_document,
)
from repro.campaign.spec import (
    SCENARIOS,
    CampaignSpec,
    ComponentSpec,
    Scenario,
    SweepSpec,
    TweakSpec,
    load_document,
    load_spec,
    parse_spec,
)

__all__ = [
    "CampaignRun",
    "CampaignSpec",
    "ComponentSpec",
    "IMPORTANCE_SCHEMA",
    "ImportanceReport",
    "MatrixCell",
    "RunMatrix",
    "SCENARIOS",
    "SPEC_SCHEMA",
    "Scenario",
    "SweepSpec",
    "TweakSpec",
    "build_cells",
    "compute_importance",
    "expand",
    "load_document",
    "load_spec",
    "parse_spec",
    "run_spec",
    "validate_importance_document",
    "validate_spec_document",
]
