"""The ``repro-importance-v1`` report object and its renderings.

:class:`ImportanceReport` is what a campaign run produces: the spec's
identity, the per-family metric means, and every component's deltas,
importance values, and rank.  Two renderings:

- :meth:`ImportanceReport.to_canonical` — canonical JSON (sorted keys,
  no whitespace).  Deliberately excludes execution accounting (cache
  hits, dedupe counts, worker counts): those vary across reruns of the
  same spec, and the determinism contract says the same spec produces
  the same report *bytes*.  Accounting lives in the CLI summary line
  instead (:meth:`repro.campaign.engine.CampaignRun.describe`).
- :meth:`ImportanceReport.render` — the component leaderboard as a
  fixed-width table, most important first.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.campaign.schema import IMPORTANCE_SCHEMA


@dataclass(frozen=True)
class ImportanceReport:
    """One campaign's scored outcome (layout: ``repro-importance-v1``)."""

    campaign: str
    scenario: str
    spec_digest: str
    seed: int
    repetitions: int
    cells: int
    metrics: tuple[str, ...]
    baseline: dict
    all_on: dict
    components: tuple[dict, ...]
    ranking: tuple[str, ...]

    def component(self, name: str) -> dict:
        """Fetch one component's entry."""
        for entry in self.components:
            if entry["name"] == name:
                return entry
        raise KeyError(name)

    def to_document(self) -> dict:
        """The ``repro-importance-v1`` document."""
        return {
            "schema": IMPORTANCE_SCHEMA,
            "campaign": self.campaign,
            "scenario": self.scenario,
            "spec_digest": self.spec_digest,
            "seed": self.seed,
            "repetitions": self.repetitions,
            "cells": self.cells,
            "metrics": list(self.metrics),
            "baseline": dict(self.baseline),
            "all_on": dict(self.all_on),
            "components": [
                {
                    "name": entry["name"],
                    "score": entry["score"],
                    "metrics": {
                        metric: dict(cell)
                        for metric, cell in entry["metrics"].items()
                    },
                }
                for entry in self.components
            ],
            "ranking": list(self.ranking),
        }

    def to_canonical(self) -> str:
        """Canonical JSON (sorted keys, no whitespace) + newline."""
        return json.dumps(
            self.to_document(), sort_keys=True, separators=(",", ":")
        ) + "\n"

    def render(self) -> str:
        """The importance leaderboard as a table plus family means."""
        headers = ["rank", "component", "score"] + [
            f"{metric}" for metric in self.metrics
        ]
        rows = []
        for rank, name in enumerate(self.ranking, start=1):
            entry = self.component(name)
            rows.append(
                [rank, name, _cell(entry["score"])]
                + [
                    _cell(entry["metrics"][metric]["importance"])
                    for metric in self.metrics
                ]
            )
        table = format_table(
            headers, rows,
            title=(
                f"Campaign importance: {self.campaign} "
                f"({self.scenario}, {self.cells} cells, "
                f"{self.repetitions} rep(s))"
            ),
        )
        lines = [table]
        for family, means in (("baseline", self.baseline),
                              ("all_on", self.all_on)):
            shown = {
                metric: (round(mean, 3) if mean is not None else None)
                for metric, mean in means.items()
            }
            lines.append(f"{family} means: {json.dumps(shown)}")
        return "\n".join(lines)


def _cell(value) -> str:
    """A score/importance cell: fixed precision, '-' for unavailable."""
    return "-" if value is None else f"{value:.4f}"
