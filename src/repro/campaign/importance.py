"""Component-importance scoring from matrix metric deltas.

The ablation literature's standard question — *which component matters?*
— answered with the aumai-ablation shape: compare each component's
removal from the full system and its solitary addition to the empty
system, normalize by the baseline's magnitude, and rank.

For one component ``c`` and one metric ``m`` (all means taken over every
cell of the named variant family, pooled across tweaks, sweep points,
and repetitions; cells whose metric is undefined are excluded):

- ``ablate_delta = mean(all_but_one:c) − mean(all_on)`` — what removing
  ``c`` from the full system does to ``m``;
- ``solo_delta = mean(only_one:c) − mean(baseline)`` — what ``c`` alone
  adds to the empty system;
- ``importance = mean(|delta| / norm)`` over whichever of the two
  deltas are available, with ``norm = max(|mean(baseline)|, 1e-9)``
  (falling back to the ``all_on`` mean when the baseline family is
  absent from the matrix) — a scale-free "fraction of baseline moved".

A component's **score** is the mean of its per-metric importance values;
the **ranking** sorts by score descending, ties broken by name, and
components with no computable score last.  Absences propagate as
``None``/null rather than zero — a spec whose matrix omits a family
gets honest nulls, not a fake "unimportant".
"""

from __future__ import annotations

from repro.campaign.matrix import RunMatrix
from repro.campaign.spec import CampaignSpec

#: Normalization floor: keeps importance finite when the baseline mean
#: is exactly zero (e.g. a counter metric that never fired).
TINY = 1e-9


def _mean(values: list) -> float | None:
    defined = [value for value in values if value is not None]
    if not defined:
        return None
    return sum(defined) / len(defined)


def _family_means(
    matrix: RunMatrix, values: list[dict], metrics: tuple[str, ...]
) -> dict[str, dict[str, float | None]]:
    """variant label -> {metric -> mean over that family's cells}."""
    by_family: dict[str, list[dict]] = {}
    for cell, cell_values in zip(matrix.cells, values):
        by_family.setdefault(cell.variant, []).append(cell_values)
    return {
        family: {
            metric: _mean([entry[metric] for entry in entries])
            for metric in metrics
        }
        for family, entries in by_family.items()
    }


def _delta(a: float | None, b: float | None) -> float | None:
    if a is None or b is None:
        return None
    return a - b


def compute_importance(
    spec: CampaignSpec, matrix: RunMatrix, values: list[dict]
) -> dict:
    """Scores/deltas for every component (see the module doc for math).

    ``values`` aligns index-for-index with ``matrix.cells``; each entry
    maps metric name to the harvested value (or ``None``).  Returns
    ``{"baseline": .., "all_on": .., "components": [..], "ranking": [..]}``
    in the ``repro-importance-v1`` component layout.
    """
    means = _family_means(matrix, values, spec.metrics)
    baseline = means.get("baseline", {m: None for m in spec.metrics})
    all_on = means.get("all_on", {m: None for m in spec.metrics})

    components = []
    for component in spec.components:
        ablated = means.get(f"all_but_one:{component.name}", {})
        solo = means.get(f"only_one:{component.name}", {})
        per_metric = {}
        importances = []
        for metric in spec.metrics:
            ablate_delta = _delta(ablated.get(metric), all_on.get(metric))
            solo_delta = _delta(solo.get(metric), baseline.get(metric))
            norm_source = (
                baseline.get(metric) if baseline.get(metric) is not None
                else all_on.get(metric)
            )
            importance = None
            deltas = [d for d in (ablate_delta, solo_delta) if d is not None]
            if deltas and norm_source is not None:
                norm = max(abs(norm_source), TINY)
                importance = sum(abs(d) / norm for d in deltas) / len(deltas)
            per_metric[metric] = {
                "ablate_delta": ablate_delta,
                "solo_delta": solo_delta,
                "importance": importance,
            }
            if importance is not None:
                importances.append(importance)
        components.append({
            "name": component.name,
            "score": _mean(importances) if importances else None,
            "metrics": per_metric,
        })

    ranking = [
        entry["name"]
        for entry in sorted(
            components,
            key=lambda entry: (
                entry["score"] is None,
                -(entry["score"] or 0.0),
                entry["name"],
            ),
        )
    ]
    return {
        "baseline": baseline,
        "all_on": all_on,
        "components": components,
        "ranking": ranking,
    }
