"""The campaign engine: expand, execute, dedupe, score.

:func:`run_spec` is the whole pipeline: expand the spec's matrix
(:mod:`repro.campaign.matrix`), build each cell's runner arguments
through its scenario (:mod:`repro.campaign.spec`), execute the lot
through the supervised :class:`~repro.parallel.ParallelRunner` with
explicit content-addressed keys — so cells whose built configs coincide
run once (``supervise.deduped``) and a ``--cache-dir``/``--resume``
store replays recorded cells byte-identically — then harvest the spec's
metrics from each result and reduce them to a
:class:`~repro.campaign.report.ImportanceReport`.

Determinism contract: the same spec produces the same matrix, the same
cell ordering, the same job keys, and — because every cell is a
deterministic simulation keyed by its config — the same report bytes,
regardless of worker count, caching, or how a previous run was
interrupted.  Execution accounting (executed/deduped/cached) therefore
lives on the returned :class:`CampaignRun` and its metrics registry,
never inside the report.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.campaign.importance import compute_importance
from repro.campaign.matrix import RunMatrix, expand
from repro.campaign.report import ImportanceReport
from repro.campaign.spec import SCENARIOS, CampaignSpec
from repro.errors import CampaignSpecError


@dataclass(frozen=True)
class CampaignRun:
    """One executed campaign: the report plus execution accounting.

    ``results`` aligns index-for-index with ``matrix.cells`` (the
    scenario's raw result objects, for consumers that need more than
    the harvested metrics — the ported ablation driver does).
    """

    spec: CampaignSpec
    matrix: RunMatrix
    report: ImportanceReport
    results: tuple
    values: tuple[dict, ...]
    executed: int
    deduped: int
    cached: int

    @property
    def cells(self) -> int:
        """Expanded matrix size."""
        return len(self.matrix.cells)

    def describe(self) -> str:
        """One accounting line for the CLI (not part of the report)."""
        return (
            f"campaign {self.spec.name}: {self.cells} cell(s), "
            f"{self.executed} executed, {self.deduped} deduped, "
            f"{self.cached} from checkpoint"
        )


def build_cells(spec: CampaignSpec, matrix: RunMatrix) -> list[tuple]:
    """Each cell's runner arguments, built through the scenario.

    Raises :class:`~repro.errors.CampaignSpecError` naming the cell when
    an override does not fit the scenario — expansion-time validation,
    before anything runs.
    """
    scenario = SCENARIOS[spec.scenario]
    cells = []
    for cell in matrix.cells:
        try:
            cells.append(scenario.build(dict(cell.overrides)))
        except CampaignSpecError as exc:
            raise CampaignSpecError(
                f"cell {cell.index} ({cell.label}): {exc}"
            ) from exc
    return cells


def _cell_prober(scenario, items, watchdog):
    """The remediation probe hook for one expanded campaign.

    Returns ``prober(index, edit)`` as the
    :class:`~repro.remedy.RemedyEngine` expects: a targeted
    re-execution of one cell, or ``None`` when the edit does not apply.
    Probes call the scenario runner directly — no campaign tracer, no
    checkpoint store, no diagnosis tee — so they are invisible to the
    campaign's own output.
    """
    import dataclasses as _dc

    from repro.obs.sinks import ListSink
    from repro.obs.tracer import Tracer
    from repro.remedy.playbooks import WATCHDOG_SLACK, ProbeRun

    def prober(index: int, edit: str):
        args = items[index]
        if edit == "strip-faults":
            config = args[0]
            if not scenario.bench or getattr(config, "fault_plan", None) is None:
                return None
            stripped = _dc.replace(config, fault_plan=None)
            return ProbeRun(result=scenario.runner(stripped, *args[1:]))
        if edit == "relax-watchdog":
            if watchdog is None or not scenario.bench:
                return None
            relaxed = watchdog.scaled(WATCHDOG_SLACK)
            return ProbeRun(result=scenario.runner(args[0], relaxed))
        if edit == "traced":
            if not scenario.bench:
                # Non-bench runners take no tracer; an isolated plain
                # re-run still answers transient-vs-persistent.
                return ProbeRun(result=scenario.runner(*args))
            sink = ListSink()
            probe_tracer = Tracer(sink)
            try:
                result = scenario.runner(*args, tracer=probe_tracer)
            finally:
                probe_tracer.close()
            return ProbeRun(result=result, records=len(sink))
        return None

    return prober


def run_spec(
    spec: CampaignSpec,
    workers: int = 1,
    policy=None,
    checkpoint=None,
    tracer=None,
    diagnosis=None,
    watchdog=None,
    metrics=None,
    remedy=None,
) -> CampaignRun:
    """Execute a campaign spec end to end (see the module doc).

    ``workers``/``policy``/``checkpoint`` are the standard supervised
    campaign knobs (see :class:`~repro.parallel.ParallelRunner`);
    ``checkpoint`` may be a directory, a
    :class:`~repro.supervise.CheckpointStore`, or a
    :class:`~repro.cache.ResultCache`.  ``tracer`` records the campaign
    as one ``repro-trace-v1`` stream (forcing serial execution) with a
    ``campaign.plan`` record up front and a ``campaign.importance``
    record after scoring; benchmark-shaped scenarios additionally
    thread the tracer into each fresh run.  ``diagnosis`` (requires
    ``tracer``) scores each cell's trace segment.  ``watchdog`` bounds
    each cell (benchmark-shaped scenarios only).  ``metrics`` (a
    :class:`~repro.obs.metrics.MetricsRegistry`) receives the
    ``campaign.*`` counters.

    ``remedy`` (a :class:`repro.remedy.RemedyEngine`) closes the loop:
    the engine binds it a *prober* that can re-execute any cell with a
    targeted edit — fault plan stripped, watchdog budget relaxed, or
    tracing forced on — so remediation playbooks can classify flagged
    and quarantined cells.  Probes run the cell's scenario runner
    directly, outside the checkpoint store and the campaign trace, so
    remediation never changes a single report byte.

    Raises :class:`~repro.errors.CampaignError` with salvaged outcomes
    attached if any cell was quarantined after retries (the remedy
    engine, if given, has still seen — and probed — every quarantine).
    """
    from repro.obs.metrics import MetricsRegistry
    from repro.parallel import ParallelRunner, _require_all_ok
    from repro.supervise.checkpoint import job_key

    scenario = SCENARIOS[spec.scenario]
    if watchdog is not None:
        if not scenario.bench:
            raise CampaignSpecError(
                f"scenario {spec.scenario!r} does not support a watchdog "
                "(only benchmark-shaped scenarios do)"
            )
        watchdog.validate()

    matrix = expand(spec)
    items = build_cells(spec, matrix)
    if watchdog is not None:
        items = [args + (watchdog,) for args in items]
    keys = [job_key((scenario.runner, args)) for args in items]
    labels = [f"{spec.name}:{cell.label}" for cell in matrix.cells]

    registry = metrics if metrics is not None else MetricsRegistry()
    registry.counter("campaign.cells").inc(len(items))
    registry.counter("campaign.unique_cells").inc(len(set(keys)))

    if tracer is not None and tracer.enabled:
        tracer.campaign_plan(
            campaign=spec.name,
            scenario=spec.scenario,
            spec_digest=matrix.spec_digest,
            cells=len(items),
            components=[c.name for c in spec.components],
            tweaks=[t.name for t in spec.tweaks],
            metrics=list(spec.metrics),
        )

    fn = scenario.runner
    if tracer is not None and scenario.bench:
        runner_fn = scenario.runner

        def fn(*args):
            return runner_fn(*args, tracer=tracer)

    if remedy is not None:
        remedy.bind_prober(_cell_prober(scenario, items, watchdog))

    runner = ParallelRunner(workers, policy=policy)
    outcomes = runner.map_outcomes(
        fn, items,
        checkpoint=checkpoint, labels=labels, keys=keys,
        tracer=tracer, diagnosis=diagnosis, remedy=remedy,
    )
    results = _require_all_ok(outcomes)

    supervise = runner.last_metrics
    deduped = supervise.counter("supervise.deduped").value
    cached = supervise.counter("supervise.checkpoint_hits").value
    executed = len(items) - deduped - cached
    registry.counter("campaign.deduped").inc(deduped)
    registry.counter("campaign.cached").inc(cached)
    registry.counter("campaign.executed").inc(executed)

    extractors = scenario.metrics
    values = tuple(
        {metric: extractors[metric](result) for metric in spec.metrics}
        for result in results
    )
    scored = compute_importance(spec, matrix, list(values))
    report = ImportanceReport(
        campaign=spec.name,
        scenario=spec.scenario,
        spec_digest=matrix.spec_digest,
        seed=spec.seed,
        repetitions=spec.repetitions,
        cells=len(items),
        metrics=spec.metrics,
        baseline=scored["baseline"],
        all_on=scored["all_on"],
        components=tuple(scored["components"]),
        ranking=tuple(scored["ranking"]),
    )

    if tracer is not None and tracer.enabled:
        tracer.campaign_importance(
            campaign=spec.name,
            ranking=list(report.ranking),
            scores={
                entry["name"]: entry["score"] for entry in report.components
            },
        )

    return CampaignRun(
        spec=spec,
        matrix=matrix,
        report=report,
        results=tuple(results),
        values=values,
        executed=executed,
        deduped=deduped,
        cached=cached,
    )
