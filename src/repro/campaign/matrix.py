"""Deterministic run-matrix expansion for campaign specs.

:func:`expand` turns a :class:`~repro.campaign.spec.CampaignSpec` into
the ordered list of cells the engine executes.  The ordering is part of
the ``repro-campaign-v1`` contract — the same spec always produces the
same matrix, byte for byte — and nests, outermost first:

1. **tweaks**, in spec order (one implicit unnamed tweak when empty);
2. **variant families**, in the spec's ``matrix`` order; within
   ``all_but_one``/``only_one``, components in spec order;
3. **sweep points**: the cross product of the ``sweeps`` axes, earlier
   axes outermost, values in spec order;
4. **repetitions**: repetition ``r`` runs with seed ``spec.seed + r``.

Each cell's final override dict merges, lowest priority first: the
repetition seed, ``base``, the tweak's overrides, each enabled/disabled
component's ``on``/``off`` dict (components in spec order), then the
sweep assignments.  Later writers win, so a sweep axis can override a
component and a component can override the base — the precedence a
reader would guess from the spec's visual nesting.

Distinct cells can merge to identical override dicts (with one
component, ``baseline`` == ``all_but_one`` and ``all_on`` ==
``only_one``); the engine content-addresses the built runner arguments,
so such cells execute once and the supervisor mirrors the result into
every position (``supervise.deduped``).
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass

from repro.campaign.schema import MATRIX_FAMILIES
from repro.campaign.spec import CampaignSpec, TweakSpec
from repro.errors import CampaignSpecError


@dataclass(frozen=True)
class MatrixCell:
    """One expanded run: where it came from and what it overrides."""

    index: int
    tweak: str                               # tweak name, "" when implicit
    variant: str                             # e.g. "all_but_one:nagle"
    components: tuple[tuple[str, bool], ...]  # (name, enabled), spec order
    sweep: tuple[tuple[str, object], ...]     # (field, value), spec order
    repetition: int
    seed: int
    overrides: dict                           # the final merged overrides

    @property
    def label(self) -> str:
        """A human-readable cell name, unique within the matrix."""
        parts = []
        if self.tweak:
            parts.append(self.tweak)
        parts.append(self.variant)
        parts += [f"{field}={value}" for field, value in self.sweep]
        parts.append(f"rep{self.repetition}")
        return "/".join(parts)


@dataclass(frozen=True)
class RunMatrix:
    """The full expansion of one spec."""

    campaign: str
    scenario: str
    spec_digest: str
    cells: tuple[MatrixCell, ...]

    def to_document(self) -> dict:
        """A JSON-able view (``repro campaign expand --json``)."""
        return {
            "campaign": self.campaign,
            "scenario": self.scenario,
            "spec_digest": self.spec_digest,
            "cells": [
                {
                    "index": cell.index,
                    "label": cell.label,
                    "tweak": cell.tweak,
                    "variant": cell.variant,
                    "components": {
                        name: enabled for name, enabled in cell.components
                    },
                    "sweep": {field: value for field, value in cell.sweep},
                    "repetition": cell.repetition,
                    "seed": cell.seed,
                    "overrides": cell.overrides,
                }
                for cell in self.cells
            ],
        }

    def to_json(self) -> str:
        """Canonical JSON (sorted keys, no whitespace) for byte-diffs."""
        return json.dumps(
            self.to_document(), sort_keys=True, separators=(",", ":")
        )


def _variants(spec: CampaignSpec) -> list[tuple[str, dict]]:
    """(variant label, {component: enabled}) in canonical order."""
    names = [component.name for component in spec.components]
    variants: list[tuple[str, dict]] = []
    for family in spec.matrix:
        if family == "baseline":
            variants.append(("baseline", {name: False for name in names}))
        elif family == "all_on":
            variants.append(("all_on", {name: True for name in names}))
        elif family == "all_but_one":
            for ablated in names:
                variants.append((
                    f"all_but_one:{ablated}",
                    {name: name != ablated for name in names},
                ))
        elif family == "only_one":
            for solo in names:
                variants.append((
                    f"only_one:{solo}",
                    {name: name == solo for name in names},
                ))
        else:  # parse_spec already validated; belt and suspenders
            raise CampaignSpecError(
                f"unknown matrix family {family!r}; choose from "
                f"{list(MATRIX_FAMILIES)}"
            )
    return variants


def _sweep_points(spec: CampaignSpec) -> list[tuple[tuple[str, object], ...]]:
    """The cross product of the sweep axes (one empty point when none)."""
    axes = [
        [(sweep.field, value) for value in sweep.values]
        for sweep in spec.sweeps
    ]
    return [tuple(point) for point in itertools.product(*axes)]


def expand(spec: CampaignSpec) -> RunMatrix:
    """The spec's ordered run matrix (see the module doc for the order).

    Raises :class:`~repro.errors.CampaignSpecError` when the expansion
    is empty — a matrix of ``all_but_one``/``only_one`` families with no
    components declares intent the spec cannot satisfy.
    """
    tweaks = spec.tweaks or (TweakSpec(name=""),)
    variants = _variants(spec)
    points = _sweep_points(spec)
    cells: list[MatrixCell] = []
    for tweak in tweaks:
        for variant, states in variants:
            for point in points:
                for repetition in range(spec.repetitions):
                    seed = spec.seed + repetition
                    overrides: dict = {"seed": seed}
                    overrides.update(spec.base)
                    overrides.update(tweak.overrides)
                    for component in spec.components:
                        overrides.update(
                            component.on if states[component.name]
                            else component.off
                        )
                    for field, value in point:
                        overrides[field] = value
                    seed = overrides.get("seed", seed)
                    cells.append(MatrixCell(
                        index=len(cells),
                        tweak=tweak.name,
                        variant=variant,
                        components=tuple(
                            (component.name, states[component.name])
                            for component in spec.components
                        ),
                        sweep=point,
                        repetition=repetition,
                        seed=seed,
                        overrides=overrides,
                    ))
    if not cells:
        raise CampaignSpecError(
            f"campaign {spec.name!r} expands to zero cells: matrix "
            f"{list(spec.matrix)} over {len(spec.components)} component(s) "
            "produces nothing to run (baseline/all_on need no components; "
            "all_but_one/only_one need at least one)"
        )
    return RunMatrix(
        campaign=spec.name,
        scenario=spec.scenario,
        spec_digest=spec.digest(),
        cells=tuple(cells),
    )
