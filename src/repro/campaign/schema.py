"""The ``repro-campaign-v1`` spec and ``repro-importance-v1`` report schemas.

A campaign spec is a declarative JSON/YAML document describing a full
ablation/sweep study: which scenario to run, which *components* can be
toggled, which named *tweaks* and *sweep* axes to cross against them,
which metrics to harvest, and how many repetitions to take.  The engine
(:mod:`repro.campaign.engine`) expands the spec into a deterministic
run matrix and reduces the results into a ``repro-importance-v1``
report ranking components by how much the metrics move when each one is
removed from (or added to) the system.

This module is the *single source of truth* for both document layouts:
:func:`validate_spec_document` and :func:`validate_importance_document`
check documents against the tables below, and ``tools/check_docs.py``
regenerates the field tables embedded in ``docs/CAMPAIGNS.md`` from the
same structures, so the documentation cannot drift from the code.

Field specs are ``name -> (types, default, description)`` where
``types`` is a python type or tuple of admissible types (``type(None)``
marks the field nullable) and ``default`` is :data:`REQUIRED` for
mandatory fields, else the documented default value rendered into the
spec reference.
"""

from __future__ import annotations

SPEC_SCHEMA = "repro-campaign-v1"
IMPORTANCE_SCHEMA = "repro-importance-v1"

#: Sentinel default: the field must be present in the document.
REQUIRED = "(required)"

#: The matrix variant families, in canonical expansion order.
MATRIX_FAMILIES = ("baseline", "all_on", "all_but_one", "only_one")

#: Spec sections: the top-level object plus each nested object kind.
SPEC_SECTIONS: dict[str, dict] = {
    "spec": {
        "doc": (
            "The top-level campaign object (one per file). Unknown "
            "keys are rejected, so typos fail loudly instead of "
            "silently changing the matrix."
        ),
        "fields": {
            "schema": (str, REQUIRED, f"always ``{SPEC_SCHEMA!r}``"),
            "name": (str, REQUIRED, "campaign name, echoed in the report"),
            "scenario": (
                str, "'run'",
                "what one cell executes: one of the registered scenario "
                "shapes (``run``, ``fig2``, ``fanin``, ``faults``, "
                "``timevarying``)",
            ),
            "base": (
                dict, "{}",
                "config overrides applied to every cell before any "
                "component/tweak/sweep override (see the override key "
                "space per scenario)",
            ),
            "components": (
                list, "[]",
                "``component`` objects: the on/off axes the importance "
                "engine ablates",
            ),
            "tweaks": (
                list, "[]",
                "``tweak`` objects: named explicit variants crossed "
                "against the component matrix (empty means one implicit "
                "no-op tweak)",
            ),
            "sweeps": (
                list, "[]",
                "``sweep`` objects: explicit axes crossed against every "
                "variant (cross product, in spec order)",
            ),
            "matrix": (
                list, "[all four]",
                "variant families to expand, a subset of "
                "``baseline | all_on | all_but_one | only_one``, "
                "expanded in the order given",
            ),
            "metrics": (
                list, REQUIRED,
                "metric names harvested from each cell's result; the "
                "admissible names depend on the scenario",
            ),
            "repetitions": (
                int, "1",
                "seeds per cell: repetition ``r`` runs with seed "
                "``seed + r``",
            ),
            "seed": (int, "1", "base seed for repetition 0"),
        },
    },
    "component": {
        "doc": (
            "One ablatable component: a named pair of override sets. "
            "``on`` is applied when the component is enabled, ``off`` "
            "when it is disabled (both may be empty; omitting a side "
            "means \"leave the base config alone\")."
        ),
        "fields": {
            "name": (str, REQUIRED, "unique component name"),
            "on": (dict, "{}", "overrides applied when enabled"),
            "off": (dict, "{}", "overrides applied when disabled"),
        },
    },
    "tweak": {
        "doc": (
            "One named explicit variant (the A7 ``off``/``nagle``/"
            "``minshall``/``autocork`` shape): its overrides are applied "
            "below ``base`` and above nothing else, and every variant "
            "family is expanded once per tweak."
        ),
        "fields": {
            "name": (str, REQUIRED, "unique tweak name"),
            "overrides": (dict, "{}", "config overrides for this tweak"),
        },
    },
    "sweep": {
        "doc": (
            "One explicit sweep axis. Multiple sweeps cross-product in "
            "spec order; each value is assigned to ``field`` through the "
            "scenario's override key space."
        ),
        "fields": {
            "field": (str, REQUIRED, "override key to sweep"),
            "values": (list, REQUIRED, "values, expanded in spec order"),
        },
    },
}

#: Importance-report sections (the ``repro-importance-v1`` document).
IMPORTANCE_DOCUMENT: dict[str, dict] = {
    "report": {
        "doc": (
            "The top-level report object. Canonical JSON (sorted keys, "
            "no whitespace), so two runs of the same spec byte-compare. "
            "Deliberately excludes execution accounting (cache hits, "
            "dedupe counts): those vary across reruns and live in the "
            "CLI summary instead."
        ),
        "fields": {
            "schema": (str, f"always ``{IMPORTANCE_SCHEMA!r}``"),
            "campaign": (str, "the spec's ``name``"),
            "scenario": (str, "the spec's ``scenario``"),
            "spec_digest": (
                str,
                "sha256 of the canonical parsed spec — two reports "
                "with equal digests ran the same campaign",
            ),
            "seed": (int, "the spec's base seed"),
            "repetitions": (int, "the spec's repetition count"),
            "cells": (int, "expanded matrix size"),
            "metrics": (list, "metric names, in spec order"),
            "baseline": (
                dict,
                "per-metric mean over the ``baseline`` cells (null "
                "when the family is absent or the metric undefined)",
            ),
            "all_on": (
                dict,
                "per-metric mean over the ``all_on`` cells (null as "
                "above)",
            ),
            "components": (
                list,
                "``component`` entries ranked most-important first",
            ),
            "ranking": (
                list,
                "component names, most important first (ties broken "
                "by name; scoreless components last)",
            ),
        },
    },
    "component": {
        "doc": "One component's importance breakdown.",
        "fields": {
            "name": (str, "component name"),
            "score": (
                (float, int, type(None)),
                "mean of the per-metric importance values (null when "
                "no metric produced one)",
            ),
            "metrics": (
                dict,
                "metric name -> ``metric-entry`` object",
            ),
        },
    },
    "metric-entry": {
        "doc": (
            "One (component, metric) cell of the importance math: the "
            "two deltas against the full and empty systems, and their "
            "normalized combination."
        ),
        "fields": {
            "ablate_delta": (
                (float, int, type(None)),
                "mean(all_but_one) - mean(all_on): what removing the "
                "component from the full system does (null when either "
                "family mean is unavailable)",
            ),
            "solo_delta": (
                (float, int, type(None)),
                "mean(only_one) - mean(baseline): what the component "
                "alone adds to the empty system (null as above)",
            ),
            "importance": (
                (float, int, type(None)),
                "mean of |delta| / norm over the available deltas, "
                "where norm = max(|baseline mean|, 1e-9) (falling back "
                "to the all_on mean when baseline is unavailable)",
            ),
        },
    },
}


def _type_name(expected) -> str:
    if isinstance(expected, tuple):
        return " | ".join(_type_name(e) for e in expected)
    if expected is type(None):
        return "null"
    return expected.__name__


def _check_fields(
    obj: dict, fields: dict, where: str, problems: list[str],
    defaults: bool = True,
) -> None:
    """Validate one object against a section's field table."""
    for name, spec in fields.items():
        if defaults:
            expected, default, _ = spec
            required = default is REQUIRED
        else:
            expected, _ = spec
            required = True
        if name not in obj:
            if required:
                problems.append(f"{where}: missing required field {name!r}")
            continue
        value = obj[name]
        types = expected if isinstance(expected, tuple) else (expected,)
        # bool is an int subclass; reject it where int is expected.
        if isinstance(value, bool) and bool not in types:
            problems.append(
                f"{where}: field {name!r} must be {_type_name(expected)}, "
                f"got bool"
            )
        elif not isinstance(value, types):
            problems.append(
                f"{where}: field {name!r} must be {_type_name(expected)}, "
                f"got {type(value).__name__}"
            )
    for name in obj:
        if name not in fields:
            problems.append(f"{where}: unknown field {name!r}")


def validate_spec_document(document) -> list[str]:
    """Structural problems with a spec document (empty when valid).

    Checks the document layout only — field presence, types, unknown
    keys, matrix-family names.  Scenario-dependent semantics (metric
    names, override keys) are checked by
    :func:`repro.campaign.spec.parse_spec`, which needs the scenario
    registry.
    """
    problems: list[str] = []
    if not isinstance(document, dict):
        return [f"spec must be an object, got {type(document).__name__}"]
    _check_fields(document, SPEC_SECTIONS["spec"]["fields"], "spec", problems)
    if document.get("schema") not in (None, SPEC_SCHEMA):
        problems.append(
            f"spec: schema must be {SPEC_SCHEMA!r}, "
            f"got {document.get('schema')!r}"
        )
    for section, key in (
        ("component", "components"), ("tweak", "tweaks"), ("sweep", "sweeps"),
    ):
        entries = document.get(key, [])
        if not isinstance(entries, list):
            continue  # already reported by the type check above
        for index, entry in enumerate(entries):
            where = f"{key}[{index}]"
            if not isinstance(entry, dict):
                problems.append(f"{where}: must be an object")
                continue
            _check_fields(
                entry, SPEC_SECTIONS[section]["fields"], where, problems
            )
    matrix = document.get("matrix")
    if isinstance(matrix, list):
        for family in matrix:
            if family not in MATRIX_FAMILIES:
                problems.append(
                    f"spec: unknown matrix family {family!r}; choose from "
                    f"{list(MATRIX_FAMILIES)}"
                )
    metrics = document.get("metrics")
    if isinstance(metrics, list) and not metrics:
        problems.append("spec: metrics must name at least one metric")
    sweeps = document.get("sweeps")
    if isinstance(sweeps, list):
        for index, sweep in enumerate(sweeps):
            if isinstance(sweep, dict) and sweep.get("values") == []:
                problems.append(
                    f"sweeps[{index}]: values must be non-empty"
                )
    names = [
        entry.get("name") for entry in document.get("components", [])
        if isinstance(entry, dict)
    ]
    if len(names) != len(set(names)):
        problems.append("spec: component names must be unique")
    tweak_names = [
        entry.get("name") for entry in document.get("tweaks", [])
        if isinstance(entry, dict)
    ]
    if len(tweak_names) != len(set(tweak_names)):
        problems.append("spec: tweak names must be unique")
    return problems


def validate_importance_document(document) -> list[str]:
    """Structural problems with an importance report (empty when valid)."""
    problems: list[str] = []
    if not isinstance(document, dict):
        return [f"report must be an object, got {type(document).__name__}"]
    _check_fields(
        document, IMPORTANCE_DOCUMENT["report"]["fields"], "report",
        problems, defaults=False,
    )
    if document.get("schema") != IMPORTANCE_SCHEMA:
        problems.append(
            f"report: schema must be {IMPORTANCE_SCHEMA!r}, "
            f"got {document.get('schema')!r}"
        )
    metrics = document.get("metrics", [])
    components = document.get("components", [])
    if isinstance(components, list):
        for index, entry in enumerate(components):
            where = f"components[{index}]"
            if not isinstance(entry, dict):
                problems.append(f"{where}: must be an object")
                continue
            _check_fields(
                entry, IMPORTANCE_DOCUMENT["component"]["fields"], where,
                problems, defaults=False,
            )
            per_metric = entry.get("metrics", {})
            if not isinstance(per_metric, dict):
                continue
            for metric, cell in per_metric.items():
                if isinstance(metrics, list) and metric not in metrics:
                    problems.append(
                        f"{where}: metric {metric!r} not in the report's "
                        f"metric list"
                    )
                if not isinstance(cell, dict):
                    problems.append(f"{where}.metrics[{metric!r}]: "
                                    f"must be an object")
                    continue
                _check_fields(
                    cell, IMPORTANCE_DOCUMENT["metric-entry"]["fields"],
                    f"{where}.metrics[{metric!r}]", problems, defaults=False,
                )
    ranking = document.get("ranking")
    if isinstance(ranking, list) and isinstance(components, list):
        names = [
            entry.get("name") for entry in components
            if isinstance(entry, dict)
        ]
        if sorted(str(n) for n in ranking) != sorted(str(n) for n in names):
            problems.append(
                "report: ranking must be a permutation of the component "
                "names"
            )
    return problems


def require_valid_importance(document) -> None:
    """Raise :class:`~repro.errors.CampaignSpecError` on an invalid report."""
    from repro.errors import CampaignSpecError

    problems = validate_importance_document(document)
    if problems:
        raise CampaignSpecError(
            f"invalid {IMPORTANCE_SCHEMA} document: " + "; ".join(problems)
        )
