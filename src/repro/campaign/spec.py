"""The typed campaign-spec model and the scenario registry.

:func:`load_spec` reads a ``repro-campaign-v1`` document (JSON always;
YAML when pyyaml is importable) and :func:`parse_spec` turns it into a
frozen :class:`CampaignSpec`, rejecting structural problems with one
:class:`~repro.errors.CampaignSpecError` that lists everything wrong.

A spec names a *scenario* — the shape of what one matrix cell executes.
Each entry in :data:`SCENARIOS` knows how to turn a cell's merged
override dict into runner arguments (:meth:`Scenario.build`), which
module-level function executes those arguments in a supervised worker,
and which metrics can be harvested from the result.  Override keys are
the scenario config's own field names plus a few documented
conveniences (``measure_ms``/``warmup_ms`` in milliseconds, workload
shorthands like ``set_ratio``, and ``fault_plan``/``fault_intensity``
by plan name); an unknown key raises with the full valid-key list, so a
spec typo cannot silently run the wrong experiment.

Everything a build returns is a content-addressable dataclass tree —
the engine derives each cell's checkpoint/dedupe key from it (see
:func:`repro.supervise.checkpoint.job_key`), which is what makes
overlapping matrix cells run once and ``--cache-dir`` reruns free.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pathlib
from dataclasses import dataclass, field, replace
from typing import Callable

from repro.campaign.schema import (
    MATRIX_FAMILIES,
    SPEC_SCHEMA,
    validate_spec_document,
)
from repro.errors import CampaignSpecError
from repro.units import msecs


# ---------------------------------------------------------------------------
# The spec model.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ComponentSpec:
    """One ablatable component: overrides for its on and off states."""

    name: str
    on: dict = field(default_factory=dict)
    off: dict = field(default_factory=dict)


@dataclass(frozen=True)
class TweakSpec:
    """One named explicit variant crossed against the component matrix."""

    name: str
    overrides: dict = field(default_factory=dict)


@dataclass(frozen=True)
class SweepSpec:
    """One explicit sweep axis (cross-multiplied in spec order)."""

    field: str
    values: tuple


@dataclass(frozen=True)
class CampaignSpec:
    """A parsed, validated campaign (see docs/CAMPAIGNS.md)."""

    name: str
    scenario: str = "run"
    base: dict = field(default_factory=dict)
    components: tuple[ComponentSpec, ...] = ()
    tweaks: tuple[TweakSpec, ...] = ()
    sweeps: tuple[SweepSpec, ...] = ()
    matrix: tuple[str, ...] = MATRIX_FAMILIES
    metrics: tuple[str, ...] = ()
    repetitions: int = 1
    seed: int = 1

    def to_document(self) -> dict:
        """The spec back in ``repro-campaign-v1`` document form."""
        return {
            "schema": SPEC_SCHEMA,
            "name": self.name,
            "scenario": self.scenario,
            "base": dict(self.base),
            "components": [
                {"name": c.name, "on": dict(c.on), "off": dict(c.off)}
                for c in self.components
            ],
            "tweaks": [
                {"name": t.name, "overrides": dict(t.overrides)}
                for t in self.tweaks
            ],
            "sweeps": [
                {"field": s.field, "values": list(s.values)}
                for s in self.sweeps
            ],
            "matrix": list(self.matrix),
            "metrics": list(self.metrics),
            "repetitions": self.repetitions,
            "seed": self.seed,
        }

    def canonical(self) -> str:
        """Canonical JSON (sorted keys, no whitespace) of the document."""
        return json.dumps(
            self.to_document(), sort_keys=True, separators=(",", ":")
        )

    def digest(self) -> str:
        """sha256 of :meth:`canonical` — the spec's identity."""
        return hashlib.sha256(self.canonical().encode()).hexdigest()


# ---------------------------------------------------------------------------
# Override application per config shape.
# ---------------------------------------------------------------------------

#: Millisecond conveniences accepted anywhere the target has *_ns fields.
_TIME_KEYS = {"measure_ms": "measure_ns", "warmup_ms": "warmup_ns",
              "min_rto_ms": "min_rto_ns"}
#: Workload shorthands lifted onto BenchConfig/FaninConfig overrides.
_WORKLOAD_KEYS = ("set_ratio", "key_bytes", "value_bytes", "keyspace")


def _reject(key, valid) -> CampaignSpecError:
    return CampaignSpecError(
        f"unknown override key {key!r}; valid keys: "
        + ", ".join(sorted(valid))
    )


def _field_names(config) -> set[str]:
    return {f.name for f in dataclasses.fields(config)}


def _workloaded_fields(config) -> set[str]:
    valid = _field_names(config)
    valid.update(_WORKLOAD_KEYS)
    valid.update(k for k in _TIME_KEYS if _TIME_KEYS[k] in valid)
    return valid


def _apply_config(config, overrides: dict, also_valid: tuple = ()):
    """Overrides onto any workload-bearing frozen config dataclass.

    ``also_valid`` names keys the caller handles itself — they only
    widen the valid-key list in the unknown-key error message.
    """
    valid = _workloaded_fields(config)
    valid.update(also_valid)
    updates: dict = {}
    workload_updates: dict = {}
    try:
        for key, value in overrides.items():
            if key in _TIME_KEYS and _TIME_KEYS[key] in valid:
                updates[_TIME_KEYS[key]] = msecs(value)
            elif key in _WORKLOAD_KEYS:
                workload_updates[key] = value
            elif key in _field_names(config):
                updates[key] = value
            else:
                raise _reject(key, valid)
        if workload_updates:
            updates["workload"] = replace(
                config.workload, **workload_updates
            )
        return replace(config, **updates)
    except (TypeError, ValueError) as exc:
        raise CampaignSpecError(f"invalid override value: {exc}") from exc


_UNSET = object()


def _apply_bench(config, overrides: dict):
    """Overrides onto a :class:`~repro.loadgen.lancet.BenchConfig`.

    ``fault_plan`` (a plan *name*, or null to clear) and
    ``fault_intensity`` resolve through :func:`repro.faults.named_plan`
    here, so specs stay plain JSON while the config carries the real
    :class:`~repro.faults.FaultPlan`.
    """
    merged = dict(overrides)
    plan_name = merged.pop("fault_plan", _UNSET)
    intensity = merged.pop("fault_intensity", None)
    fault_updates = {}
    if plan_name is not _UNSET or intensity is not None:
        if plan_name is _UNSET:
            if config.fault_plan is None:
                raise CampaignSpecError(
                    "fault_intensity needs fault_plan in the same cell"
                )
            plan = config.fault_plan
        elif plan_name is None:
            plan = None
        else:
            from repro.faults import named_plan

            plan = named_plan(plan_name)
        if plan is not None and intensity is not None:
            if float(intensity) != 1.0:
                plan = plan.scaled(float(intensity))
        fault_updates["fault_plan"] = (
            None if plan is None or plan.is_noop else plan
        )
    config = _apply_config(
        config, merged, also_valid=("fault_plan", "fault_intensity")
    )
    if fault_updates:
        config = replace(config, **fault_updates)
    return config


# ---------------------------------------------------------------------------
# Module-level cell runners (must pickle; see repro.parallel).
# ---------------------------------------------------------------------------


def _run_bench_cell(config, watchdog=None, tracer=None):
    """One ``run``/``fig2``/``faults`` cell: a plain benchmark run."""
    from repro.loadgen.lancet import run_benchmark

    return run_benchmark(config, tracer=tracer, watchdog=watchdog)


def _run_fanin_cell(config, with_toggler=False, shards=None):
    """One ``fanin`` cell: N clients through a switch into one server.

    With ``shards`` set the cell runs through the component-sharded
    path (byte-identical per connection; see docs/PERFORMANCE.md), which
    returns a :class:`~repro.experiments.fanin.ShardedFaninResult`.
    """
    if shards is not None:
        from repro.experiments.fanin import run_fanin_sharded

        return run_fanin_sharded(config, shards=shards)
    from repro.experiments.fanin import run_fanin

    return run_fanin(config, with_toggler=with_toggler)


def _run_timevarying_cell(plan, base):
    """One ``timevarying`` cell: all three policies over the load walk."""
    from repro.experiments.timevarying import run_timevarying

    return run_timevarying(plan=plan, base=base)


# ---------------------------------------------------------------------------
# Metric extractors.
# ---------------------------------------------------------------------------


def _estimate_ns(result):
    if result.estimate is None or not result.estimate.defined:
        return None
    return result.estimate.latency_ns


#: Metrics over a :class:`~repro.loadgen.lancet.RunResult`.
RUN_METRICS: dict[str, Callable] = {
    "latency_mean_ns": lambda r: r.latency.mean_ns,
    "latency_p50_ns": lambda r: r.latency.p50_ns,
    "latency_p99_ns": lambda r: r.latency.p99_ns,
    "send_latency_mean_ns": lambda r: r.send_latency.mean_ns,
    "achieved_rate": lambda r: r.achieved_rate,
    "estimate_ns": _estimate_ns,
    "hint_latency_ns": lambda r: r.hint_latency_ns,
    "client_cpu": lambda r: r.client_cpu,
    "server_cpu": lambda r: r.server_cpu,
    "server_mean_batch": lambda r: r.server_mean_batch,
    "client_wire_packets": lambda r: r.client_wire_packets,
    "server_deliveries": lambda r: r.server_deliveries,
}

#: Metrics over a :class:`~repro.experiments.fanin.FaninResult` or (when
#: the cell sets ``shards``) a
#: :class:`~repro.experiments.fanin.ShardedFaninResult`, which carries
#: ``server_net_util_mean`` instead of ``server_net_util`` and has no
#: toggler fields.
FANIN_METRICS: dict[str, Callable] = {
    "aggregate_mean_ns": lambda r: r.aggregate_mean_ns,
    "averaged_estimate_ns": lambda r: r.averaged_estimate_ns,
    "server_net_util": lambda r: getattr(
        r, "server_net_util", getattr(r, "server_net_util_mean", None)
    ),
    "toggler_toggles": lambda r: getattr(r, "toggler_toggles", None),
}


def _timevarying_metrics() -> dict[str, Callable]:
    metrics: dict[str, Callable] = {}
    for policy in ("static-off", "static-on", "dynamic"):
        for phase in ("low-1", "high", "low-2"):
            metrics[f"{policy}:{phase}_ns"] = (
                lambda r, p=policy, ph=phase:
                r.policy(p).phase_latency_ns[ph]
            )
    metrics["dynamic:toggles"] = lambda r: r.policy("dynamic").toggles
    return metrics


#: Metrics over a :class:`~repro.experiments.timevarying.TimeVaryingResult`.
TIMEVARYING_METRICS = _timevarying_metrics()


# ---------------------------------------------------------------------------
# The scenario registry.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Scenario:
    """One registered cell shape.

    ``build`` maps a cell's merged override dict to the runner's
    positional arguments; ``runner`` is the module-level function the
    supervised pool executes; ``metrics`` names what can be harvested
    from one result.  ``bench`` marks scenarios whose runner accepts the
    engine's ``watchdog``/``tracer`` passthrough (plain benchmark runs).
    """

    name: str
    doc: str
    runner: Callable
    build: Callable[[dict], tuple]
    metrics: dict[str, Callable]
    bench: bool = False


def _build_run(overrides: dict) -> tuple:
    from repro.experiments.fig4a import default_config

    return (_apply_bench(default_config(), overrides),)


def _build_fig2(overrides: dict) -> tuple:
    from repro.experiments.fig2 import fig2_config

    merged = dict(overrides)
    vm = merged.pop("vm", False)
    if not isinstance(vm, bool):
        raise CampaignSpecError(f"fig2 override vm must be a bool, got {vm!r}")
    nagle = merged.pop("nagle", False)
    seed = merged.pop("seed", 1)
    measure_ns = (
        msecs(merged.pop("measure_ms")) if "measure_ms" in merged
        else merged.pop("measure_ns", msecs(150))
    )
    config = fig2_config(vm, nagle, seed, measure_ns)
    return (_apply_bench(config, merged),)


def _build_faults(overrides: dict) -> tuple:
    from repro.experiments.fig4a import default_config

    merged = {
        "rate_per_sec": 15_000.0,
        "min_rto_ms": 5,
        "fault_plan": "mixed",
    }
    merged.update(overrides)
    return (_apply_bench(default_config(), merged),)


def _build_fanin(overrides: dict) -> tuple:
    from repro.experiments.fanin import FaninConfig

    merged = dict(overrides)
    with_toggler = merged.pop("with_toggler", False)
    if not isinstance(with_toggler, bool):
        raise CampaignSpecError(
            f"fanin override with_toggler must be a bool, got {with_toggler!r}"
        )
    shards = merged.pop("shards", None)
    if shards is not None:
        if shards == "auto":
            from repro.parallel import resolve_workers

            shards = resolve_workers(0)
        elif not isinstance(shards, int) or isinstance(shards, bool) \
                or shards < 1:
            raise CampaignSpecError(
                f"fanin override shards must be a positive integer or "
                f"'auto', got {shards!r}"
            )
        if with_toggler:
            raise CampaignSpecError(
                "fanin overrides shards and with_toggler are incompatible: "
                "the toggler couples connections through the shared server, "
                "which component sharding forbids"
            )
        config = _apply_config(
            FaninConfig(), merged, also_valid=("shards", "with_toggler")
        )
        return (config, with_toggler, shards)
    config = _apply_config(
        FaninConfig(), merged, also_valid=("shards", "with_toggler")
    )
    return (config, with_toggler)


def _build_timevarying(overrides: dict) -> tuple:
    from repro.experiments.fig4a import default_config
    from repro.experiments.timevarying import PhasePlan

    merged = dict(overrides)
    plan_updates = {}
    for key in ("low_rate", "high_rate"):
        if key in merged:
            plan_updates[key] = merged.pop(key)
    if "phase_ms" in merged:
        plan_updates["phase_ns"] = msecs(merged.pop("phase_ms"))
    if "phase_ns" in merged:
        plan_updates["phase_ns"] = merged.pop("phase_ns")
    plan = replace(PhasePlan(), **plan_updates)
    return (plan, _apply_bench(default_config(), merged))


SCENARIOS: dict[str, Scenario] = {
    "run": Scenario(
        name="run",
        doc="one client/server benchmark run (the fig4a substrate); "
            "overrides are BenchConfig fields plus measure_ms/warmup_ms/"
            "min_rto_ms, workload shorthands, and fault_plan/"
            "fault_intensity",
        runner=_run_bench_cell,
        build=_build_run,
        metrics=RUN_METRICS,
        bench=True,
    ),
    "fig2": Scenario(
        name="fig2",
        doc="the Figure 2 fixed-rate cell; overrides add vm (bool client "
            "placement) on top of the run scenario's key space",
        runner=_run_bench_cell,
        build=_build_fig2,
        metrics=RUN_METRICS,
        bench=True,
    ),
    "faults": Scenario(
        name="faults",
        doc="a benchmark run under an injected fault plan (defaults: "
            "plan 'mixed', 15 kRPS, 5 ms RTO floor); same key space as "
            "run",
        runner=_run_bench_cell,
        build=_build_faults,
        metrics=RUN_METRICS,
        bench=True,
    ),
    "fanin": Scenario(
        name="fanin",
        doc="A10 fan-in: N clients through a switch into one server; "
            "overrides are FaninConfig fields plus workload shorthands, "
            "with_toggler, and shards (positive int or 'auto' to run the "
            "byte-identical sharded path)",
        runner=_run_fanin_cell,
        build=_build_fanin,
        metrics=FANIN_METRICS,
    ),
    "timevarying": Scenario(
        name="timevarying",
        doc="A8 low->high->low load walk over all three policies; "
            "overrides add low_rate/high_rate/phase_ms on top of the "
            "run scenario's key space",
        runner=_run_timevarying_cell,
        build=_build_timevarying,
        metrics=TIMEVARYING_METRICS,
    ),
}


# ---------------------------------------------------------------------------
# Parsing and loading.
# ---------------------------------------------------------------------------


def parse_spec(document) -> CampaignSpec:
    """A :class:`CampaignSpec` from a ``repro-campaign-v1`` document.

    Raises :class:`~repro.errors.CampaignSpecError` listing *every*
    structural problem at once, so a spec author fixes one round trip,
    not one field per run.
    """
    problems = validate_spec_document(document)
    scenario = "run"
    if not problems:
        scenario = document.get("scenario", "run")
        if scenario not in SCENARIOS:
            problems.append(
                f"spec: unknown scenario {scenario!r}; choose from "
                f"{sorted(SCENARIOS)}"
            )
        else:
            known = SCENARIOS[scenario].metrics
            for metric in document.get("metrics", []):
                if metric not in known:
                    problems.append(
                        f"spec: metric {metric!r} is not defined for "
                        f"scenario {scenario!r}; choose from {sorted(known)}"
                    )
        repetitions = document.get("repetitions", 1)
        if isinstance(repetitions, int) and repetitions < 1:
            problems.append("spec: repetitions must be >= 1")
    if problems:
        raise CampaignSpecError(
            f"invalid {SPEC_SCHEMA} spec: " + "; ".join(problems)
        )
    return CampaignSpec(
        name=document["name"],
        scenario=scenario,
        base=dict(document.get("base", {})),
        components=tuple(
            ComponentSpec(
                name=c["name"],
                on=dict(c.get("on", {})),
                off=dict(c.get("off", {})),
            )
            for c in document.get("components", [])
        ),
        tweaks=tuple(
            TweakSpec(name=t["name"], overrides=dict(t.get("overrides", {})))
            for t in document.get("tweaks", [])
        ),
        sweeps=tuple(
            SweepSpec(field=s["field"], values=tuple(s["values"]))
            for s in document.get("sweeps", [])
        ),
        matrix=tuple(document.get("matrix", MATRIX_FAMILIES)),
        metrics=tuple(document["metrics"]),
        repetitions=document.get("repetitions", 1),
        seed=document.get("seed", 1),
    )


def load_document(path) -> dict:
    """A raw spec/report document from a JSON or YAML file."""
    path = pathlib.Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise CampaignSpecError(f"{path}: unreadable spec: {exc}") from exc
    if path.suffix in (".yaml", ".yml"):
        try:
            import yaml
        except ImportError:
            raise CampaignSpecError(
                f"{path}: YAML specs need pyyaml, which is not installed; "
                "use the JSON form of the spec instead (the formats are "
                "interchangeable — see docs/CAMPAIGNS.md)"
            ) from None
        try:
            document = yaml.safe_load(text)
        except yaml.YAMLError as exc:
            raise CampaignSpecError(f"{path}: invalid YAML: {exc}") from exc
    else:
        try:
            document = json.loads(text)
        except ValueError as exc:
            raise CampaignSpecError(f"{path}: invalid JSON: {exc}") from exc
    if not isinstance(document, dict):
        raise CampaignSpecError(
            f"{path}: spec must be a mapping, got "
            f"{type(document).__name__}"
        )
    return document


def load_spec(path) -> CampaignSpec:
    """Read and parse a spec file (JSON always, YAML when available)."""
    return parse_spec(load_document(path))
