"""A unidirectional link with bandwidth, propagation delay and optional loss.

The link is callback-based (no simulation processes) to keep the per-packet
event count low: :meth:`Link.send` queues the packet, a self-scheduling
callback chain serializes packets one at a time at link bandwidth, and each
packet is delivered to the receiver callback one propagation delay after
its serialization completes (store-and-forward).

Loss is opt-in (``loss_probability``) and exists mainly to exercise the TCP
retransmission machinery in tests; the paper's testbed is lossless.
Richer misbehavior (bursty loss, jitter/reordering, blackouts) is
injected through an optional per-packet fault hook — see
:mod:`repro.faults` — consulted only when attached, so a clean link
pays one ``is None`` check per packet.
"""

from __future__ import annotations

import hashlib
from collections import deque
from typing import Callable

from repro.errors import NetworkError
from repro.net.packet import Packet, recycle_packet
from repro.sim.rng import RngStream
from repro.units import serialization_delay_ns


def default_loss_rng(name: str, seed: int = 0) -> RngStream:
    """A deterministic loss stream derived from (seed, link name).

    Mirrors :class:`~repro.sim.rng.RngRegistry`'s derivation, so a lossy
    link built without an explicit stream is still reproducible: the
    same name and seed always yield the same drop sequence.  Topology
    helpers pass the simulation registry's seed; a bare :class:`Link`
    falls back to seed 0.
    """
    digest = hashlib.sha256(f"{seed}/link-loss/{name}".encode()).digest()
    return RngStream(int.from_bytes(digest[:8], "big"))


class Link:
    """One direction of a wire: FIFO, fixed bandwidth, fixed delay."""

    def __init__(
        self,
        sim,
        bandwidth_bps: float,
        propagation_delay_ns: int,
        name: str = "link",
        loss_probability: float = 0.0,
        loss_rng=None,
    ):
        if bandwidth_bps <= 0:
            raise NetworkError(f"bandwidth must be positive, got {bandwidth_bps}")
        if propagation_delay_ns < 0:
            raise NetworkError(f"negative propagation delay {propagation_delay_ns}")
        if not 0.0 <= loss_probability < 1.0:
            raise NetworkError(f"loss probability out of range: {loss_probability}")
        if loss_probability > 0.0 and loss_rng is None:
            # Deterministic by construction: lossy runs stay reproducible
            # even when the caller forgets to supply a stream.
            loss_rng = default_loss_rng(name)
        self._sim = sim
        self.name = name
        self.bandwidth_bps = bandwidth_bps
        self.propagation_delay_ns = propagation_delay_ns
        self.loss_probability = loss_probability
        self._loss_rng = loss_rng
        self._fault_hook: Callable[[Packet], int] | None = None
        self._receiver: Callable[[Packet], None] | None = None
        self._queue: deque[Packet] = deque()
        self._serializing = False
        self._current: Packet | None = None  # the packet on the wire
        # Packets in flight with the nominal propagation delay.  All such
        # deliveries share one fixed delay, so completion order equals
        # send order and a FIFO plus one bound-method callback replaces a
        # per-packet closure.  Jittered packets (positive fault verdicts)
        # bypass this queue and keep their own closure.
        self._flight: deque[Packet] = deque()
        # Statistics.
        self.packets_sent = 0
        self.packets_dropped = 0
        self.fault_drops = 0
        self.bytes_sent = 0
        self.busy_ns = 0

    def set_fault_hook(self, hook: Callable[[Packet], int] | None) -> None:
        """Attach a per-packet fault hook (see :mod:`repro.faults`).

        The hook is consulted once per serialized packet and returns a
        verdict: negative = drop, otherwise extra delivery delay in ns
        (independent per packet, so positive verdicts reorder).
        """
        if hook is not None and self._fault_hook is not None:
            raise NetworkError(f"link {self.name!r} already has a fault hook")
        self._fault_hook = hook

    def attach_receiver(self, receiver: Callable[[Packet], None]) -> None:
        """Set the callback invoked on packet arrival at the far end."""
        if self._receiver is not None:
            raise NetworkError(f"link {self.name!r} already has a receiver")
        self._receiver = receiver

    @property
    def queued(self) -> int:
        """Packets waiting to be serialized (excluding the one in flight)."""
        return len(self._queue)

    def send(self, packet: Packet) -> None:
        """Enqueue a packet for transmission."""
        if self._receiver is None:
            raise NetworkError(f"link {self.name!r} has no receiver attached")
        self._queue.append(packet)
        if not self._serializing:
            self._serialize_next()

    def _serialize_next(self) -> None:
        if not self._queue:
            self._serializing = False
            return
        self._serializing = True
        packet = self._queue.popleft()
        delay = serialization_delay_ns(packet.wire_bytes, self.bandwidth_bps)
        self.busy_ns += delay
        # Serialization is strictly one-at-a-time, so the in-flight
        # packet lives in an attribute and the completion callback is a
        # bound method — no per-packet closure.
        self._current = packet
        self._sim.call_after(delay, self._finish_serialization)

    def _finish_serialization(self) -> None:
        packet = self._current
        self._current = None
        verdict = 0
        if self._fault_hook is not None:
            verdict = self._fault_hook(packet)
        if verdict < 0:
            self.packets_dropped += 1
            self.fault_drops += 1
            recycle_packet(packet)
        elif self._loss_rng is not None and self._loss_rng.bernoulli(
            self.loss_probability
        ):
            self.packets_dropped += 1
            recycle_packet(packet)
        else:
            self.packets_sent += 1
            self.bytes_sent += packet.wire_bytes
            if verdict:
                self._sim.call_after(
                    self.propagation_delay_ns + verdict,
                    lambda: self._receiver(packet),
                )
            else:
                self._flight.append(packet)
                self._sim.call_after(
                    self.propagation_delay_ns, self._deliver_next
                )
        self._serialize_next()

    def _deliver_next(self) -> None:
        self._receiver(self._flight.popleft())
