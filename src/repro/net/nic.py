"""NIC model: TX ring + doorbell batching + TSO, and GRO + RX interrupts.

Transmit path.  The TCP stack posts *super-segments* (one flow's
contiguous data, up to ``tso_max_bytes``) to the TX ring and rings the
doorbell.  With ``doorbell_batching`` enabled, descriptors posted while
the NIC is already draining do not ring again (xmit_more-style
amortization — one of the driver-level batching heuristics from §1 of the
paper).  TSO slices each super-segment into MTU-sized wire packets; the
egress link paces them at line rate.

Receive path.  GRO coalesces contiguous same-flow data packets into one
delivery, flushed when a coalescing window expires, the aggregate reaches
``gro_max_bytes``, or a non-mergeable packet (pure ack, out-of-order,
retransmit) arrives for the flow.  Deliveries are handed to the host via
an interrupt; an optional interrupt-coalescing window batches several
deliveries per interrupt.

GRO matters to the paper's story twice: it amortizes per-packet receive
costs over bursts (bigger bursts — e.g. Nagle-coalesced request trains —
amortize better), and it makes the receiver acknowledge a whole burst at
once, which bounds the Nagle tail-segment stall at roughly one RTT
instead of a delayed-ack timeout.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.errors import NetworkError
from repro.net.packet import (
    TCPIP_HEADER,
    Packet,
    acquire_packet,
    recycle_packet,
)


@dataclass(frozen=True)
class NicConfig:
    """NIC tunables.

    ``mtu`` bounds TCP payload per wire packet at ``mtu - TCPIP_HEADER``.
    ``tso_max_bytes`` bounds the super-segment payload per TX descriptor
    (64 KiB mirrors Linux's GSO_MAX_SIZE).  ``gro_flush_ns`` is the GRO
    coalescing window measured from the first held packet; 0 disables
    GRO.  ``gro_max_bytes`` bounds one delivery's aggregation (64 KiB
    mirrors Linux).  ``rx_coalesce_ns`` batches interrupt delivery; 0
    means one interrupt per (GRO-merged) delivery.
    """

    mtu: int = 1500
    tso_max_bytes: int = 64 * 1024
    tx_ring_size: int = 4096
    doorbell_batching: bool = True
    gro_flush_ns: int = 3_000
    gro_max_bytes: int = 64 * 1024
    rx_coalesce_ns: int = 0

    @property
    def mss(self) -> int:
        """Maximum TCP payload per wire packet."""
        return self.mtu - TCPIP_HEADER


class _GroFlow:
    """Per-flow GRO aggregation state."""

    __slots__ = ("packet", "timer")

    def __init__(self, packet: Packet, timer):
        self.packet = packet
        self.timer = timer


class Nic:
    """One host's NIC, bound to an egress :class:`~repro.net.link.Link`."""

    def __init__(self, sim, config: NicConfig, name: str = "nic"):
        self._sim = sim
        self.config = config
        self.name = name
        # Config scalars rebound as plain attributes: the config is
        # frozen, and ``config.mss`` in particular is a computing
        # property the RX path would otherwise evaluate per packet.
        self._mss = config.mss
        self._tso_max_bytes = config.tso_max_bytes
        self._tx_ring_size = config.tx_ring_size
        self._doorbell_batching = config.doorbell_batching
        self._gro_flush_ns = config.gro_flush_ns
        self._gro_max_bytes = config.gro_max_bytes
        self._rx_coalesce_ns = config.rx_coalesce_ns
        self._egress = None
        self._tx_ring: deque[Packet] = deque()
        self._tx_active = False
        self._rx_handler: Callable[[list[Packet]], None] | None = None
        self._rx_fault_hook: Callable[[Packet], int] | None = None
        self._gro_flows: dict[tuple[int, str], _GroFlow] = {}
        self._irq_pending: list[Packet] = []
        self._irq_timer = None
        # Statistics.
        self.doorbells = 0
        self.tx_descriptors = 0
        self.tx_wire_packets = 0
        self.rx_wire_packets = 0
        self.rx_fault_drops = 0
        self.rx_deliveries = 0
        self.rx_interrupts = 0

    # ------------------------------------------------------------------
    # Wiring.
    # ------------------------------------------------------------------

    def attach_egress(self, link) -> None:
        """Connect the transmit side to a link."""
        if self._egress is not None:
            raise NetworkError(f"NIC {self.name!r} already has an egress link")
        self._egress = link

    def attach_rx_handler(self, handler: Callable[[list[Packet]], None]) -> None:
        """Set the host callback invoked per RX interrupt with deliveries."""
        if self._rx_handler is not None:
            raise NetworkError(f"NIC {self.name!r} already has an RX handler")
        self._rx_handler = handler

    def set_rx_fault_hook(self, hook: Callable[[Packet], int] | None) -> None:
        """Attach an ingress fault hook (see :mod:`repro.faults`).

        Consulted per wire packet before GRO: a negative verdict drops
        the packet (ring overrun), a positive one defers its processing
        by that many ns (interrupt starvation), zero passes it through.
        """
        if hook is not None and self._rx_fault_hook is not None:
            raise NetworkError(f"NIC {self.name!r} already has an RX fault hook")
        self._rx_fault_hook = hook

    # ------------------------------------------------------------------
    # Transmit.
    # ------------------------------------------------------------------

    def tx_ring_available(self) -> int:
        """Free descriptor slots in the TX ring."""
        return self.config.tx_ring_size - len(self._tx_ring)

    @property
    def tx_ring_occupancy(self) -> int:
        """Descriptors currently queued (the auto-corking signal, §2)."""
        return len(self._tx_ring) + (1 if self._tx_active else 0)

    def post(self, packet: Packet) -> None:
        """Post one descriptor and (if the NIC is idle) ring the doorbell."""
        if packet.payload_bytes > self._tso_max_bytes:
            raise NetworkError(
                f"super-segment of {packet.payload_bytes}B exceeds TSO max "
                f"{self._tso_max_bytes}B"
            )
        if len(self._tx_ring) >= self._tx_ring_size:
            raise NetworkError(f"TX ring overflow on NIC {self.name!r}")
        self._tx_ring.append(packet)
        self.tx_descriptors += 1
        if not self._tx_active or not self._doorbell_batching:
            self.doorbells += 1
        if not self._tx_active:
            self._tx_active = True
            self._drain()

    def _drain(self) -> None:
        # Hand every posted descriptor to the link; the link's own FIFO
        # paces the wire at line rate, so the ring drains instantly from
        # the simulator's point of view.  The ring still exists for
        # occupancy-based decisions (auto-corking) and overflow checks:
        # occupancy is cleared one "drain tick" later, modelling the
        # completion interrupt lag that auto-corking keys off.
        while self._tx_ring:
            packet = self._tx_ring.popleft()
            for wire_packet in self._tso_slice(packet):
                self._egress.send(wire_packet)
                self.tx_wire_packets += 1
        self._sim.call_after(0, self._tx_done)

    def _tx_done(self) -> None:
        if self._tx_ring:
            self._drain()
        else:
            self._tx_active = False

    def _tso_slice(self, packet: Packet) -> list[Packet]:
        """Slice a super-segment into MTU-bounded wire packets."""
        mss = self._mss
        if packet.payload_bytes <= mss:
            return [packet]
        segment = packet.payload
        if segment is None or not hasattr(segment, "split_at"):
            raise NetworkError(
                f"cannot TSO-slice payload of type {type(segment).__name__}"
            )
        src = packet.src
        dst = packet.dst
        slices: list[Packet] = []
        rest = segment
        while rest is not None:
            head, rest = rest.split_at(mss)
            slices.append(
                acquire_packet(
                    src,
                    dst,
                    head.payload_len,
                    payload=head,
                    options_bytes=head.options_bytes(),
                )
            )
        recycle_packet(packet)  # the super-segment carrier is consumed
        return slices

    # ------------------------------------------------------------------
    # Receive: GRO, then interrupt.
    # ------------------------------------------------------------------

    def receive(self, packet: Packet) -> None:
        """Ingress entry point (the link's receiver callback)."""
        if self._rx_handler is None:
            raise NetworkError(f"NIC {self.name!r} has no RX handler")
        self.rx_wire_packets += 1
        if self._rx_fault_hook is not None:
            verdict = self._rx_fault_hook(packet)
            if verdict < 0:
                self.rx_fault_drops += 1
                recycle_packet(packet)
                return
            if verdict > 0:
                self._sim.call_after(verdict, lambda: self._ingress(packet))
                return
        self._ingress(packet)

    def _ingress(self, packet: Packet) -> None:
        if self._gro_flush_ns <= 0:
            self._deliver(packet)
            return
        self._gro_receive(packet)

    def _gro_receive(self, packet: Packet) -> None:
        """GRO aggregation rules, as in the Linux receive path:

        - pure acks flush the flow's aggregate and pass through;
        - **sub-MSS data packets are never aggregated**: they flush the
          pending aggregate and are delivered standalone (a short packet
          signals end-of-burst — this is what makes a Nagle-off sender's
          pushed tails expensive at the receiver);
        - a full-MSS packet with **PSH** is merged and then flushes the
          aggregate immediately;
        - other full-MSS packets aggregate until ``gro_max_bytes`` or
          the ``gro_flush_ns`` window expires.
        """
        segment = packet.payload
        if segment is None or not hasattr(segment, "can_merge"):
            self._deliver(packet)
            return
        key = (segment.conn_id, segment.src)
        flow = self._gro_flows.get(key)
        if segment.payload_len < self._mss:  # includes pure acks
            if flow is not None:
                self._flush_flow(key)
            self._deliver(packet)
            return
        if flow is not None:
            old = flow.packet
            held = old.payload
            merged_size = held.payload_len + segment.payload_len
            gro_max = self._gro_max_bytes
            if held.can_merge(segment) and merged_size <= gro_max:
                flow.packet = acquire_packet(
                    packet.src,
                    packet.dst,
                    merged_size,
                    payload=held.merge(segment),
                    options_bytes=max(old.options_bytes, packet.options_bytes),
                    wire_count=old.wire_count + packet.wire_count,
                )
                # Both carriers are consumed by the merge.
                recycle_packet(old)
                recycle_packet(packet)
                if segment.psh or merged_size >= gro_max:
                    self._flush_flow(key)
                return
            self._flush_flow(key)
        if segment.psh:
            self._deliver(packet)
            return
        timer = self._sim.call_after(
            self._gro_flush_ns, lambda: self._flush_flow(key)
        )
        self._gro_flows[key] = _GroFlow(packet, timer)

    def _flush_flow(self, key: tuple[int, str]) -> None:
        flow = self._gro_flows.pop(key, None)
        if flow is None:
            return
        flow.timer.cancel()
        self._deliver(flow.packet)

    def _deliver(self, packet: Packet) -> None:
        self.rx_deliveries += 1
        if self._rx_coalesce_ns <= 0:
            self.rx_interrupts += 1
            self._rx_handler([packet])
            return
        self._irq_pending.append(packet)
        if self._irq_timer is None:
            self._irq_timer = self._sim.call_after(
                self._rx_coalesce_ns, self._fire_interrupt
            )

    def _fire_interrupt(self) -> None:
        self._irq_timer = None
        batch, self._irq_pending = self._irq_pending, []
        if batch:
            self.rx_interrupts += 1
            self._rx_handler(batch)
