"""A store-and-forward switch and star topologies.

The paper's testbed is two machines on one wire, but its §3.2 notes that
a batching policy may span many connections — and the natural deployment
has many clients funneling into one server port.  :class:`Switch` models
that fan-in point: per-port links (serialization + propagation) on both
sides and name-based forwarding, so the server's ingress link becomes a
shared, congestible resource.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import NetworkError
from repro.net.link import Link
from repro.net.nic import Nic
from repro.net.packet import Packet
from repro.units import usecs


class Switch:
    """Name-forwarding switch with per-port egress links."""

    def __init__(self, sim, name: str = "switch",
                 forwarding_delay_ns: int = 500):
        self._sim = sim
        self.name = name
        self.forwarding_delay_ns = forwarding_delay_ns
        self._egress: dict[str, Link] = {}
        self.packets_forwarded = 0

    def attach_port(self, host_name: str, egress: Link) -> None:
        """Bind a host name to its switch→host link."""
        if host_name in self._egress:
            raise NetworkError(f"port for {host_name!r} already attached")
        self._egress[host_name] = egress

    def receive(self, packet: Packet) -> None:
        """Ingress handler: forward after the pipeline delay."""
        egress = self._egress.get(packet.dst)
        if egress is None:
            raise NetworkError(
                f"switch {self.name!r}: no port for destination {packet.dst!r}"
            )
        self.packets_forwarded += 1
        self._sim.call_after(
            self.forwarding_delay_ns, lambda: egress.send(packet)
        )


@dataclass
class Star:
    """A switch with every NIC attached by a full-duplex link pair."""

    switch: Switch
    uplinks: dict[str, Link]      # host -> switch
    downlinks: dict[str, Link]    # switch -> host

    @classmethod
    def connect(
        cls,
        sim,
        nics: dict[str, Nic],
        bandwidth_bps: float = 100e9,
        propagation_delay_ns: int = usecs(5),
        forwarding_delay_ns: int = 500,
    ) -> "Star":
        """Wire named NICs through one switch.

        Every host gets an uplink (host→switch) and a downlink
        (switch→host); the downlink toward a busy server is the shared
        fan-in bottleneck.
        """
        if len(nics) < 2:
            raise NetworkError("a star needs at least two hosts")
        switch = Switch(sim, forwarding_delay_ns=forwarding_delay_ns)
        uplinks: dict[str, Link] = {}
        downlinks: dict[str, Link] = {}
        for host_name, nic in nics.items():
            uplink = Link(
                sim, bandwidth_bps, propagation_delay_ns,
                name=f"{host_name}->switch",
            )
            nic.attach_egress(uplink)
            uplink.attach_receiver(switch.receive)
            downlink = Link(
                sim, bandwidth_bps, propagation_delay_ns,
                name=f"switch->{host_name}",
            )
            downlink.attach_receiver(nic.receive)
            switch.attach_port(host_name, downlink)
            uplinks[host_name] = uplink
            downlinks[host_name] = downlink
        return cls(switch=switch, uplinks=uplinks, downlinks=downlinks)
