"""Wire packets.

A :class:`Packet` is one on-the-wire frame.  The payload is opaque to the
network layer (in practice a :class:`repro.tcp.segment.Segment`); the
network cares only about sizes, for serialization-time and MTU accounting.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

# Fixed per-frame overheads, in bytes.  TCPIP_HEADER covers IPv4 (20) +
# TCP (20) + timestamps option (12), matching what Linux typically sends.
# ETHERNET_OVERHEAD covers the MAC header, FCS, preamble and inter-frame
# gap — bytes that occupy the wire but never reach the TCP layer.
TCPIP_HEADER = 52
ETHERNET_OVERHEAD = 38

_packet_ids = itertools.count()


@dataclass
class Packet:
    """One frame on the wire.

    ``payload_bytes`` is TCP payload only; :attr:`wire_bytes` adds header
    and Ethernet overheads and is what the link charges serialization time
    for.  ``options_bytes`` accounts for any extra TCP options (e.g. the
    end-to-end metadata option) beyond the fixed header.
    """

    src: str
    dst: str
    payload_bytes: int
    payload: Any = None
    options_bytes: int = 0
    wire_count: int = 1
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    @property
    def wire_bytes(self) -> int:
        """Total bytes occupying the wire for this frame.

        For GRO-merged deliveries (``wire_count > 1``) this counts the
        headers of every constituent wire packet.
        """
        return (
            self.payload_bytes
            + self.options_bytes
            + (TCPIP_HEADER + ETHERNET_OVERHEAD) * self.wire_count
        )

    def __repr__(self) -> str:
        return (
            f"<Packet #{self.packet_id} {self.src}->{self.dst} "
            f"{self.payload_bytes}B payload>"
        )
