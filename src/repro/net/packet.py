"""Wire packets.

A :class:`Packet` is one on-the-wire frame.  The payload is opaque to the
network layer (in practice a :class:`repro.tcp.segment.Segment`); the
network cares only about sizes, for serialization-time and MTU accounting.

Packets are the highest-churn objects in the pipeline (one per wire
frame, plus GRO aggregates), so they are plain ``__slots__`` objects
backed by a bounded free list: :func:`acquire_packet` reuses a recycled
instance when one is available, and the pipeline's terminal points
(demux delivery, link/NIC drops, GRO merge consumption) hand dead
packets back via :func:`recycle_packet`.  Recycled packets always get a
fresh ``packet_id`` from the same counter a constructor call would use,
so pooling is invisible to everything but the allocator.  The pooling
invariant: a packet may be recycled only by the code that just consumed
its last reference on the pipeline path — see docs/PERFORMANCE.md.
"""

from __future__ import annotations

import itertools
from typing import Any

# Fixed per-frame overheads, in bytes.  TCPIP_HEADER covers IPv4 (20) +
# TCP (20) + timestamps option (12), matching what Linux typically sends.
# ETHERNET_OVERHEAD covers the MAC header, FCS, preamble and inter-frame
# gap — bytes that occupy the wire but never reach the TCP layer.
TCPIP_HEADER = 52
ETHERNET_OVERHEAD = 38

_packet_ids = itertools.count()


class Packet:
    """One frame on the wire.

    ``payload_bytes`` is TCP payload only; :attr:`wire_bytes` adds header
    and Ethernet overheads and is what the link charges serialization time
    for.  ``options_bytes`` accounts for any extra TCP options (e.g. the
    end-to-end metadata option) beyond the fixed header.
    """

    __slots__ = (
        "src",
        "dst",
        "payload_bytes",
        "payload",
        "options_bytes",
        "wire_count",
        "packet_id",
    )

    def __init__(
        self,
        src: str,
        dst: str,
        payload_bytes: int,
        payload: Any = None,
        options_bytes: int = 0,
        wire_count: int = 1,
    ):
        self.src = src
        self.dst = dst
        self.payload_bytes = payload_bytes
        self.payload = payload
        self.options_bytes = options_bytes
        self.wire_count = wire_count
        self.packet_id = next(_packet_ids)

    @property
    def wire_bytes(self) -> int:
        """Total bytes occupying the wire for this frame.

        For GRO-merged deliveries (``wire_count > 1``) this counts the
        headers of every constituent wire packet.
        """
        return (
            self.payload_bytes
            + self.options_bytes
            + (TCPIP_HEADER + ETHERNET_OVERHEAD) * self.wire_count
        )

    def __repr__(self) -> str:
        return (
            f"<Packet #{self.packet_id} {self.src}->{self.dst} "
            f"{self.payload_bytes}B payload>"
        )


# Free list.  Bounded so a pathological burst cannot pin memory; beyond
# the cap, recycled packets are simply dropped for the GC.
_pool: list[Packet] = []
_POOL_MAX = 512


def acquire_packet(
    src: str,
    dst: str,
    payload_bytes: int,
    payload: Any = None,
    options_bytes: int = 0,
    wire_count: int = 1,
) -> Packet:
    """A :class:`Packet`, reusing a recycled instance when possible."""
    pool = _pool
    if pool:
        packet = pool.pop()
        packet.src = src
        packet.dst = dst
        packet.payload_bytes = payload_bytes
        packet.payload = payload
        packet.options_bytes = options_bytes
        packet.wire_count = wire_count
        packet.packet_id = next(_packet_ids)
        return packet
    return Packet(src, dst, payload_bytes, payload, options_bytes, wire_count)


def recycle_packet(packet: Packet) -> None:
    """Return a dead packet to the free list.

    Callers must hold the *only* remaining reference on the pipeline
    path: the packet was dropped, consumed by a GRO merge, or its
    segment was just delivered to the socket.
    """
    if len(_pool) < _POOL_MAX:
        packet.payload = None  # don't pin the segment
        _pool.append(packet)
