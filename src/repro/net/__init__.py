"""Simulated network substrate: packets, links, NICs and topology.

This package stands in for the paper's 100 Gbps ConnectX-5 NICs and the
wire between the two Dell R730 hosts.  It models the mechanisms that the
paper's batching discussion depends on:

- per-packet wire occupancy (serialization at link bandwidth) and
  propagation delay (:mod:`~repro.net.link`);
- a NIC with a TX ring, doorbell batching, TSO-style segmentation of
  super-segments into MTU-sized wire packets, and optional RX interrupt
  coalescing (:mod:`~repro.net.nic`);
- a two-host point-to-point topology helper
  (:mod:`~repro.net.topology`).
"""

from repro.net.link import Link
from repro.net.nic import Nic, NicConfig
from repro.net.packet import ETHERNET_OVERHEAD, TCPIP_HEADER, Packet
from repro.net.topology import PointToPoint

__all__ = [
    "ETHERNET_OVERHEAD",
    "Link",
    "Nic",
    "NicConfig",
    "Packet",
    "PointToPoint",
    "TCPIP_HEADER",
]
