"""Topology helper: a point-to-point pair of hosts.

The paper's testbed is two machines on one wire.  :class:`PointToPoint`
builds the two unidirectional links, attaches each host's NIC egress and
ingress, and exposes the pieces for inspection.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.link import Link
from repro.net.nic import Nic
from repro.units import usecs


@dataclass
class PointToPoint:
    """Two hosts' NICs joined by a full-duplex wire."""

    forward: Link
    backward: Link

    @classmethod
    def connect(
        cls,
        sim,
        nic_a: Nic,
        nic_b: Nic,
        bandwidth_bps: float = 100e9,
        propagation_delay_ns: int = usecs(5),
        loss_probability: float = 0.0,
        loss_rng=None,
        rng=None,
        fault_injector=None,
    ) -> "PointToPoint":
        """Wire ``nic_a`` and ``nic_b`` together.

        Defaults model the paper's testbed: 100 Gbps NICs and a few
        microseconds of one-way wire-plus-switch delay.

        A lossy wire wants distinct loss draws per direction: when
        ``rng`` (an :class:`~repro.sim.rng.RngRegistry`) is given and no
        explicit ``loss_rng``, each link gets its own named stream.  An
        explicit ``loss_rng`` is shared by both directions (the legacy
        behavior some tests rely on).  ``fault_injector``, when given,
        attaches its link and NIC fault hooks to both directions.
        """
        forward_rng = backward_rng = loss_rng
        if loss_probability > 0.0 and loss_rng is None and rng is not None:
            forward_rng = rng.stream(f"link-loss.{nic_a.name}->{nic_b.name}")
            backward_rng = rng.stream(f"link-loss.{nic_b.name}->{nic_a.name}")
        forward = Link(
            sim,
            bandwidth_bps,
            propagation_delay_ns,
            name=f"{nic_a.name}->{nic_b.name}",
            loss_probability=loss_probability,
            loss_rng=forward_rng,
        )
        backward = Link(
            sim,
            bandwidth_bps,
            propagation_delay_ns,
            name=f"{nic_b.name}->{nic_a.name}",
            loss_probability=loss_probability,
            loss_rng=backward_rng,
        )
        nic_a.attach_egress(forward)
        forward.attach_receiver(nic_b.receive)
        nic_b.attach_egress(backward)
        backward.attach_receiver(nic_a.receive)
        if fault_injector is not None:
            fault_injector.attach_link(forward, "forward")
            fault_injector.attach_link(backward, "backward")
            fault_injector.attach_nic(nic_b, "forward")
            fault_injector.attach_nic(nic_a, "backward")
        return cls(forward=forward, backward=backward)
