"""``repro-service-v1``: the service's on-disk state contract.

Two artifacts share the schema name:

- the **journal** (``journal.jsonl`` in the state directory): one JSON
  object per line recording every campaign state transition the service
  makes.  The journal is append-only and fsynced per record, and its
  loader tolerates a truncated tail, so replaying it after a SIGKILL
  reconstructs exactly the acknowledged state;
- the **heartbeat** (``heartbeat.json``): a single JSON object rewritten
  atomically (temp file + rename) on every service loop tick, carrying
  the live pid, the bound HTTP port, and a monotonically increasing
  sequence number — how an operator (or the CI smoke) finds a running
  service and tells a live one from a stale file.

As with every schema in the repo, the field tables here are the single
source of truth: :func:`validate_journal_record` checks records against
them and ``tools/check_docs.py`` renders the same tables into
``docs/SERVICE.md``.
"""

from __future__ import annotations

SERVICE_SCHEMA = "repro-service-v1"

#: File names inside the service state directory.
JOURNAL_FILE = "journal.jsonl"
HEARTBEAT_FILE = "heartbeat.json"

#: Campaign lifecycle, in order.  ``queued`` -> ``running`` -> one of
#: ``done`` / ``failed``; a restart replays the journal and re-queues
#: anything left ``running`` (its checkpoints make the re-run cheap and
#: its report byte-identical).
STATUSES = ("queued", "running", "done", "failed")

#: The document layout, one table per JSON object kind, in render
#: order.  Field specs are ``name -> (python type(s), description)``
#: exactly as in :data:`repro.obs.schema.RECORD_TYPES`.
DOCUMENT: dict[str, dict] = {
    "journal-header": {
        "doc": "First line of every journal file.",
        "fields": {
            "schema": (str, f"always {SERVICE_SCHEMA!r}"),
        },
    },
    "campaign": {
        "doc": (
            "One campaign state transition (the only journal record "
            "kind).  The last record per id wins on replay."
        ),
        "fields": {
            "kind": (str, "always 'campaign'"),
            "id": (str, "campaign id: prefix of the spec's sha256 digest"),
            "status": (str, " | ".join(f"'{s}'" for s in STATUSES)),
            "spec": (str, "spool file name the spec came from"),
            "name": (str, "the campaign spec's name field"),
            "digest": (str, "full sha256 of the spec's canonical JSON"),
            "detail": (str, "human-readable note (error text on 'failed')"),
        },
    },
    "heartbeat": {
        "doc": (
            "The atomically rewritten liveness file "
            "(``heartbeat.json``)."
        ),
        "fields": {
            "schema": (str, f"always {SERVICE_SCHEMA!r}"),
            "kind": (str, "always 'heartbeat'"),
            "pid": (int, "the service process id"),
            "port": (int, "bound HTTP status port (0 until the server is up)"),
            "seq": (int, "monotonically increasing tick counter"),
            "campaigns": (dict, "campaign counts keyed by status"),
        },
    },
}


def _check(value, expected) -> bool:
    if expected is int:
        return isinstance(value, int) and not isinstance(value, bool)
    return isinstance(value, expected)


def validate_journal_record(record) -> list[str]:
    """Problems with one parsed journal record (empty list = valid)."""
    if not isinstance(record, dict):
        return [f"record must be an object, got {type(record).__name__}"]
    if "schema" in record:
        if record["schema"] != SERVICE_SCHEMA:
            return [
                f"header schema is {record['schema']!r}, "
                f"expected {SERVICE_SCHEMA!r}"
            ]
        return []
    problems: list[str] = []
    fields = DOCUMENT["campaign"]["fields"]
    if record.get("kind") != "campaign":
        return [f"unknown journal record kind {record.get('kind')!r}"]
    for name, (expected, _) in fields.items():
        if name not in record:
            problems.append(f"campaign record: missing field {name!r}")
        elif not _check(record[name], expected):
            problems.append(
                f"campaign record: field {name!r} has wrong type "
                f"{type(record[name]).__name__}"
            )
    if not problems and record["status"] not in STATUSES:
        problems.append(
            f"campaign record: unknown status {record['status']!r}"
        )
    return problems
