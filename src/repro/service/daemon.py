"""The ``repro serve`` daemon: a spool-driven campaign service.

Operation model::

    spool/                 <- drop repro-campaign-v1 specs here
      nightly.json
    state/
      journal.jsonl        <- repro-service-v1 state transitions (fsynced)
      heartbeat.json       <- atomically rewritten liveness (pid/port/seq)
      campaigns/<id>/
        checkpoint/        <- repro-checkpoint-v1 shards for the campaign
        report.json        <- finished repro-importance-v1 report (canonical)
        remedy.json        <- repro-remediation-v1 report (with remediation)

A campaign's **id** is a prefix of its *effective* spec digest (the
spec after the service's ``measure_ms`` override) — so the same spec
dropped twice is one campaign, a restarted service maps each spec back
to the same state directory, and resuming an interrupted campaign
replays its fsynced checkpoints into a report **byte-identical** to an
uninterrupted run.

Crash/restart contract: every state transition is journaled durably
*before* the work it announces; on startup the journal is replayed and
anything left ``queued`` or ``running`` (or ``done`` with its report
missing) is simply re-run — the checkpoint store makes that a cheap
replay, not a recompute.  Graceful drain: SIGTERM/SIGINT ask the
service to stop, the in-flight campaign finishes (its checkpoints mean
even that is optional), state is journaled, and the process exits 0.
SIGKILL is the covered-by-design crash path the CI smoke exercises.
"""

from __future__ import annotations

import hashlib
import os
import signal
import sys
import threading
import time
from dataclasses import dataclass, replace

from repro.errors import ServiceError
from repro.service.http import StatusServer
from repro.service.schema import HEARTBEAT_FILE, JOURNAL_FILE, SERVICE_SCHEMA
from repro.service.state import ServiceJournal, write_heartbeat

#: Spec digest prefix length used as the campaign id.
ID_LEN = 16

#: Spool extensions the scanner picks up, in scan order.
SPEC_SUFFIXES = (".json", ".yaml", ".yml")


def campaign_id(spec) -> str:
    """The service id of one (effective) campaign spec."""
    return spec.digest()[:ID_LEN]


@dataclass(frozen=True)
class ServiceConfig:
    """Everything ``repro serve`` needs to run (see the CLI flags)."""

    spool: str
    state_dir: str
    host: str = "127.0.0.1"
    port: int = 0
    poll_s: float = 0.5
    workers: int = 1
    measure_ms: int | None = None
    remediate: bool = False
    playbooks: str | None = None
    remedy_budget: int | None = None
    once: bool = False
    quiet: bool = False

    def validate(self) -> None:
        if self.poll_s <= 0:
            raise ServiceError(
                f"poll interval must be positive, got {self.poll_s}"
            )
        if self.port < 0 or self.port > 65535:
            raise ServiceError(f"invalid port {self.port}")


class ReproService:
    """The long-running campaign service (one instance per state dir)."""

    def __init__(self, config: ServiceConfig):
        config.validate()
        self.config = config
        import pathlib

        self.spool = pathlib.Path(config.spool)
        self.state_dir = pathlib.Path(config.state_dir)
        for directory in (self.spool, self.state_dir):
            try:
                directory.mkdir(parents=True, exist_ok=True)
            except OSError as exc:
                raise ServiceError(
                    f"unusable service directory {directory}: {exc}"
                ) from exc
        self.journal = ServiceJournal(self.state_dir / JOURNAL_FILE)
        self._lock = threading.Lock()
        #: id -> {id, status, spec, name, digest, detail}
        self._campaigns: dict[str, dict] = {}
        self._seq = 0
        self._stop = threading.Event()
        self._http: StatusServer | None = None
        self._replay()

    # -- logging --------------------------------------------------------

    def _log(self, message: str) -> None:
        if not self.config.quiet:
            print(f"repro serve: {message}", file=sys.stderr)

    # -- state ----------------------------------------------------------

    def _replay(self) -> None:
        """Rebuild in-memory state from the journal (startup only).

        ``queued``/``running`` entries are re-queued — the dead service
        never journaled their completion, so the work (or its cheap
        checkpoint replay) is still owed.  ``done`` entries whose report
        file vanished are re-queued too: the journal promises a report.
        """
        for id_, record in self.journal.replay().items():
            entry = dict(record)
            if entry["status"] == "running":
                entry["status"] = "queued"
                entry["detail"] = "re-queued after service restart"
            if (
                entry["status"] == "done"
                and not self._report_path(id_).exists()
            ):
                entry["status"] = "queued"
                entry["detail"] = "report missing; re-running"
            self._campaigns[id_] = entry
        if self._campaigns:
            self._log(
                f"journal replayed: {len(self._campaigns)} campaign(s)"
            )

    def _campaign_dir(self, id_: str):
        return self.state_dir / "campaigns" / id_

    def _report_path(self, id_: str):
        return self._campaign_dir(id_) / "report.json"

    def _remedy_path(self, id_: str):
        return self._campaign_dir(id_) / "remedy.json"

    def _transition(self, entry: dict, status: str, detail: str = "") -> None:
        """Journal first, then update live state (write-ahead order)."""
        self.journal.campaign(
            entry["id"], status, entry["spec"], entry["name"],
            entry["digest"], detail,
        )
        with self._lock:
            entry = dict(entry)
            entry["status"] = status
            entry["detail"] = detail
            self._campaigns[entry["id"]] = entry

    # -- spool ----------------------------------------------------------

    def _load_spec(self, path):
        """The *effective* spec for one spool file (override applied)."""
        from repro.campaign import load_spec

        spec = load_spec(path)
        if self.config.measure_ms is not None:
            base = dict(spec.base)
            base.pop("measure_ns", None)
            base["measure_ms"] = self.config.measure_ms
            spec = replace(spec, base=base)
        return spec

    def scan_spool(self) -> int:
        """Pick up new specs from the spool; returns how many were new."""
        from repro.errors import CampaignSpecError

        new = 0
        for path in sorted(self.spool.iterdir()):
            if path.suffix not in SPEC_SUFFIXES or not path.is_file():
                continue
            try:
                spec = self._load_spec(path)
            except CampaignSpecError as exc:
                # A broken spec is a campaign too — identified by its
                # raw bytes, permanently failed, visible in /status.
                raw_id = hashlib.sha256(path.read_bytes()).hexdigest()[:ID_LEN]
                with self._lock:
                    known = raw_id in self._campaigns
                if not known:
                    entry = {
                        "id": raw_id, "spec": path.name, "name": path.stem,
                        "digest": "", "status": "queued", "detail": "",
                    }
                    self._transition(entry, "failed", str(exc)[:500])
                    self._log(f"{path.name}: invalid spec: {exc}")
                continue
            id_ = campaign_id(spec)
            with self._lock:
                known = id_ in self._campaigns
            if known:
                continue
            entry = {
                "id": id_, "spec": path.name, "name": spec.name,
                "digest": spec.digest(), "status": "queued", "detail": "",
            }
            self._transition(entry, "queued", f"from {path.name}")
            self._log(f"queued campaign {id_} ({spec.name}) from {path.name}")
            new += 1
        return new

    def _next_queued(self) -> dict | None:
        with self._lock:
            queued = [
                entry for entry in self._campaigns.values()
                if entry["status"] == "queued" and entry["digest"]
            ]
        queued.sort(key=lambda entry: (entry["spec"], entry["id"]))
        return queued[0] if queued else None

    # -- execution ------------------------------------------------------

    def _make_remedy(self):
        if not self.config.remediate:
            return None
        from repro.remedy import (
            DEFAULT_BUDGET,
            RemedyEngine,
            load_playbook_config,
        )

        playbooks, budget = None, DEFAULT_BUDGET
        if self.config.playbooks is not None:
            playbooks, budget = load_playbook_config(self.config.playbooks)
        if self.config.remedy_budget is not None:
            budget = self.config.remedy_budget
        return RemedyEngine(playbooks=playbooks, budget=budget)

    def run_campaign(self, entry: dict) -> None:
        """Execute one queued campaign end to end."""
        from repro.campaign import run_spec
        from repro.errors import ReproError
        from repro.remedy import render_report
        from repro.supervise import CheckpointStore

        id_ = entry["id"]
        directory = self._campaign_dir(id_)
        spec = self._load_spec(self.spool / entry["spec"])
        self._transition(entry, "running")
        self._log(f"running campaign {id_} ({spec.name})")
        store = CheckpointStore(directory / "checkpoint", label=spec.name)
        remedy = self._make_remedy()
        try:
            run = run_spec(
                spec,
                workers=self.config.workers,
                checkpoint=store,
                remedy=remedy,
            )
        except ReproError as exc:
            self._emit_remedy(id_, spec, remedy)
            self._transition(entry, "failed", str(exc)[:500])
            self._log(f"campaign {id_} failed: {exc}")
            return
        finally:
            store.close()
        self._report_path(id_).write_text(run.report.to_canonical())
        remedy_note = self._emit_remedy(id_, spec, remedy)
        self._transition(
            entry, "done",
            f"{run.cells} cell(s), {run.executed} executed, "
            f"{run.cached} from checkpoint" + remedy_note,
        )
        self._log(f"campaign {id_} done: {run.describe()}")
        if remedy is not None and remedy.actions and not self.config.quiet:
            print(
                render_report(remedy.report(spec.name, run.matrix.spec_digest)),
                file=sys.stderr,
            )

    def _emit_remedy(self, id_: str, spec, remedy) -> str:
        if remedy is None:
            return ""
        report = remedy.report(spec.name, spec.digest())
        self._remedy_path(id_).parent.mkdir(parents=True, exist_ok=True)
        self._remedy_path(id_).write_text(report.to_canonical())
        return f", {len(report.actions)} remediation action(s)"

    # -- status surface (called from HTTP handler threads) ---------------

    def snapshot(self) -> dict:
        with self._lock:
            campaigns = [dict(entry) for entry in self._campaigns.values()]
            seq = self._seq
        campaigns.sort(key=lambda entry: (entry["spec"], entry["id"]))
        counts: dict[str, int] = {}
        for entry in campaigns:
            counts[entry["status"]] = counts.get(entry["status"], 0) + 1
        return {
            "schema": SERVICE_SCHEMA,
            "pid": os.getpid(),
            "port": self._http.port if self._http is not None else 0,
            "seq": seq,
            "spool": str(self.spool),
            "campaigns": campaigns,
            "counts": counts,
        }

    def campaign_detail(self, id_: str) -> dict | None:
        import json

        with self._lock:
            entry = self._campaigns.get(id_)
            if entry is None:
                return None
            detail = dict(entry)
        report_path = self._report_path(id_)
        detail["report"] = None
        if report_path.exists():
            try:
                detail["report"] = json.loads(report_path.read_text())
            except ValueError:
                pass
        return detail

    def campaign_findings(self, id_: str) -> dict | None:
        import json

        with self._lock:
            if id_ not in self._campaigns:
                return None
        findings: dict = {"id": id_, "remediation": None}
        remedy_path = self._remedy_path(id_)
        if remedy_path.exists():
            try:
                findings["remediation"] = json.loads(remedy_path.read_text())
            except ValueError:
                pass
        return findings

    # -- lifecycle ------------------------------------------------------

    def request_stop(self) -> None:
        """Ask the run loop to drain and exit (signal-handler safe)."""
        self._stop.set()

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT drain gracefully (main thread only)."""
        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(signum, lambda *_: self.request_stop())

    def heartbeat(self) -> None:
        with self._lock:
            self._seq += 1
            seq = self._seq
        snapshot = self.snapshot()
        write_heartbeat(
            self.state_dir / HEARTBEAT_FILE,
            pid=os.getpid(),
            port=snapshot["port"],
            seq=seq,
            campaigns=snapshot["counts"],
        )

    def serve_forever(self) -> int:
        """The run loop: scan, execute, heartbeat, repeat until drained.

        Returns the process exit code (0 on a clean drain; ``--once``
        exits once the spool is fully processed).
        """
        self._http = StatusServer(
            self, host=self.config.host, port=self.config.port
        )
        self._http.start()
        self._log(
            f"listening on http://{self._http.host}:{self._http.port} "
            f"(spool {self.spool}, state {self.state_dir})"
        )
        try:
            self.heartbeat()
            while not self._stop.is_set():
                self.scan_spool()
                self.heartbeat()
                ran = False
                while not self._stop.is_set():
                    entry = self._next_queued()
                    if entry is None:
                        break
                    self.run_campaign(entry)
                    self.heartbeat()
                    ran = True
                if self.config.once and self._next_queued() is None:
                    break
                if not ran:
                    # Idle: wait out the poll interval, but wake
                    # immediately on a stop request.
                    self._stop.wait(self.config.poll_s)
            self.heartbeat()
            self._log("drained; exiting")
            return 0
        finally:
            self._http.stop()
            self._http = None
            self.journal.close()
