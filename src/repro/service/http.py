"""Read-only HTTP status surface for the campaign service.

Stdlib-only (``http.server``), bound to localhost, GET-only — an
observation port, not a control plane.  Endpoints:

- ``GET /healthz`` — liveness: ``{"ok": true, "seq": N}``;
- ``GET /status`` — the full service snapshot (spool, counts, every
  campaign's status);
- ``GET /campaigns/<id>`` — one campaign's detail, including its
  finished ``repro-importance-v1`` report document when done;
- ``GET /campaigns/<id>/findings`` — what self-healing saw: the
  campaign's ``repro-remediation-v1`` report document (when
  remediation ran) and its diagnosis summary (when one was captured).

Everything returned is a snapshot copy built under the service's lock;
handlers never touch live engine state, so a slow or hostile client
cannot perturb a running campaign.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1"

    def _send(self, status: int, document) -> None:
        body = json.dumps(document, indent=2).encode() + b"\n"
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 (http.server contract)
        service = self.server.repro_service  # type: ignore[attr-defined]
        path = self.path.rstrip("/") or "/"
        if path == "/healthz":
            snapshot = service.snapshot()
            self._send(200, {"ok": True, "seq": snapshot["seq"]})
            return
        if path == "/status":
            self._send(200, service.snapshot())
            return
        if path.startswith("/campaigns/"):
            parts = path.split("/")[2:]  # ['', 'campaigns', id, ...]
            if len(parts) == 1:
                detail = service.campaign_detail(parts[0])
                if detail is None:
                    self._send(404, {"error": f"no campaign {parts[0]!r}"})
                else:
                    self._send(200, detail)
                return
            if len(parts) == 2 and parts[1] == "findings":
                findings = service.campaign_findings(parts[0])
                if findings is None:
                    self._send(404, {"error": f"no campaign {parts[0]!r}"})
                else:
                    self._send(200, findings)
                return
        self._send(404, {"error": f"unknown path {self.path!r}"})

    def log_message(self, format, *args) -> None:  # noqa: A002
        """Silence per-request stderr noise (the journal is the log)."""


class StatusServer:
    """A localhost ThreadingHTTPServer in a daemon thread.

    ``port=0`` binds an ephemeral port; the resolved one is in
    :attr:`port` after :meth:`start` (and in the service heartbeat, which
    is how the CI smoke discovers it).
    """

    def __init__(self, service, host: str = "127.0.0.1", port: int = 0):
        self._server = ThreadingHTTPServer((host, port), _Handler)
        self._server.repro_service = service  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None
        self.host = self._server.server_address[0]
        self.port = self._server.server_address[1]

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-serve-http",
            daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
