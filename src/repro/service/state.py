"""Crash-safe service state: the journal and the heartbeat file.

:class:`ServiceJournal` is the service's write-ahead record of campaign
state transitions — append-only JSONL, one fsync per record (the same
durability contract as the checkpoint store: a record the service
acted on cannot be lost to a SIGKILL), truncated-tail-tolerant on
replay.  :func:`replay` folds the journal into "last status per
campaign id", which is all a restarting service needs to pick up where
the dead one stopped.

The heartbeat is a single JSON object rewritten via temp-file +
``os.replace`` so a reader never observes a torn write: either the old
heartbeat or the new one, never half of each.
"""

from __future__ import annotations

import json
import os
import pathlib

from repro.errors import ServiceError
from repro.service.schema import SERVICE_SCHEMA, validate_journal_record


class ServiceJournal:
    """Append-only ``repro-service-v1`` journal with fsync-per-record."""

    def __init__(self, path):
        self.path = pathlib.Path(path)
        self._file = None

    def append(self, record: dict) -> None:
        """Durably append one record (validated first)."""
        problems = validate_journal_record(record)
        if problems:
            raise ServiceError(
                f"refusing to journal an invalid record: "
                + "; ".join(problems)
            )
        if self._file is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fresh = not self.path.exists() or self.path.stat().st_size == 0
            self._file = self.path.open("a", encoding="utf-8")
            if fresh:
                self._file.write(
                    json.dumps(
                        {"schema": SERVICE_SCHEMA}, separators=(",", ":")
                    ) + "\n"
                )
        self._file.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._file.flush()
        os.fsync(self._file.fileno())

    def campaign(
        self, id: str, status: str, spec: str, name: str,
        digest: str, detail: str = "",
    ) -> None:
        """Journal one campaign state transition."""
        self.append({
            "kind": "campaign", "id": id, "status": status,
            "spec": spec, "name": name, "digest": digest, "detail": detail,
        })

    def load(self) -> list[dict]:
        """Every journal record, tolerating a truncated tail.

        A final line without its newline is a record a killed writer had
        not finished — dropped, exactly like the checkpoint loader.  Any
        *other* malformed line is corruption and raises
        :class:`~repro.errors.ServiceError`.
        """
        if not self.path.exists():
            return []
        text = self.path.read_text(encoding="utf-8")
        ends_complete = text.endswith("\n")
        lines = text.split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        records: list[dict] = []
        last = len(lines)
        for lineno, line in enumerate(lines, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                if lineno == last and not ends_complete:
                    break  # torn tail of a killed service
                raise ServiceError(
                    f"{self.path}:{lineno}: corrupt journal line: {exc}"
                ) from exc
            problems = validate_journal_record(record)
            if problems:
                raise ServiceError(
                    f"{self.path}:{lineno}: " + "; ".join(problems)
                )
            if "schema" not in record:
                records.append(record)
        return records

    def replay(self) -> dict[str, dict]:
        """Last journal record per campaign id (the effective state)."""
        state: dict[str, dict] = {}
        for record in self.load():
            state[record["id"]] = record
        return state

    def close(self) -> None:
        """Close the journal file (idempotent)."""
        if self._file is not None:
            self._file.close()
            self._file = None


def write_heartbeat(path, pid: int, port: int, seq: int,
                    campaigns: dict) -> None:
    """Atomically (re)write the heartbeat file."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    document = {
        "schema": SERVICE_SCHEMA,
        "kind": "heartbeat",
        "pid": pid,
        "port": port,
        "seq": seq,
        "campaigns": dict(campaigns),
    }
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(document, separators=(",", ":")) + "\n")
    os.replace(tmp, path)


def read_heartbeat(path) -> dict | None:
    """The parsed heartbeat, or ``None`` if absent/unreadable.

    Unreadable covers the impossible-but-cheap torn-write case; the
    atomic rename makes it unreachable in practice, and a service that
    died mid-``write_text`` leaves only the ``.tmp`` behind.
    """
    path = pathlib.Path(path)
    try:
        document = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(document, dict):
        return None
    if document.get("schema") != SERVICE_SCHEMA:
        return None
    return document
