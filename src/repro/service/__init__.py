"""The long-running campaign service behind ``repro serve``.

A daemon that watches a *spool* directory for ``repro-campaign-v1``
specs, executes each through the supervised campaign engine (with
checkpoints and, optionally, remediation playbooks), and exposes a
read-only HTTP status surface.  Crash-safety comes from two layers: the
per-campaign checkpoint store (every completed cell is fsynced as it
lands) and the service's own ``repro-service-v1`` state journal, so a
killed service restarts, resumes in-flight campaigns, and finishes with
reports byte-identical to an uninterrupted run.
"""

from repro.service.daemon import ReproService, ServiceConfig, campaign_id
from repro.service.http import StatusServer
from repro.service.schema import (
    HEARTBEAT_FILE,
    JOURNAL_FILE,
    SERVICE_SCHEMA,
    STATUSES,
    validate_journal_record,
)
from repro.service.state import (
    ServiceJournal,
    read_heartbeat,
    write_heartbeat,
)

__all__ = [
    "ReproService",
    "ServiceConfig",
    "StatusServer",
    "ServiceJournal",
    "campaign_id",
    "read_heartbeat",
    "write_heartbeat",
    "SERVICE_SCHEMA",
    "STATUSES",
    "JOURNAL_FILE",
    "HEARTBEAT_FILE",
    "validate_journal_record",
]
