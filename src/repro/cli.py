"""Command-line interface: run any paper experiment from the shell.

Examples::

    python -m repro fig1
    python -m repro fig4a --quick
    python -m repro fig2 --seeds 1 2 3
    python -m repro run --rate 35000 --nagle --value-bytes 16384
    python -m repro ablation units
    python -m repro ablation toggler --measure-ms 300
    python -m repro trace record toggler --out toggler.jsonl
    python -m repro trace summarize toggler.jsonl
    python -m repro trace filter toggler.jsonl --type toggler.decision

Every command prints the same rows/series the paper reports (via each
experiment's ``render()``).
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace

from repro.loadgen.arrivals import Workload
from repro.loadgen.lancet import BenchConfig, run_benchmark
from repro.units import msecs, to_usecs


def _add_measure(parser: argparse.ArgumentParser, default_ms: int) -> None:
    parser.add_argument(
        "--measure-ms", type=int, default=default_ms,
        help=f"measurement window in simulated ms (default {default_ms})",
    )


def _add_workers(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for independent runs (default 1 = serial, "
             "0 = one per CPU); results are identical to serial",
    )


def _add_backend(parser: argparse.ArgumentParser) -> None:
    from repro.config import BACKENDS

    parser.add_argument(
        "--backend", choices=list(BACKENDS), default=None,
        help="batch-pipeline backend: legacy per-object path, pure-python "
             "batch, numpy batch, or auto (numpy if importable); default "
             "follows REPRO_BACKEND, else legacy. Output is byte-identical "
             "across backends",
    )


def _shards_arg(value: str):
    """``--shards`` accepts a positive count or ``auto`` (one per CPU)."""
    if value == "auto":
        return "auto"
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'auto', got {value!r}"
        )


def _resolve_shards(value):
    """Resolve a ``--shards`` value: ``auto`` -> one shard per CPU."""
    if value == "auto":
        from repro.parallel import resolve_workers

        return resolve_workers(0)
    return value


def _add_supervise(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--resume", default=None, metavar="DIR",
        help="checkpoint directory (repro-checkpoint-v1): completed runs "
             "are recorded there and skipped on a rerun, so an "
             "interrupted campaign resumes with identical merged output",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="shared cross-experiment result cache (repro-checkpoint-v1): "
             "completed runs are stored by content digest and any "
             "experiment pointed at the same directory replays matching "
             "runs from disk, byte-identical to running them",
    )
    parser.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="extra attempts for a failing run before it is quarantined "
             "(default 2)",
    )
    parser.add_argument(
        "--job-timeout", type=float, default=None, metavar="SECONDS",
        help="per-run wall-clock budget; a hung worker is killed and the "
             "run retried (needs --workers > 1; default: no timeout)",
    )


def _supervise_from(args):
    """(policy, checkpoint) from --retries/--job-timeout/--resume/
    --cache-dir flags."""
    policy = None
    retries = getattr(args, "retries", None)
    timeout = getattr(args, "job_timeout", None)
    if retries is not None or timeout is not None:
        from repro.supervise import SupervisePolicy

        kwargs = {}
        if retries is not None:
            kwargs["max_attempts"] = retries + 1
        if timeout is not None:
            kwargs["job_timeout_s"] = timeout
        policy = SupervisePolicy(**kwargs)
    resume = getattr(args, "resume", None)
    cache_dir = getattr(args, "cache_dir", None)
    if resume is not None and cache_dir is not None:
        print(
            "error: --resume and --cache-dir both name a result store; "
            "pick one (a cache directory already resumes matching runs)",
            file=sys.stderr,
        )
        raise SystemExit(2)
    if cache_dir is not None:
        from repro.cache import ResultCache

        return policy, ResultCache(cache_dir)
    return policy, resume


def _report_cache(checkpoint) -> None:
    """Print hit/miss accounting after a --cache-dir campaign."""
    from repro.cache import ResultCache

    if isinstance(checkpoint, ResultCache):
        checkpoint.close()
        print(checkpoint.describe())


def _cmd_fig1(args) -> int:
    from repro.experiments import run_fig1

    print(run_fig1(cs=tuple(args.c)).render())
    return 0


def _cmd_fig2(args) -> int:
    from repro.experiments import run_fig2

    tracer = _make_tracer(args.trace, label="fig2")
    policy, checkpoint = _supervise_from(args)
    diagnosis = _diagnosis_from(args)
    result = run_fig2(seeds=tuple(args.seeds),
                      measure_ns=msecs(args.measure_ms),
                      workers=args.workers,
                      tracer=tracer,
                      policy=policy,
                      checkpoint=checkpoint,
                      diagnosis=diagnosis)
    print(result.render())
    _report_diagnosis(diagnosis)
    _report_cache(checkpoint)
    _finish_tracer(tracer, args.trace)
    return 0


def _cmd_fig4a(args) -> int:
    from repro.experiments.fig4a import DEFAULT_RATES, default_config, run_fig4a

    rates = args.rates or ([10_000.0, 35_000.0, 55_000.0, 75_000.0]
                           if args.quick else DEFAULT_RATES)
    policy, checkpoint = _supervise_from(args)
    result = run_fig4a(
        rates=rates, base=default_config(measure_ns=msecs(args.measure_ms)),
        workers=args.workers, policy=policy, checkpoint=checkpoint,
    )
    print(result.render())
    _report_cache(checkpoint)
    return 0


def _cmd_fig4b(args) -> int:
    from repro.experiments.fig4b import DEFAULT_RATES, mixed_config, run_fig4b

    rates = args.rates or ([10_000.0, 30_000.0, 50_000.0]
                           if args.quick else DEFAULT_RATES)
    base = mixed_config()
    base = replace(base, measure_ns=msecs(args.measure_ms))
    policy, checkpoint = _supervise_from(args)
    result = run_fig4b(rates=rates, base=base, workers=args.workers,
                       policy=policy, checkpoint=checkpoint)
    print(result.render())
    _report_cache(checkpoint)
    return 0


def _make_tracer(path: str | None, label: str):
    """A JSONL-backed tracer for ``--trace PATH``, or None."""
    if not path:
        return None
    from repro.obs import JsonlSink, Tracer

    return Tracer(sink=JsonlSink(path), label=label)


def _finish_tracer(tracer, path: str) -> None:
    """Flush and report a ``--trace`` stream."""
    if tracer is None:
        return
    tracer.close()
    print(f"trace written to {path} ({tracer.emitted} records)")


def _fault_plan_from(args):
    if not getattr(args, "fault_plan", None):
        return None
    from repro.faults import named_plan

    plan = named_plan(args.fault_plan)
    intensity = getattr(args, "fault_intensity", 1.0)
    if intensity != 1.0:
        plan = plan.scaled(intensity)
    return None if plan.is_noop else plan


class _BedHolder:
    """Captures the testbed from a run; picklable so the supervised
    path can content-address the job even under ``--resume``."""

    def __init__(self):
        self.bed = None

    def __call__(self, bed) -> None:
        self.bed = bed


def _cmd_run(args) -> int:
    config = BenchConfig(
        rate_per_sec=args.rate,
        nagle=args.nagle,
        nagle_mode=args.nagle_mode,
        autocork=args.autocork,
        connections=args.connections,
        seed=args.seed,
        workload=Workload(
            set_ratio=args.set_ratio,
            value_bytes=args.value_bytes,
        ),
        warmup_ns=msecs(args.warmup_ms),
        measure_ns=msecs(args.measure_ms),
        client_cpu_factor=args.client_cpu_factor,
        min_rto_ns=msecs(args.min_rto_ms),
        fault_plan=_fault_plan_from(args),
    )
    if args.backend is not None:
        # Validated, then exported: the supervised path ships runs to
        # worker processes, which pick the backend up from the
        # environment (byte-identity-neutral either way).
        import os as _os

        from repro.config import BACKEND_ENV, resolve_backend

        resolve_backend(args.backend)
        _os.environ[BACKEND_ENV] = args.backend
    tracer = _make_tracer(args.trace, label="run")
    policy, checkpoint = _supervise_from(args)
    want_bed = (
        args.dump_counters
        or config.fault_plan is not None
        or args.metrics is not None
        or tracer is not None
    )
    holder = _BedHolder() if want_bed else None
    if policy is not None or checkpoint is not None:
        # Supervised path: the run is checkpointed under --resume and
        # skipped (with identical output) when already recorded there.
        from repro.parallel import run_campaign

        result = run_campaign(
            [config], tweak=holder, tracer=tracer,
            policy=policy, checkpoint=checkpoint,
        )[0]
    else:
        result = run_benchmark(config, tweak=holder, tracer=tracer)
    restored = want_bed and holder.bed is None
    if restored:
        print("restored from checkpoint: testbed-dependent output "
              "(counters, fault summaries, metrics) is skipped")
    if (args.metrics is not None or tracer is not None) and not restored:
        from repro.obs import collect_run_metrics

        registry = collect_run_metrics(holder.bed, result=result)
        snapshot = registry.snapshot()
        if tracer is not None:
            tracer.metrics_snapshot(snapshot)
        if args.metrics is not None:
            import json as _json
            import pathlib as _pathlib

            target = _pathlib.Path(args.metrics)
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(_json.dumps(snapshot, indent=2) + "\n")
    print(f"offered: {result.offered_rate:,.0f} RPS   "
          f"achieved: {result.achieved_rate:,.0f} RPS")
    print(f"latency mean/p50/p99: {to_usecs(result.latency.mean_ns):.1f} / "
          f"{to_usecs(result.latency.p50_ns):.1f} / "
          f"{to_usecs(result.latency.p99_ns):.1f} us")
    if result.estimate is not None and result.estimate.defined:
        print(f"byte-queue estimate (sec. 3.2): "
              f"{to_usecs(result.estimate.latency_ns):.1f} us")
    if result.hint_latency_ns is not None:
        print(f"hint estimate (sec. 3.3): "
              f"{to_usecs(result.hint_latency_ns):.1f} us, "
              f"{result.hint_rps:,.0f} req/s")
    print(f"CPU: client app/net {result.client_app_util:.0%}/"
          f"{result.client_net_util:.0%}   server app/net "
          f"{result.server_app_util:.0%}/{result.server_net_util:.0%}")
    if (config.fault_plan is not None and not restored
            and holder.bed.faults is not None):
        import json as _json

        print(f"injected faults ({config.fault_plan.name}): "
              f"{_json.dumps(holder.bed.faults.summary())}")
    if args.dump_counters and not restored:
        from repro.analysis.dump import dump_testbed, render_stats

        print()
        print(render_stats(dump_testbed(holder.bed)))
    if args.metrics is not None and not restored:
        print(f"metrics written to {args.metrics}")
    _report_cache(checkpoint)
    _finish_tracer(tracer, args.trace)
    return 0


def _cmd_fanin(args) -> int:
    from repro.experiments.fanin import (
        FaninConfig,
        run_fanin,
        run_fanin_sharded,
    )

    config = FaninConfig(
        clients=args.clients,
        total_rate_per_sec=args.rate,
        nagle=args.nagle,
        warmup_ns=msecs(args.warmup_ms),
        measure_ns=msecs(args.measure_ms),
        seed=args.seed,
    )
    policy, checkpoint = _supervise_from(args)
    tracer = _make_tracer(args.trace, label="fanin")
    if args.shards is not None:
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        result = run_fanin_sharded(
            config,
            shards=_resolve_shards(args.shards),
            workers=args.workers,
            policy=policy,
            checkpoint=checkpoint,
            backend=args.backend,
            tracer=tracer,
            metrics=registry,
        )
        print(f"sharded fan-in: {config.clients} connections, "
              f"{result.merged_events} merged completions "
              f"(fingerprint {result.merge_fingerprint[:16]})")
        for index, mean in enumerate(result.per_client_mean_ns):
            print(f"  client {index}: mean {to_usecs(mean):.1f} us")
        print(f"  aggregate mean: "
              f"{to_usecs(result.aggregate_mean_ns):.1f} us")
        if result.averaged_estimate_ns is not None:
            print(f"  averaged estimate (sec. 3.2): "
                  f"{to_usecs(result.averaged_estimate_ns):.1f} us")
        print(f"  server replica net util (mean): "
              f"{result.server_net_util_mean:.0%}")
    else:
        result = run_fanin(
            config, with_toggler=args.toggler, backend=args.backend
        )
        print(result.render())
    if args.json:
        import pathlib as _pathlib

        target = _pathlib.Path(args.json)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(result.to_json() + "\n")
        print(f"result JSON written to {args.json}")
    _report_cache(checkpoint)
    _finish_tracer(tracer, args.trace)
    return 0


def _cmd_bottleneck(args) -> int:
    from repro.experiments.bottleneck import (
        BottleneckConfig,
        run_shared_bottleneck,
    )
    from repro.obs.metrics import MetricsRegistry

    config = BottleneckConfig(
        flows=args.flows,
        total_rate_per_sec=args.rate,
        nagle=args.nagle,
        warmup_ns=msecs(args.warmup_ms),
        measure_ns=msecs(args.measure_ms),
        seed=args.seed,
    )
    policy, checkpoint = _supervise_from(args)
    tracer = _make_tracer(args.trace, label="bottleneck")
    registry = MetricsRegistry()
    result = run_shared_bottleneck(
        config,
        shards=_resolve_shards(args.shards),
        workers=args.workers,
        policy=policy,
        checkpoint=checkpoint,
        tracer=tracer,
        metrics=registry,
    )
    print(result.render())
    print(f"  bottleneck util {result.bottleneck_utilization:.0%}, "
          f"peak queue {result.bottleneck_peak_queue} packets, "
          f"{result.bottleneck_packets} packets through")
    print(f"  {result.windows} windows, "
          f"{result.exchanged_events} cross-shard messages "
          f"(fingerprint {result.merge_fingerprint[:16]})")
    if args.json:
        import pathlib as _pathlib

        target = _pathlib.Path(args.json)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(result.to_json() + "\n")
        print(f"result JSON written to {args.json}")
    _report_cache(checkpoint)
    _finish_tracer(tracer, args.trace)
    return 0


def _cmd_faults(args) -> int:
    from repro.experiments.faults import DEFAULT_INTENSITIES, run_faults
    from repro.obs import ProgressLog

    intensities = (
        tuple(args.intensities) if args.intensities
        else ((0.0, 1.0) if args.quick else DEFAULT_INTENSITIES)
    )
    tracer = _make_tracer(args.trace, label=f"faults:{args.plan}")
    result = run_faults(
        plan_name=args.plan,
        intensities=intensities,
        rate=args.rate,
        measure_ns=msecs(args.measure_ms),
        seed=args.seed,
        log=ProgressLog(quiet=args.quiet, tracer=tracer),
        tracer=tracer,
    )
    print(result.render())
    if args.json:
        result.write_json(args.json)
        print(f"robustness metrics written to {args.json}")
    _finish_tracer(tracer, args.trace)
    return 0


def _cmd_ablation(args) -> int:
    from repro.experiments import ablations

    measure = msecs(args.measure_ms)
    policy, checkpoint = _supervise_from(args)
    if args.which == "units":
        print(ablations.run_units_ablation(measure_ns=measure).render())
    elif args.which == "toggler":
        print(ablations.run_toggler_ablation(
            measure_ns=measure, workers=args.workers,
            policy=policy, checkpoint=checkpoint).render())
    elif args.which == "exchange":
        print(ablations.run_exchange_ablation(measure_ns=measure).render())
    elif args.which == "ewma":
        print(ablations.run_granularity_ablation(measure_ns=measure).render())
    elif args.which == "aimd":
        print(ablations.run_aimd_ablation(measure_ns=measure).render())
    elif args.which == "variants":
        print(ablations.run_variant_ablation(
            measure_ns=measure, workers=args.workers,
            policy=policy, checkpoint=checkpoint).render())
    elif args.which == "timevarying":
        from repro.experiments.timevarying import run_timevarying

        print(run_timevarying().render())
    else:  # pragma: no cover - argparse restricts choices
        return 2
    _report_cache(checkpoint)
    return 0


def _cmd_profile(args) -> int:
    import json as _json
    import pathlib as _pathlib

    from repro.profiling import (
        profile_run,
        shape_config,
        validate_profile,
    )

    if args.validate is not None:
        try:
            document = _json.loads(_pathlib.Path(args.validate).read_text())
        except (OSError, ValueError) as exc:
            print(f"{args.validate}: unreadable profile JSON: {exc}",
                  file=sys.stderr)
            return 1
        problems = validate_profile(document)
        if problems:
            for problem in problems[:20]:
                print(problem, file=sys.stderr)
            return 1
        print(f"{args.validate}: repro-profile-v1 OK "
              f"({len(document['top'])} functions)")
        return 0

    config = shape_config(args.shape, measure_ms=args.measure_ms,
                          seed=args.seed)
    document = profile_run(config, shape=args.shape, top_n=args.top,
                           backend=args.backend)
    rendered = _json.dumps(document, indent=2) + "\n"
    if args.out is not None:
        target = _pathlib.Path(args.out)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(rendered)
        print(f"profile written to {args.out} "
              f"({document['events_per_sec']:,} events/sec under profiler)")
    else:
        print(rendered, end="")
    return 0


def _cmd_trace_record(args) -> int:
    from repro.obs import (
        JsonlSink,
        Tracer,
        attach_deep_tracing,
        collect_run_metrics,
        render_summary,
        summarize_records,
    )

    tracer = Tracer(sink=JsonlSink(args.out), label=args.scenario)
    holder: dict = {}

    if args.scenario == "run":
        config = BenchConfig(
            rate_per_sec=args.rate,
            nagle=args.nagle,
            seed=args.seed,
            warmup_ns=msecs(args.warmup_ms),
            measure_ns=msecs(args.measure_ms),
            fault_plan=_fault_plan_from(args),
        )

        def tweak(bed):
            holder["bed"] = bed
            if args.deep:
                attach_deep_tracing(bed, tracer)

        result = run_benchmark(config, tweak=tweak, tracer=tracer)
        registry = collect_run_metrics(holder["bed"], result=result)
        tracer.metrics_snapshot(registry.snapshot())
    elif args.scenario == "toggler":
        from repro.core.toggler import TogglerConfig
        from repro.experiments.ablations import attach_toggler
        from repro.experiments.fig4a import default_config

        config = replace(
            default_config(measure_ns=msecs(args.measure_ms)),
            rate_per_sec=args.rate,
            seed=args.seed,
        )

        def tweak(bed):
            holder["bed"] = bed
            holder["toggler"] = attach_toggler(
                bed,
                config=TogglerConfig(
                    tick_ns=msecs(4), epsilon=0.05, min_samples=2
                ),
            )
            if args.deep:
                attach_deep_tracing(bed, tracer)

        result = run_benchmark(config, tweak=tweak, tracer=tracer)
        registry = collect_run_metrics(
            holder["bed"], result=result, toggler=holder["toggler"]
        )
        tracer.metrics_snapshot(registry.snapshot())
    else:  # fig2
        from repro.experiments import run_fig2

        run_fig2(
            seeds=(args.seed,),
            measure_ns=msecs(args.measure_ms),
            tracer=tracer,
        )
    tracer.close()
    print(f"trace written to {args.out} ({tracer.emitted} records)")
    print(render_summary(summarize_records(args.out)))
    return 0


def _diagnosis_from(args):
    """A DiagnosisHook from --diagnose/--quarantine-on-diagnosis, or None."""
    if not (getattr(args, "diagnose", False)
            or getattr(args, "quarantine_on_diagnosis", False)):
        return None
    if not getattr(args, "trace", None):
        print("error: --diagnose needs --trace PATH (diagnosis reads the "
              "campaign's trace stream)", file=sys.stderr)
        raise SystemExit(2)
    from repro.diagnose import DiagnosisHook

    return DiagnosisHook(
        quarantine=getattr(args, "quarantine_on_diagnosis", False)
    )


def _report_diagnosis(diagnosis) -> None:
    """Print the campaign-wide diagnosis after a --diagnose run."""
    if diagnosis is None:
        return
    summary = diagnosis.report().summary()
    flagged = [v for v in diagnosis.verdicts if v.findings]
    print(f"diagnosis: {summary['runs']} run(s), "
          f"{summary['connections']} connection(s), "
          f"{summary['findings']} finding(s)"
          + (f" {summary['by_class']}" if summary["by_class"] else ""))
    for verdict in flagged:
        print(f"  job {verdict.index}: {verdict.describe()}")


def _add_diagnose(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--diagnose", action="store_true",
        help="run the streaming diagnosis service over the campaign's "
             "trace (requires --trace); per-job verdicts are printed, "
             "recorded as diagnose.* metrics and diagnosis.verdict trace "
             "records",
    )
    parser.add_argument(
        "--quarantine-on-diagnosis", action="store_true",
        help="with --diagnose: a pathological verdict (frozen/oscillating "
             "toggler, estimator divergence) quarantines the job instead "
             "of completing it",
    )


def _add_remedy(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--remediate", action="store_true",
        help="fire remediation playbooks on diagnosis findings and "
             "quarantines: flagged cells are re-run with their fault "
             "plan stripped (environment-vs-config root cause), "
             "watchdog quarantines retried with a relaxed budget, other "
             "quarantines re-run in isolation; prints a "
             "repro-remediation-v1 report. Never changes campaign "
             "output",
    )
    parser.add_argument(
        "--playbooks", default=None, metavar="PATH",
        help="with --remediate: a repro-remedy-config-v1 JSON naming "
             "the playbooks to run (in order) and the probe budget "
             "(see examples/remedy_playbooks.json; default: all "
             "playbooks)",
    )
    parser.add_argument(
        "--remedy-budget", type=int, default=None, metavar="N",
        help="with --remediate: cap on probe re-executions for the "
             "whole campaign (default 8; overrides --playbooks)",
    )


def _cmd_diagnose(args) -> int:
    import json as _json
    import pathlib as _pathlib

    from repro.diagnose import (
        diagnose_records,
        follow_trace,
        render_report,
        require_valid_report,
        score_report,
    )
    from repro.diagnose.scoring import render_score
    from repro.errors import DiagnosisError
    from repro.obs import read_jsonl

    if args.follow:
        def on_progress(classifier, new_records):
            summary = classifier.report().summary()
            print(f"  ... {classifier.records} records, "
                  f"{summary['runs']} run(s), "
                  f"{summary['findings']} finding(s)", file=sys.stderr)

        report = follow_trace(
            args.path,
            poll_s=args.poll,
            idle_timeout_s=args.idle_timeout,
            on_progress=on_progress if not args.quiet else None,
        )
    else:
        try:
            records = read_jsonl(args.path)
        except OSError as exc:
            print(f"{args.path}: unreadable trace: {exc}", file=sys.stderr)
            return 1
        report = diagnose_records(records)

    document = report.to_json()
    if args.validate:
        problems = []
        try:
            require_valid_report(document)
        except DiagnosisError as exc:
            problems.append(str(exc))
        if problems:
            for problem in problems:
                print(problem, file=sys.stderr)
            return 1
        print(f"{args.path}: repro-diagnosis-v1 OK "
              f"({document['summary']['runs']} runs, "
              f"{document['summary']['findings']} findings)")

    if args.json is not None:
        if args.json == "-":
            sys.stdout.write(report.to_canonical())
        else:
            target = _pathlib.Path(args.json)
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(report.to_canonical())
            print(f"diagnosis report written to {args.json}")
    elif not args.validate:
        print(render_report(report))

    status = 0
    if args.expect_clean and document["summary"]["findings"]:
        print(f"expected a clean trace but found "
              f"{document['summary']['findings']} finding(s): "
              f"{document['summary']['by_class']}", file=sys.stderr)
        status = 1
    if args.score is not None:
        try:
            truth = _json.loads(_pathlib.Path(args.score).read_text())
        except (OSError, ValueError) as exc:
            print(f"{args.score}: unreadable robustness JSON: {exc}",
                  file=sys.stderr)
            return 1
        try:
            score = score_report(report, truth.get("points", []))
        except DiagnosisError as exc:
            print(f"scoring failed: {exc}", file=sys.stderr)
            return 1
        print(render_score(score))
        if args.min_recall is not None:
            low = {
                cls: stats["recall"]
                for cls, stats in score["classes"].items()
                if stats["recall"] < args.min_recall
            }
            if low:
                print(f"recall below {args.min_recall:g}: {low}",
                      file=sys.stderr)
                status = 1
            if score["false_positives"]:
                print(f"{len(score['false_positives'])} unexplained "
                      f"finding(s)", file=sys.stderr)
                status = 1
    return status


def _cmd_trace_summarize(args) -> int:
    from repro.obs import render_summary, summarize_records

    print(render_summary(summarize_records(args.path)))
    return 0


def _cmd_trace_filter(args) -> int:
    import json as _json

    from repro.obs import filter_records

    shown = 0
    for record in filter_records(
        args.path,
        type_=args.type,
        src=args.src,
        since_ns=args.since_ns,
        until_ns=args.until_ns,
    ):
        print(_json.dumps(record, separators=(",", ":")))
        shown += 1
        if args.limit is not None and shown >= args.limit:
            break
    return 0


def _remedy_from(args):
    """A RemedyEngine from --remediate/--playbooks/--remedy-budget."""
    if not getattr(args, "remediate", False):
        return None
    from repro.remedy import DEFAULT_BUDGET, RemedyEngine, load_playbook_config

    playbooks, budget = None, DEFAULT_BUDGET
    if getattr(args, "playbooks", None):
        playbooks, budget = load_playbook_config(args.playbooks)
    if getattr(args, "remedy_budget", None) is not None:
        budget = args.remedy_budget
    return RemedyEngine(playbooks=playbooks, budget=budget)


def _report_remedy(remedy, campaign: str, spec_digest, json_path) -> None:
    """Print (and optionally write) the remediation report."""
    import pathlib as _pathlib

    from repro.remedy import render_report

    if remedy is None:
        return
    report = remedy.report(campaign, spec_digest)
    print(render_report(report))
    if json_path:
        if json_path == "-":
            sys.stdout.write(report.to_canonical())
        else:
            target = _pathlib.Path(json_path)
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(report.to_canonical())
            print(f"remediation report written to {json_path}")


def _cmd_campaign_run(args) -> int:
    import pathlib as _pathlib

    from repro.campaign import load_spec, run_spec
    from repro.errors import CampaignError, CampaignSpecError, RemedyError

    try:
        spec = load_spec(args.spec)
    except CampaignSpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.measure_ms is not None:
        base = dict(spec.base)
        base.pop("measure_ns", None)
        base["measure_ms"] = args.measure_ms
        spec = replace(spec, base=base)
    tracer = _make_tracer(args.trace, label=f"campaign:{spec.name}")
    policy, checkpoint = _supervise_from(args)
    diagnosis = _diagnosis_from(args)
    try:
        remedy = _remedy_from(args)
    except RemedyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    try:
        run = run_spec(
            spec, workers=args.workers, policy=policy,
            checkpoint=checkpoint, tracer=tracer, diagnosis=diagnosis,
            remedy=remedy,
        )
    except CampaignSpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except CampaignError as exc:
        # Quarantined cells: the campaign is a failure, but remediation
        # has already probed every quarantine — surface its verdicts
        # before exiting nonzero.
        print(f"error: {exc}", file=sys.stderr)
        _report_remedy(
            remedy, spec.name, spec.digest(),
            getattr(args, "remedy_json", None),
        )
        _finish_tracer(tracer, args.trace)
        return 1
    print(run.report.render())
    print(run.describe())
    if args.json:
        if args.json == "-":
            sys.stdout.write(run.report.to_canonical())
        else:
            target = _pathlib.Path(args.json)
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(run.report.to_canonical())
            print(f"importance report written to {args.json}")
    _report_remedy(
        remedy, spec.name, run.matrix.spec_digest,
        getattr(args, "remedy_json", None),
    )
    _report_diagnosis(diagnosis)
    _report_cache(checkpoint)
    _finish_tracer(tracer, args.trace)
    return 0


def _cmd_serve(args) -> int:
    from repro.errors import ServiceError
    from repro.service import ReproService, ServiceConfig

    config = ServiceConfig(
        spool=args.spool,
        state_dir=args.state,
        host=args.host,
        port=args.port,
        poll_s=args.poll,
        workers=args.workers,
        measure_ms=args.measure_ms,
        remediate=args.remediate,
        playbooks=args.playbooks,
        remedy_budget=args.remedy_budget,
        once=args.once,
        quiet=args.quiet,
    )
    try:
        service = ReproService(config)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    service.install_signal_handlers()
    return service.serve_forever()


def _cmd_campaign_expand(args) -> int:
    import pathlib as _pathlib

    from repro.campaign import expand, load_spec
    from repro.errors import CampaignSpecError

    try:
        matrix = expand(load_spec(args.spec))
    except CampaignSpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        rendered = matrix.to_json() + "\n"
        if args.json == "-":
            sys.stdout.write(rendered)
        else:
            target = _pathlib.Path(args.json)
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(rendered)
            print(f"run matrix written to {args.json}")
    else:
        print(f"campaign {matrix.campaign}: {len(matrix.cells)} cell(s) "
              f"(spec digest {matrix.spec_digest[:16]})")
        for cell in matrix.cells:
            print(f"  {cell.index:3d}  {cell.label}")
    return 0


def _cmd_campaign_validate(args) -> int:
    from repro.campaign import (
        IMPORTANCE_SCHEMA,
        SPEC_SCHEMA,
        expand,
        load_document,
        parse_spec,
        validate_importance_document,
    )
    from repro.errors import CampaignSpecError

    try:
        document = load_document(args.path)
    except CampaignSpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    schema = document.get("schema", SPEC_SCHEMA)
    if schema == IMPORTANCE_SCHEMA:
        problems = validate_importance_document(document)
        if problems:
            for problem in problems[:20]:
                print(f"{args.path}: {problem}", file=sys.stderr)
            return 1
        print(f"{args.path}: {IMPORTANCE_SCHEMA} OK "
              f"({len(document['components'])} component(s), "
              f"{document['cells']} cells)")
        return 0
    try:
        matrix = expand(parse_spec(document))
    except CampaignSpecError as exc:
        print(f"{args.path}: {exc}", file=sys.stderr)
        return 1
    print(f"{args.path}: {SPEC_SCHEMA} OK ({len(matrix.cells)} cell(s))")
    return 0


def _cmd_trace_validate(args) -> int:
    from repro.obs import read_jsonl, validate_stream

    records = read_jsonl(args.path)
    problems = validate_stream(records)
    if problems:
        for problem in problems[:20]:
            print(problem, file=sys.stderr)
        if len(problems) > 20:
            print(f"... and {len(problems) - 20} more", file=sys.stderr)
        return 1
    print(f"{args.path}: {len(records)} records, schema OK")
    return 0


#: One line per subcommand, rendered into ``repro --help``'s epilog.
#: A test asserts every registered subcommand appears here, so adding a
#: command without a summary fails fast.
_COMMAND_SUMMARY: tuple[tuple[str, str], ...] = (
    ("fig1", "analytic batching model (Figure 1)"),
    ("fig2", "VM client flip at 20 kRPS (Figure 2)"),
    ("fig4a", "SET 16KiB load sweep (Figure 4a)"),
    ("fig4b", "95:5 SET:GET mix sweep (Figure 4b)"),
    ("run", "one benchmark run with explicit knobs"),
    ("faults", "chaos sweep: robustness vs fault intensity"),
    ("fanin", "N clients -> 1 server, optionally sharded"),
    ("bottleneck", "N flows x 1 shared link, windowed cross-shard"),
    ("ablation", "run one named ablation study"),
    ("profile", "cProfile a bench shape (repro-profile-v1)"),
    ("diagnose", "fault diagnosis over a trace (repro-diagnosis-v1)"),
    ("trace", "record/summarize/filter/validate repro-trace-v1"),
    ("campaign", "declarative ablation campaigns (repro-campaign-v1)"),
    ("serve", "long-running campaign service over a spool directory"),
)


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    width = max(len(name) for name, _ in _COMMAND_SUMMARY)
    epilog = "commands:\n" + "\n".join(
        f"  {name:<{width}}  {summary}" for name, summary in _COMMAND_SUMMARY
    ) + "\n\nrun `repro <command> --help` for each command's options"
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Batching with End-to-End Performance Estimation — "
                    "experiment runner",
        epilog=epilog,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_fig1 = sub.add_parser("fig1", help="Figure 1: analytic batching model")
    p_fig1.add_argument("--c", type=float, nargs="+", default=[1.0, 3.0, 5.0],
                        help="client costs to evaluate")
    p_fig1.set_defaults(func=_cmd_fig1)

    p_fig2 = sub.add_parser("fig2", help="Figure 2: VM client flip at 20 kRPS")
    p_fig2.add_argument("--seeds", type=int, nargs="+", default=[1, 2, 3])
    p_fig2.add_argument("--trace", default=None, metavar="PATH",
                        help="record the campaign as repro-trace-v1 JSONL "
                             "(forces serial execution)")
    _add_measure(p_fig2, 150)
    _add_workers(p_fig2)
    _add_supervise(p_fig2)
    _add_diagnose(p_fig2)
    p_fig2.set_defaults(func=_cmd_fig2)

    for name, helptext, fn in (
        ("fig4a", "Figure 4a: SET 16KiB load sweep", _cmd_fig4a),
        ("fig4b", "Figure 4b: 95:5 SET:GET mix", _cmd_fig4b),
    ):
        p = sub.add_parser(name, help=helptext)
        p.add_argument("--rates", type=float, nargs="+", default=None)
        p.add_argument("--quick", action="store_true",
                       help="coarse grid for a fast look")
        _add_measure(p, 100)
        _add_workers(p)
        _add_supervise(p)
        p.set_defaults(func=fn)

    p_run = sub.add_parser("run", help="one benchmark run")
    p_run.add_argument("--rate", type=float, required=True)
    p_run.add_argument("--nagle", action="store_true")
    p_run.add_argument("--nagle-mode", choices=["classic", "minshall"],
                       default="classic")
    p_run.add_argument("--autocork", action="store_true")
    p_run.add_argument("--seed", type=int, default=1)
    p_run.add_argument("--set-ratio", type=float, default=1.0)
    p_run.add_argument("--value-bytes", type=int, default=16 * 1024)
    p_run.add_argument("--warmup-ms", type=int, default=40)
    p_run.add_argument("--client-cpu-factor", type=float, default=1.0,
                       help="VM-style client cost multiplier (Figure 2)")
    p_run.add_argument("--connections", type=int, default=1)
    p_run.add_argument("--dump-counters", action="store_true",
                       help="print the full counter dump (ethtool analogue)")
    p_run.add_argument("--fault-plan", default=None,
                       help="inject a named fault plan (see `repro faults`)")
    p_run.add_argument("--fault-intensity", type=float, default=1.0,
                       help="intensity multiplier for --fault-plan "
                            "(default 1.0; 0 disables)")
    p_run.add_argument("--min-rto-ms", type=int, default=200,
                       help="TCP retransmission-timeout floor (default "
                            "200, Linux-like; lossy fault plans want ~5 "
                            "or one burst stalls past the whole window)")
    p_run.add_argument("--trace", default=None, metavar="PATH",
                       help="record a repro-trace-v1 JSONL of the run")
    p_run.add_argument("--metrics", default=None, metavar="PATH",
                       help="write a repro-metrics-v1 JSON snapshot")
    _add_measure(p_run, 120)
    _add_supervise(p_run)
    _add_backend(p_run)
    p_run.set_defaults(func=_cmd_run)

    p_faults = sub.add_parser(
        "faults",
        help="chaos sweep: estimator/toggler robustness vs fault intensity",
    )
    from repro.faults import FAULT_PLANS

    p_faults.add_argument("--plan", choices=sorted(FAULT_PLANS),
                          default="mixed")
    p_faults.add_argument("--intensities", type=float, nargs="+", default=None,
                          help="intensity multipliers (0 = fault-free)")
    p_faults.add_argument("--rate", type=float, default=15_000.0)
    p_faults.add_argument("--seed", type=int, default=1)
    p_faults.add_argument("--json", default=None, metavar="PATH",
                          help="write the repro-robustness-v1 metrics "
                               "JSON to this path")
    p_faults.add_argument("--quick", action="store_true",
                          help="two intensities only, for CI smoke")
    p_faults.add_argument("--quiet", action="store_true",
                          help="suppress per-intensity progress on stderr")
    p_faults.add_argument("--trace", default=None, metavar="PATH",
                          help="record the sweep as repro-trace-v1 JSONL")
    _add_measure(p_faults, 300)
    p_faults.set_defaults(func=_cmd_faults)

    p_fanin = sub.add_parser(
        "fanin",
        help="A10 fan-in: N clients -> 1 server, optionally sharded "
             "across workers",
    )
    p_fanin.add_argument("--clients", type=int, default=4,
                         help="number of client machines (default 4)")
    p_fanin.add_argument("--rate", type=float, default=48_000.0,
                         help="total offered load across all clients "
                              "(default 48000)")
    p_fanin.add_argument("--nagle", action="store_true",
                         help="static Nagle on for every connection")
    p_fanin.add_argument("--seed", type=int, default=1)
    p_fanin.add_argument("--warmup-ms", type=int, default=40)
    p_fanin.add_argument("--toggler", action="store_true",
                         help="attach the spanning dynamic toggler "
                              "(monolithic mode only)")
    p_fanin.add_argument(
        "--shards", type=_shards_arg, default=None, metavar="N",
        help="run the decomposed model: each connection as an isolated "
             "sub-simulation with its own server replica, partitioned "
             "into N shards and merged deterministically; output is "
             "byte-identical for every N (including N=1). 'auto' uses "
             "one shard per CPU. Omit for the monolithic shared-server "
             "model",
    )
    p_fanin.add_argument("--json", default=None, metavar="PATH",
                         help="write the result as canonical unversioned "
                              "JSON (byte-diffable across shard/worker "
                              "counts)")
    p_fanin.add_argument("--trace", default=None, metavar="PATH",
                         help="record the campaign as repro-trace-v1 JSONL "
                              "(forces serial execution)")
    _add_measure(p_fanin, 150)
    _add_workers(p_fanin)
    _add_supervise(p_fanin)
    _add_backend(p_fanin)
    p_fanin.set_defaults(func=_cmd_fanin)

    p_bottleneck = sub.add_parser(
        "bottleneck",
        help="shared-bottleneck contention: N flows x one link, run on "
             "the conservative windowed cross-shard engine",
    )
    p_bottleneck.add_argument("--flows", type=int, default=4,
                              help="number of sender/receiver pairs "
                                   "contending on the link (default 4)")
    p_bottleneck.add_argument("--rate", type=float, default=8_000.0,
                              help="total offered load across all flows "
                                   "(default 8000)")
    p_bottleneck.add_argument("--nagle", action="store_true",
                              help="static Nagle on for every connection")
    p_bottleneck.add_argument("--seed", type=int, default=1)
    p_bottleneck.add_argument("--warmup-ms", type=int, default=40)
    p_bottleneck.add_argument(
        "--shards", type=_shards_arg, default=1, metavar="K",
        help="partition the flows + fabric components into K shards "
             "advancing in lock-stepped lookahead windows; output is "
             "byte-identical for every K (including K=1). 'auto' uses "
             "one shard per CPU",
    )
    p_bottleneck.add_argument("--json", default=None, metavar="PATH",
                              help="write the result as canonical "
                                   "unversioned JSON (byte-diffable "
                                   "across shard/worker counts)")
    p_bottleneck.add_argument("--trace", default=None, metavar="PATH",
                              help="record shard.window barrier records "
                                   "as repro-trace-v1 JSONL")
    _add_measure(p_bottleneck, 150)
    _add_workers(p_bottleneck)
    _add_supervise(p_bottleneck)
    p_bottleneck.set_defaults(func=_cmd_bottleneck)

    p_ablation = sub.add_parser("ablation", help="run one ablation by name")
    p_ablation.add_argument(
        "which",
        choices=["units", "toggler", "exchange", "ewma", "aimd", "variants",
                 "timevarying"],
    )
    _add_measure(p_ablation, 150)
    _add_workers(p_ablation)
    _add_supervise(p_ablation)
    p_ablation.set_defaults(func=_cmd_ablation)

    p_profile = sub.add_parser(
        "profile",
        help="cProfile one bench shape, emitting repro-profile-v1 JSON",
    )
    p_profile.add_argument(
        "--shape", choices=["fig2", "faults"], default="fig2",
        help="what to profile: the Figure 2 VM point or the mixed-faults "
             "run (default fig2)",
    )
    p_profile.add_argument("--top", type=int, default=25,
                           help="functions to keep, by cumulative time "
                                "(default 25)")
    p_profile.add_argument("--seed", type=int, default=None)
    p_profile.add_argument("--out", default=None, metavar="PATH",
                           help="write the JSON here instead of stdout")
    p_profile.add_argument(
        "--validate", default=None, metavar="PATH",
        help="validate an existing repro-profile-v1 JSON instead of "
             "profiling (used by the CI docs/schema check)",
    )
    _add_measure(p_profile, 80)
    _add_backend(p_profile)
    p_profile.set_defaults(func=_cmd_profile)

    p_diagnose = sub.add_parser(
        "diagnose",
        help="streaming fault diagnosis over a repro-trace-v1 stream: "
             "per-connection limit labels and typed misbehavior findings",
    )
    p_diagnose.add_argument("path", help="JSONL trace file (a finished "
                                         "trace, or a growing one with "
                                         "--follow)")
    p_diagnose.add_argument("--json", default=None, metavar="PATH",
                            help="write the repro-diagnosis-v1 report as "
                                 "canonical JSON ('-' for stdout)")
    p_diagnose.add_argument("--follow", action="store_true",
                            help="tail a live trace: poll for appended "
                                 "records and diagnose as they arrive, "
                                 "finishing after --idle-timeout of silence")
    p_diagnose.add_argument("--poll", type=float, default=0.5,
                            metavar="SECONDS",
                            help="--follow poll interval (default 0.5)")
    p_diagnose.add_argument("--idle-timeout", type=float, default=10.0,
                            metavar="SECONDS",
                            help="--follow gives up after this much "
                                 "silence (default 10)")
    p_diagnose.add_argument("--quiet", action="store_true",
                            help="suppress --follow progress on stderr")
    p_diagnose.add_argument("--validate", action="store_true",
                            help="check the generated report against the "
                                 "repro-diagnosis-v1 schema instead of "
                                 "printing it")
    p_diagnose.add_argument("--expect-clean", action="store_true",
                            help="exit 1 if the diagnosis contains any "
                                 "finding (golden-trace regression gate)")
    p_diagnose.add_argument("--score", default=None, metavar="PATH",
                            help="score findings against the labeled "
                                 "fault episodes in a repro-robustness-v1 "
                                 "JSON (from `repro faults --json`)")
    p_diagnose.add_argument("--min-recall", type=float, default=None,
                            help="with --score: exit 1 if any class's "
                                 "recall is below this, or any finding "
                                 "is unexplained")
    p_diagnose.set_defaults(func=_cmd_diagnose)

    p_trace = sub.add_parser(
        "trace",
        help="record, summarize, filter, or validate repro-trace-v1 streams",
    )
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)

    p_record = trace_sub.add_parser(
        "record", help="run a traced scenario, writing a JSONL stream"
    )
    p_record.add_argument(
        "scenario", choices=["run", "toggler", "fig2"],
        help="what to trace: one benchmark run, a dynamic-toggling run, "
             "or the full fig2 campaign",
    )
    p_record.add_argument("--out", required=True, metavar="PATH",
                          help="JSONL output path")
    p_record.add_argument("--rate", type=float, default=20_000.0,
                          help="offered load (run/toggler; default 20000)")
    p_record.add_argument("--nagle", action="store_true",
                          help="static Nagle on (run scenario)")
    p_record.add_argument("--seed", type=int, default=1)
    p_record.add_argument("--warmup-ms", type=int, default=40)
    p_record.add_argument("--fault-plan", default=None,
                          help="inject a named fault plan (run scenario)")
    p_record.add_argument("--fault-intensity", type=float, default=1.0)
    p_record.add_argument("--deep", action="store_true",
                          help="also trace per-socket protocol hooks "
                               "(send/segment/ack/read), many records")
    _add_measure(p_record, 120)
    p_record.set_defaults(func=_cmd_trace_record)

    p_summarize = trace_sub.add_parser(
        "summarize", help="counts by record type and source, time span"
    )
    p_summarize.add_argument("path", help="JSONL trace file")
    p_summarize.set_defaults(func=_cmd_trace_summarize)

    p_filter = trace_sub.add_parser(
        "filter", help="print records matching type/src/time criteria"
    )
    p_filter.add_argument("path", help="JSONL trace file")
    p_filter.add_argument("--type", default=None,
                          help="record type, e.g. toggler.decision")
    p_filter.add_argument("--src", default=None,
                          help="record source, e.g. redis.0.client")
    p_filter.add_argument("--since-ns", type=int, default=None)
    p_filter.add_argument("--until-ns", type=int, default=None)
    p_filter.add_argument("--limit", type=int, default=None,
                          help="stop after this many records")
    p_filter.set_defaults(func=_cmd_trace_filter)

    p_validate = trace_sub.add_parser(
        "validate", help="check a stream against the repro-trace-v1 schema"
    )
    p_validate.add_argument("path", help="JSONL trace file")
    p_validate.set_defaults(func=_cmd_trace_validate)

    p_campaign = sub.add_parser(
        "campaign",
        help="declarative ablation campaigns: run, expand, or validate a "
             "repro-campaign-v1 spec (see docs/CAMPAIGNS.md)",
    )
    campaign_sub = p_campaign.add_subparsers(
        dest="campaign_command", required=True
    )

    p_crun = campaign_sub.add_parser(
        "run",
        help="execute a spec's full run matrix and print the "
             "component-importance leaderboard",
    )
    p_crun.add_argument("spec", help="campaign spec file (JSON always; "
                                     ".yaml/.yml when pyyaml is installed)")
    p_crun.add_argument("--json", default=None, metavar="PATH",
                        help="write the repro-importance-v1 report as "
                             "canonical JSON ('-' for stdout); byte-"
                             "identical across reruns of the same spec")
    p_crun.add_argument("--trace", default=None, metavar="PATH",
                        help="record the campaign as repro-trace-v1 JSONL "
                             "(forces serial execution)")
    p_crun.add_argument("--measure-ms", type=int, default=None,
                        help="override the spec's measurement window in "
                             "simulated ms (replaces base measure_ms/"
                             "measure_ns; default: use the spec's)")
    _add_workers(p_crun)
    _add_supervise(p_crun)
    _add_diagnose(p_crun)
    _add_remedy(p_crun)
    p_crun.add_argument("--remedy-json", default=None, metavar="PATH",
                        help="with --remediate: write the "
                             "repro-remediation-v1 report as canonical "
                             "JSON ('-' for stdout)")
    p_crun.set_defaults(func=_cmd_campaign_run)

    p_cexpand = campaign_sub.add_parser(
        "expand",
        help="print a spec's deterministic run matrix without executing it",
    )
    p_cexpand.add_argument("spec", help="campaign spec file")
    p_cexpand.add_argument("--json", default=None, metavar="PATH",
                           help="write the matrix as canonical JSON ('-' "
                                "for stdout) instead of the cell listing")
    p_cexpand.set_defaults(func=_cmd_campaign_expand)

    p_cvalidate = campaign_sub.add_parser(
        "validate",
        help="check a repro-campaign-v1 spec or repro-importance-v1 "
             "report (auto-detected by its schema field)",
    )
    p_cvalidate.add_argument("path", help="spec or report file")
    p_cvalidate.set_defaults(func=_cmd_campaign_validate)

    p_serve = sub.add_parser(
        "serve",
        help="long-running campaign service: watch a spool directory "
             "for repro-campaign-v1 specs, execute each through the "
             "supervised engine with checkpoints, and expose read-only "
             "HTTP status (see docs/SERVICE.md)",
    )
    p_serve.add_argument("--spool", required=True, metavar="DIR",
                         help="directory watched for campaign specs "
                              "(.json/.yaml/.yml; created if missing)")
    p_serve.add_argument("--state", required=True, metavar="DIR",
                         help="service state directory: the "
                              "repro-service-v1 journal, the heartbeat "
                              "file, and one checkpointed subdirectory "
                              "per campaign")
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="HTTP status bind address (default "
                              "127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=0,
                         help="HTTP status port (default 0 = ephemeral; "
                              "the bound port is in the heartbeat file)")
    p_serve.add_argument("--poll", type=float, default=0.5,
                         metavar="SECONDS",
                         help="spool scan interval (default 0.5)")
    p_serve.add_argument("--measure-ms", type=int, default=None,
                         help="override every spec's measurement window "
                              "in simulated ms (part of the campaign's "
                              "identity: changing it is a new campaign)")
    p_serve.add_argument("--once", action="store_true",
                         help="process the spool's current contents, "
                              "then exit instead of watching")
    p_serve.add_argument("--quiet", action="store_true",
                         help="suppress progress lines on stderr")
    _add_workers(p_serve)
    _add_remedy(p_serve)
    p_serve.set_defaults(func=_cmd_serve)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a consumer that closed early (e.g. `head`).
        import os

        os.close(sys.stdout.fileno())
        return 0
    except KeyboardInterrupt:
        # ^C mid-campaign: no traceback.  The checkpoint store fsyncs
        # every record as it lands, so everything completed before the
        # interrupt is durable and a rerun resumes from it.
        print("\ninterrupted", file=sys.stderr)
        store = getattr(args, "resume", None) or getattr(
            args, "cache_dir", None
        )
        if store:
            print(
                f"hint: completed runs are checkpointed in {store}; "
                f"re-run the same command to resume from them",
                file=sys.stderr,
            )
        return 130


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
