"""AIMD batch-limit adaptation (paper §5, "Better Batching Heuristics").

Instead of toggling an ad-hoc heuristic on and off, adjust a *batching
limit* gradually — the control shape TCP congestion control uses to
adapt to changing conditions [Chiu & Jain], applied to the batching
budget:

- while end-to-end latency violates the objective, batching relieves the
  overheads that caused the violation: **additively increase** the batch
  floor (hold partial segments until more bytes accumulate, amortizing
  per-delivery costs);
- while latency is comfortably under the objective, batching only adds
  delay: **multiplicatively decay** the floor back toward immediate
  transmission.

The result is the classic AIMD sawtooth around the smallest batching
budget that keeps the system under its latency target — batch as little
as possible, but as much as necessary.

The controlled knob is ``min_batch_bytes`` on
:class:`~repro.tcp.nagle.BatchingHeuristics`: a partial segment is held
until at least that many bytes are queued (0 disables holding beyond
Nagle/auto-corking).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.ewma import Ewma
from repro.core.policy import PerfSample
from repro.errors import EstimationError
from repro.units import msecs


@dataclass(frozen=True)
class AimdConfig:
    """AIMD controller tunables.

    ``latency_target_ns`` is the objective (e.g. the 500 µs SLO, or a
    tighter internal target).  ``increase_bytes`` is the additive step
    applied per tick while the target is violated; ``decrease_factor``
    the multiplicative decay applied while comfortably under it.
    ``comfort_fraction`` defines "comfortably": decay only below
    ``comfort_fraction * latency_target_ns``, leaving a hysteresis band
    that damps oscillation around the target.
    """

    tick_ns: int = msecs(2)
    latency_target_ns: int = 500_000
    increase_bytes: int = 512
    decrease_factor: float = 0.7
    comfort_fraction: float = 0.5
    max_batch_bytes: int = 64 * 1024
    alpha: float = 0.3

    def validate(self) -> None:
        """Raise on out-of-range parameters."""
        if self.tick_ns <= 0:
            raise EstimationError(f"tick must be positive: {self.tick_ns}")
        if self.latency_target_ns <= 0:
            raise EstimationError("latency target must be positive")
        if self.increase_bytes <= 0:
            raise EstimationError("additive increase must be positive")
        if not 0.0 < self.decrease_factor < 1.0:
            raise EstimationError(
                f"decrease factor must be in (0,1): {self.decrease_factor}"
            )
        if not 0.0 < self.comfort_fraction <= 1.0:
            raise EstimationError(
                f"comfort fraction must be in (0,1]: {self.comfort_fraction}"
            )


class AimdBatchLimiter:
    """Gradually adapts a byte batching floor to a latency target."""

    def __init__(
        self,
        sim,
        sample_fn: Callable[[], PerfSample | None],
        apply_fn: Callable[[int], None],
        config: AimdConfig | None = None,
    ):
        self._sim = sim
        self._sample_fn = sample_fn
        self._apply_fn = apply_fn
        self.config = config or AimdConfig()
        self.config.validate()
        self.batch_bytes = 0
        self._latency = Ewma(self.config.alpha)
        self.history: list[tuple[int, int, float | None]] = []
        self._timer = None

    def start(self) -> None:
        """Apply the zero floor and begin ticking."""
        self._apply_fn(self.batch_bytes)
        self._timer = self._sim.call_after(self.config.tick_ns, self._tick)

    def stop(self) -> None:
        """Cancel the tick timer."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _tick(self) -> None:
        sample = self._sample_fn()
        if sample is not None and sample.latency_ns is not None:
            self._latency.update(sample.latency_ns)
            self._adjust()
        self.history.append(
            (self._sim.now, self.batch_bytes, self._latency.mean)
        )
        self._timer = self._sim.call_after(self.config.tick_ns, self._tick)

    def _adjust(self) -> None:
        latency = self._latency.mean
        if latency is None:
            return
        if latency > self.config.latency_target_ns:
            # Under pressure: batch more to amortize overheads.
            self.batch_bytes = min(
                self.config.max_batch_bytes,
                self.batch_bytes + self.config.increase_bytes,
            )
        elif latency < self.config.comfort_fraction * self.config.latency_target_ns:
            # Comfortable: decay toward immediate transmission.
            self.batch_bytes = int(self.batch_bytes * self.config.decrease_factor)
        self._apply_fn(self.batch_bytes)
