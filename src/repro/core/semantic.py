"""Bridging the semantic gap: message-unit adapters (paper §3.3).

Applications perceive performance in *requests and responses*; the kernel
sees bytes and packets.  The paper proposes a ladder of approximations:

1. **bytes** — what the prototype uses (socket byte queues exist
   already); accurate only when requests and responses have similar
   sizes (Figure 4a vs. 4b).
2. **packets** — similar limits, demonstrated "similarly limited" (§3.4).
3. **send syscalls** — each ``send()`` buffer approximates one message;
   reasonable for many request/response workloads.
4. **hints** — the application tells the truth via
   ``create``/``complete`` (:mod:`repro.core.hints`); exact by
   construction.

Each adapter here is a :class:`~repro.tcp.instrumentation.SocketInstrument`
maintaining the paper's three queues (unacked / unread / ackdelay) in its
own unit, attached to a socket via :func:`attach_units`.

A *unit boundary* is the stream offset at which a unit ends.  A unit
"leaves" the unacked queue when its last byte is acked, "enters" unread
when its last byte arrives, etc.  Partially progressed units therefore
count as still queued — matching how an application perceives an
incomplete message (useless until whole).
"""

from __future__ import annotations

from collections import deque

from repro.core.qstate import QueueState
from repro.errors import EstimationError
from repro.tcp.instrumentation import SocketInstrument


class _BoundaryCounter:
    """Counts unit boundaries crossed by an advancing stream offset."""

    __slots__ = ("_boundaries",)

    def __init__(self):
        self._boundaries: deque[int] = deque()

    def add_boundary(self, end_offset: int) -> None:
        if self._boundaries and end_offset <= self._boundaries[-1]:
            raise EstimationError(
                f"boundary {end_offset} not beyond {self._boundaries[-1]}"
            )
        self._boundaries.append(end_offset)

    def crossed(self, offset: int) -> int:
        """Pop and count boundaries at or before ``offset``."""
        count = 0
        while self._boundaries and self._boundaries[0] <= offset:
            self._boundaries.popleft()
            count += 1
        return count


class MessageUnits(SocketInstrument):
    """Base adapter: three queue states in some message unit.

    Subclasses decide what constitutes a unit by feeding boundary
    offsets; this base handles the queue-state mechanics.  Receiver-side
    boundaries are learned from ``on_arrived`` consultations of the
    sender's boundary declarations, which subclasses provide by sharing
    the boundary source between the two endpoints' adapters (see
    :func:`attach_units`).
    """

    unit_name = "units"

    def __init__(self, clock):
        self.qs_unacked = QueueState(clock)
        self.qs_unread = QueueState(clock)
        self.qs_ackdelay = QueueState(clock)
        # Sender side: units awaiting full acknowledgment.
        self._ack_boundaries = _BoundaryCounter()
        # Receiver side: units awaiting arrival completion / read / ack.
        self._arrive_boundaries = _BoundaryCounter()
        self._read_boundaries = _BoundaryCounter()
        self._ack_sent_boundaries = _BoundaryCounter()
        self._send_offset = 0
        self.peer: "MessageUnits | None" = None

    # ------------------------------------------------------------------
    # Unit definition (sender side).
    # ------------------------------------------------------------------

    def declare_sent_unit(self, end_offset: int) -> None:
        """A unit of ours ends at ``end_offset``: it enters unacked and
        is announced to the peer's receive-side boundary trackers."""
        self.qs_unacked.track(1)
        self._ack_boundaries.add_boundary(end_offset)
        if self.peer is not None:
            self.peer._arrive_boundaries.add_boundary(end_offset)
            self.peer._read_boundaries.add_boundary(end_offset)
            self.peer._ack_sent_boundaries.add_boundary(end_offset)

    # ------------------------------------------------------------------
    # Socket hooks.
    # ------------------------------------------------------------------

    def on_acked(self, new_snd_una: int) -> None:
        done = self._ack_boundaries.crossed(new_snd_una)
        if done:
            self.qs_unacked.track(-done)

    def on_arrived(self, new_rcv_nxt: int) -> None:
        done = self._arrive_boundaries.crossed(new_rcv_nxt)
        if done:
            self.qs_unread.track(done)
            self.qs_ackdelay.track(done)

    def on_read(self, new_read_seq: int) -> None:
        done = self._read_boundaries.crossed(new_read_seq)
        if done:
            self.qs_unread.track(-done)

    def on_ack_sent(self, acked_upto: int) -> None:
        done = self._ack_sent_boundaries.crossed(acked_upto)
        if done:
            self.qs_ackdelay.track(-done)


class SyscallUnits(MessageUnits):
    """One send() buffer = one unit (the paper's 'next step', §3.3)."""

    unit_name = "syscalls"

    def on_send(self, nbytes: int) -> None:
        self._send_offset += nbytes
        self.declare_sent_unit(self._send_offset)


class PacketUnits(MessageUnits):
    """One transmitted (super-)segment = one unit (§3.4's alternative)."""

    unit_name = "packets"

    def on_segment_sent(self, seq: int, nbytes: int) -> None:
        end = seq + nbytes
        if end > self._send_offset:
            self._send_offset = end
            self.declare_sent_unit(end)


class ByteUnits(MessageUnits):
    """Bytes-as-units adapter.

    The socket's built-in byte queues already provide this; the adapter
    exists so unit-comparison experiments can treat all granularities
    uniformly.  Every byte is a unit, tracked in bulk (no per-byte
    boundary bookkeeping).
    """

    unit_name = "bytes"

    def on_send(self, nbytes: int) -> None:
        self.qs_unacked.track(nbytes)
        self._send_offset += nbytes

    def on_acked(self, new_snd_una: int) -> None:
        delta = new_snd_una - getattr(self, "_acked_upto", 0)
        self._acked_upto = new_snd_una
        if delta > 0:
            self.qs_unacked.track(-delta)

    def on_arrived(self, new_rcv_nxt: int) -> None:
        delta = new_rcv_nxt - getattr(self, "_arrived_upto", 0)
        self._arrived_upto = new_rcv_nxt
        if delta > 0:
            self.qs_unread.track(delta)
            self.qs_ackdelay.track(delta)

    def on_read(self, new_read_seq: int) -> None:
        delta = new_read_seq - getattr(self, "_read_upto", 0)
        self._read_upto = new_read_seq
        if delta > 0:
            self.qs_unread.track(-delta)

    def on_ack_sent(self, acked_upto: int) -> None:
        delta = acked_upto - getattr(self, "_ack_sent_upto", 0)
        self._ack_sent_upto = acked_upto
        if delta > 0:
            self.qs_ackdelay.track(-delta)


class HintUnits(MessageUnits):
    """Application-hinted units (§3.3): boundaries declared explicitly.

    The application calls :meth:`mark_message_end` when it finishes
    writing one logical request/response, regardless of how many send
    syscalls that took.  Note this adapter tracks the *socket-level*
    queues in hint units; the even simpler single-logical-queue hint path
    is :class:`repro.core.hints.HintSession`.
    """

    unit_name = "hints"

    def on_send(self, nbytes: int) -> None:
        self._send_offset += nbytes

    def mark_message_end(self) -> None:
        """Declare that the bytes written so far complete one message."""
        self.declare_sent_unit(self._send_offset)


def attach_units(
    sock_a, sock_b, units_cls: type[MessageUnits]
) -> tuple[MessageUnits, MessageUnits]:
    """Attach a unit adapter to both endpoints of a connection.

    Each endpoint gets an adapter; the pair is cross-linked so sender
    boundary declarations feed the peer's receive-side trackers (the
    kernel equivalent: both stacks count the same on-the-wire units).
    """
    unit_a = units_cls(sock_a.host.clock)
    unit_b = units_cls(sock_b.host.clock)
    unit_a.peer = unit_b
    unit_b.peer = unit_a
    sock_a.instruments.append(unit_a)
    sock_b.instruments.append(unit_b)
    return unit_a, unit_b
