"""The paper's primary contribution.

This package implements §3 of *Batching with End-to-End Performance
Estimation* (HotOS'25):

- :mod:`~repro.core.qstate` — the 4-tuple queue state and the ``TRACK``
  update procedure (Algorithm 1).
- :mod:`~repro.core.littles_law` — ``GETAVGS`` (Algorithm 2): average
  occupancy, throughput and queuing delay between two snapshots.
- :mod:`~repro.core.estimator` — combining the three TCP queue delays
  (unacked, unread, ackdelay) into an end-to-end latency estimate (§3.2).
- :mod:`~repro.core.exchange` — the peer metadata exchange: 36-byte
  payloads of three 3-tuples, wrap-safe 32-bit wire counters (§3.2, §5).
- :mod:`~repro.core.hints` — the cooperative-application ``create``/
  ``complete`` hint API (§3.3).
- :mod:`~repro.core.semantic` — message-unit adapters (bytes, packets,
  syscalls, hints) bridging the kernel/application semantic gap (§3.3).
- :mod:`~repro.core.ewma`, :mod:`~repro.core.policy`,
  :mod:`~repro.core.toggler`, :mod:`~repro.core.aimd` — smoothing,
  throughput/latency trade-off policies, the ε-greedy dynamic batching
  toggler, and the AIMD batch-limit controller (§5).
"""

from repro.core.aimd import AimdBatchLimiter
from repro.core.estimator import E2EEstimator, EstimateSample, QueueDelays
from repro.core.ewma import Ewma
from repro.core.exchange import MetadataExchange, WirePeerState, WireQueueState
from repro.core.hints import HintSession
from repro.core.littles_law import QueueAverages, get_avgs, try_get_avgs
from repro.core.policy import (
    BatchingPolicy,
    LatencyFirstPolicy,
    PerfSample,
    ThroughputUnderSloPolicy,
)
from repro.core.qstate import QueueSnapshot, QueueState
from repro.core.semantic import (
    ByteUnits,
    HintUnits,
    MessageUnits,
    PacketUnits,
    SyscallUnits,
)
from repro.core.toggler import NagleToggler, TogglerConfig

__all__ = [
    "AimdBatchLimiter",
    "BatchingPolicy",
    "ByteUnits",
    "E2EEstimator",
    "EstimateSample",
    "Ewma",
    "HintSession",
    "HintUnits",
    "LatencyFirstPolicy",
    "MessageUnits",
    "MetadataExchange",
    "NagleToggler",
    "PacketUnits",
    "PerfSample",
    "QueueAverages",
    "QueueDelays",
    "QueueSnapshot",
    "QueueState",
    "SyscallUnits",
    "ThroughputUnderSloPolicy",
    "TogglerConfig",
    "WirePeerState",
    "WireQueueState",
    "get_avgs",
    "try_get_avgs",
]
