"""Exponentially weighted moving averages (paper §5, toggling granularity).

The toggler smooths noisy per-tick estimates with an EWMA before
comparing modes.  Implemented incrementally (one multiply-add per
update), following the approach the paper cites for online computation
of weighted mean and variance [Finch 2009]: the variance accumulator
lets callers gauge how settled an estimate is.
"""

from __future__ import annotations

import math

from repro.errors import EstimationError


class Ewma:
    """Incremental exponentially weighted mean and variance."""

    def __init__(self, alpha: float):
        if not 0.0 < alpha <= 1.0:
            raise EstimationError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self.mean: float | None = None
        self._variance = 0.0
        self.updates = 0

    def update(self, value: float) -> float:
        """Fold in one observation; returns the new mean."""
        self.updates += 1
        if self.mean is None:
            self.mean = value
            return self.mean
        diff = value - self.mean
        increment = self.alpha * diff
        self.mean += increment
        # Finch's incremental weighted variance.
        self._variance = (1.0 - self.alpha) * (self._variance + diff * increment)
        return self.mean

    @property
    def variance(self) -> float:
        """Exponentially weighted variance of observations."""
        return self._variance

    @property
    def stddev(self) -> float:
        """Square root of :attr:`variance`."""
        return math.sqrt(self._variance)

    @property
    def initialized(self) -> bool:
        """Whether at least one observation was folded in."""
        return self.mean is not None

    def reset(self) -> None:
        """Forget all history."""
        self.mean = None
        self._variance = 0.0
        self.updates = 0
