"""Peer metadata exchange (paper §3.2 wire format, §5 exchange policy).

Each endpoint occasionally shares its three queue states with its peer.
Per the paper, a shared state is three 3-tuples — (integral, total, time)
for the unacked, unread and ackdelay queues — at **4 bytes per counter**,
i.e. 36 bytes per exchange.  32-bit counters wrap, so this module
implements the scaled, wrap-safe wire representation:

- time is carried in microseconds modulo 2³² (wraps every ~71 minutes);
- totals are carried in queue units modulo 2³²;
- integrals are carried in (unit·µs) >> ``integral_shift`` modulo 2³².

Deltas between successive exchanges unwrap correctly as long as less
than 2³² of progress happens between them — the receiver maintains
monotone unwrapped counters per queue.

Exchange cadence (§5): a fixed period, plus an on-demand flag — Little's
law estimates stay accurate regardless of when snapshots are taken, so
the cadence trades freshness against header bytes, nothing else.
Options ride outgoing segments (the TCP-option header-extension model);
an endpoint that sends nothing shares nothing, exactly as on the wire.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.core.qstate import QueueSnapshot, QueueState
from repro.errors import EstimationError
from repro.units import msecs

_WIRE_MOD = 1 << 32
_STRUCT = struct.Struct("<III")

OPTION_E2E = "e2e"
OPTION_HINT = "e2e_hint"


@dataclass(frozen=True)
class WireScale:
    """Scaling between native (ns, unit, unit·ns) and wire counters."""

    time_unit_ns: int = 1_000
    integral_shift: int = 10

    def pack_snapshot(self, snap: QueueSnapshot) -> tuple[int, int, int]:
        """Native snapshot -> (time32, total32, integral32)."""
        time32 = (snap.time // self.time_unit_ns) % _WIRE_MOD
        total32 = snap.total % _WIRE_MOD
        integral32 = (
            (snap.integral // self.time_unit_ns) >> self.integral_shift
        ) % _WIRE_MOD
        return time32, total32, integral32


class WireQueueState:
    """One queue's 12-byte wire representation."""

    WIRE_BYTES = 12

    __slots__ = ("time32", "total32", "integral32")

    def __init__(self, time32: int, total32: int, integral32: int):
        self.time32 = time32
        self.total32 = total32
        self.integral32 = integral32

    @classmethod
    def capture(cls, state: QueueState, scale: WireScale) -> "WireQueueState":
        """Snapshot a live queue state into wire counters.

        Equivalent to ``cls(*scale.pack_snapshot(state.snapshot()))``
        but uses the tuple snapshot — this runs for every queue on every
        outgoing exchange, and the dataclass allocation is pure overhead.
        """
        time_ns, total, integral = state.snapshot_tuple()
        unit = scale.time_unit_ns
        return cls(
            (time_ns // unit) % _WIRE_MOD,
            total % _WIRE_MOD,
            ((integral // unit) >> scale.integral_shift) % _WIRE_MOD,
        )

    def encode(self) -> bytes:
        """Serialize to the 12-byte on-the-wire layout."""
        return _STRUCT.pack(self.time32, self.total32, self.integral32)

    @classmethod
    def decode(cls, data: bytes) -> "WireQueueState":
        """Parse the 12-byte layout."""
        if len(data) != cls.WIRE_BYTES:
            raise EstimationError(
                f"wire queue state must be {cls.WIRE_BYTES} bytes, got {len(data)}"
            )
        return cls(*_STRUCT.unpack(data))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, WireQueueState)
            and self.time32 == other.time32
            and self.total32 == other.total32
            and self.integral32 == other.integral32
        )


class WirePeerState:
    """The full 36-byte exchange payload: three queue states."""

    WIRE_BYTES = 3 * WireQueueState.WIRE_BYTES

    __slots__ = ("unacked", "unread", "ackdelay")

    def __init__(
        self,
        unacked: WireQueueState,
        unread: WireQueueState,
        ackdelay: WireQueueState,
    ):
        self.unacked = unacked
        self.unread = unread
        self.ackdelay = ackdelay

    @classmethod
    def capture(cls, socket, scale: WireScale) -> "WirePeerState":
        """Snapshot a socket's three byte-queue states."""
        return cls(
            unacked=WireQueueState.capture(socket.qs_unacked, scale),
            unread=WireQueueState.capture(socket.qs_unread, scale),
            ackdelay=WireQueueState.capture(socket.qs_ackdelay, scale),
        )

    def encode(self) -> bytes:
        """Serialize to the 36-byte exchange payload."""
        return self.unacked.encode() + self.unread.encode() + self.ackdelay.encode()

    @classmethod
    def decode(cls, data: bytes) -> "WirePeerState":
        """Parse the 36-byte exchange payload."""
        if len(data) != cls.WIRE_BYTES:
            raise EstimationError(
                f"peer state must be {cls.WIRE_BYTES} bytes, got {len(data)}"
            )
        size = WireQueueState.WIRE_BYTES
        return cls(
            unacked=WireQueueState.decode(data[:size]),
            unread=WireQueueState.decode(data[size : 2 * size]),
            ackdelay=WireQueueState.decode(data[2 * size :]),
        )


class _CounterUnwrapper:
    """Reconstructs a monotone counter from wrapped 32-bit observations."""

    __slots__ = ("_last32", "value")

    def __init__(self):
        self._last32: int | None = None
        self.value = 0

    def preview(self, observed32: int) -> int:
        """The unwrapped value ``observed32`` would commit to."""
        if self._last32 is None:
            return observed32
        return self.value + (observed32 - self._last32) % _WIRE_MOD

    def update(self, observed32: int) -> int:
        self.value = self.preview(observed32)
        self._last32 = observed32
        return self.value


class _QueueUnwrapper:
    """Unwraps one queue's wire counters back to native units."""

    def __init__(self, scale: WireScale):
        self._scale = scale
        self._time = _CounterUnwrapper()
        self._total = _CounterUnwrapper()
        self._integral = _CounterUnwrapper()

    def _snapshot(self, time_c: int, total_c: int, integral_c: int) -> QueueSnapshot:
        return QueueSnapshot(
            time=time_c * self._scale.time_unit_ns,
            total=total_c,
            integral=(integral_c << self._scale.integral_shift)
            * self._scale.time_unit_ns,
        )

    def preview(self, wire: WireQueueState) -> QueueSnapshot:
        """What :meth:`update` would yield, without committing state."""
        return self._snapshot(
            self._time.preview(wire.time32),
            self._total.preview(wire.total32),
            self._integral.preview(wire.integral32),
        )

    def update(self, wire: WireQueueState) -> QueueSnapshot:
        return self._snapshot(
            self._time.update(wire.time32),
            self._total.update(wire.total32),
            self._integral.update(wire.integral32),
        )


@dataclass(frozen=True)
class PeerSnapshots:
    """Unwrapped remote queue snapshots from one exchange."""

    unacked: QueueSnapshot
    unread: QueueSnapshot
    ackdelay: QueueSnapshot


class MetadataExchange:
    """Attaches to a socket; shares queue states, collects the peer's.

    The paper keeps two states per connection, previous and current
    (§5); :attr:`remote_prev` / :attr:`remote_cur` are exactly those.
    When a :class:`~repro.core.hints.HintSession` is supplied, its
    userspace queue state rides along as the hint option (§3.3's
    ancillary-data path).

    Robustness: incoming states are sanity-checked before they replace
    the prev/cur pair.  A state whose unwrapped counters jump implausibly
    (a corrupted or replayed exchange — with modular unwrapping, any
    regression surfaces as a huge forward jump) is rejected and counted
    in :attr:`states_rejected` without touching the unwrap state, so one
    bad exchange costs exactly one sample.  ``max_gap_ns`` bounds the
    believable time progress between consecutive states (None disables
    the gap check — the default, since a clean testbed never needs it).
    After :attr:`REBASELINE_AFTER` consecutive rejections the incoming
    state is adopted as a fresh baseline: at that point the persistent
    implausibility means *our* retained baseline is the corrupt side.

    ``tracer`` (a :class:`repro.obs.Tracer`) records every state sent
    (``exchange.send``: option bytes, demand flag, hint ride-along) and
    every state received with its plausibility verdict
    (``exchange.recv``: accepted / rejected / rebaselined).
    """

    REBASELINE_AFTER = 3

    def __init__(
        self,
        sim,
        socket,
        period_ns: int = msecs(10),
        scale: WireScale | None = None,
        hint_session=None,
        max_gap_ns: int | None = None,
        tracer=None,
    ):
        from repro.obs.tracer import NULL_TRACER

        if period_ns <= 0:
            raise EstimationError(f"exchange period must be positive: {period_ns}")
        if max_gap_ns is not None and max_gap_ns <= 0:
            raise EstimationError(f"max gap must be positive: {max_gap_ns}")
        self._sim = sim
        self._socket = socket
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._trace_src = getattr(socket, "name", "socket")
        self.period_ns = period_ns
        self.scale = scale or WireScale()
        self.hint_session = hint_session
        self.max_gap_ns = max_gap_ns
        socket.exchange = self
        self._next_due = sim.now
        self._demand = False
        self._unwrap_unacked = _QueueUnwrapper(self.scale)
        self._unwrap_unread = _QueueUnwrapper(self.scale)
        self._unwrap_ackdelay = _QueueUnwrapper(self.scale)
        # The hint option's scale (integrals in whole unit·µs) is fixed
        # for the exchange's lifetime; build it once instead of per
        # transmitted hint.
        self._hint_scale = WireScale(
            time_unit_ns=self.scale.time_unit_ns, integral_shift=0
        )
        self._unwrap_hint = _QueueUnwrapper(self._hint_scale)
        self.remote_prev: PeerSnapshots | None = None
        self.remote_cur: PeerSnapshots | None = None
        self.remote_hint_prev: QueueSnapshot | None = None
        self.remote_hint_cur: QueueSnapshot | None = None
        self.fault_hook = None  # attached by repro.faults
        self.last_received_ns: int | None = None
        self.states_sent = 0
        self.states_received = 0
        self.states_rejected = 0
        self.rebaselines = 0
        self._consecutive_rejections = 0
        self.option_bytes_sent = 0
        self.carrier_acks_sent = 0
        self._carrier_timer = None
        self._carrier_deadline_ns = None

    def request(self) -> None:
        """On-demand exchange (§5): attach state to the next segment."""
        self._demand = True

    # ------------------------------------------------------------------
    # Standalone carrier for quiet endpoints.
    # ------------------------------------------------------------------

    def start_carrier(self, deadline_ns: int) -> None:
        """Guarantee delivery even without reverse traffic.

        Options ride outgoing segments, so an endpoint that transmits
        nothing shares nothing — a one-way bulk receiver, or an idle
        connection that a controller still wants estimates from.  The
        carrier checks every ``deadline_ns``: if a state is due (by
        period or on-demand) and no segment has carried it, it emits a
        pure ack as a carrier.
        """
        if deadline_ns <= 0:
            raise EstimationError(f"carrier deadline must be positive: {deadline_ns}")
        self._carrier_deadline_ns = deadline_ns
        if self._carrier_timer is None:
            self._carrier_timer = self._sim.call_after(
                deadline_ns, self._carrier_tick
            )

    def stop_carrier(self) -> None:
        """Cancel the carrier."""
        if self._carrier_timer is not None:
            self._carrier_timer.cancel()
            self._carrier_timer = None
        self._carrier_deadline_ns = None

    def _carrier_tick(self) -> None:
        self._carrier_timer = None
        if self._carrier_deadline_ns is None:
            return
        starved = (
            self._sim.now >= self._next_due + self._carrier_deadline_ns
        )
        if self._demand or starved:
            # Starved: the state has been due for a full deadline and no
            # segment carried it; send a bare ack (its transmit path
            # calls back into on_transmit, attaching the state).  Merely
            # "due" states get the grace window — regular traffic will
            # carry them.
            self.carrier_acks_sent += 1
            self._socket._emit_pure_ack()
        self._carrier_timer = self._sim.call_after(
            self._carrier_deadline_ns, self._carrier_tick
        )

    # ------------------------------------------------------------------
    # Socket hooks.
    # ------------------------------------------------------------------

    def on_transmit(self, segment) -> None:
        """Called for every outgoing segment; attaches options when due."""
        if self._sim.now < self._next_due and not self._demand:
            return
        on_demand = self._demand
        self._next_due = self._sim.now + self.period_ns
        self._demand = False
        state = WirePeerState.capture(self._socket, self.scale)
        segment.options[OPTION_E2E] = state
        self.states_sent += 1
        option_bytes = WirePeerState.WIRE_BYTES
        if self.hint_session is not None:
            segment.options[OPTION_HINT] = WireQueueState.capture(
                self.hint_session.state, self._hint_scale
            )
            option_bytes += WireQueueState.WIRE_BYTES
        self.option_bytes_sent += option_bytes
        if self._tracer.enabled:
            self._tracer.exchange_send(
                self._trace_src,
                option_bytes,
                demand=on_demand,
                hint=self.hint_session is not None,
            )

    def on_receive(self, options: dict) -> None:
        """Called for incoming segments carrying options."""
        if self.fault_hook is not None:
            options = self.fault_hook(options)
            if not options:
                return
        state = options.get(OPTION_E2E)
        if state is not None:
            self.states_received += 1
            self._receive_state(state)
        hint = options.get(OPTION_HINT)
        if hint is not None:
            snapshot = self._unwrap_hint.update(hint)
            self.remote_hint_prev, self.remote_hint_cur = (
                self.remote_hint_cur,
                snapshot,
            )

    def _receive_state(self, state: WirePeerState) -> None:
        candidate = PeerSnapshots(
            unacked=self._unwrap_unacked.preview(state.unacked),
            unread=self._unwrap_unread.preview(state.unread),
            ackdelay=self._unwrap_ackdelay.preview(state.ackdelay),
        )
        rebaseline = False
        if self._implausible(candidate):
            self.states_rejected += 1
            self._consecutive_rejections += 1
            if self._consecutive_rejections < self.REBASELINE_AFTER:
                if self._tracer.enabled:
                    self._tracer.exchange_recv(
                        self._trace_src, "rejected", candidate
                    )
                return  # one bad exchange costs exactly one sample
            rebaseline = True
            self.rebaselines += 1
        self._consecutive_rejections = 0
        if self._tracer.enabled:
            self._tracer.exchange_recv(
                self._trace_src,
                "rebaselined" if rebaseline else "accepted",
                candidate,
            )
        snapshots = PeerSnapshots(
            unacked=self._unwrap_unacked.update(state.unacked),
            unread=self._unwrap_unread.update(state.unread),
            ackdelay=self._unwrap_ackdelay.update(state.ackdelay),
        )
        # A rebaseline must not leave an interval spanning the bad jump.
        self.remote_prev = None if rebaseline else self.remote_cur
        self.remote_cur = snapshots
        self.last_received_ns = self._sim.now

    #: Counter movement (wire units) believable within one wire time
    #: tick.  Wire time has microsecond resolution, so two states in the
    #: same microsecond legitimately move a little; a corrupted counter
    #: (a random 32-bit flip) jumps by ~2³¹ and sails past this.
    ZERO_DT_JUMP = 1 << 24

    def _implausible(self, candidate: PeerSnapshots) -> bool:
        """Whether a candidate state cannot follow the current one."""
        cur = self.remote_cur
        if cur is None:
            return False
        max_integral_jump = (
            self.ZERO_DT_JUMP << self.scale.integral_shift
        ) * self.scale.time_unit_ns
        for queue in ("unacked", "unread", "ackdelay"):
            new = getattr(candidate, queue)
            old = getattr(cur, queue)
            dt = new.time - old.time  # >= 0 by modular unwrapping
            if dt == 0 and (
                new.total - old.total > self.ZERO_DT_JUMP
                or new.integral - old.integral > max_integral_jump
            ):
                return True  # huge movement with zero time progress
            if self.max_gap_ns is not None and dt > self.max_gap_ns:
                return True
        return False

    def staleness_ns(self) -> int | None:
        """Age of the freshest accepted peer state; None before any."""
        if self.last_received_ns is None:
            return None
        return self._sim.now - self.last_received_ns
