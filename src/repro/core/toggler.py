"""Dynamic on/off batching controlled by end-to-end estimates (paper §5).

The effect of toggling Nagle is unknown until tried — a classic
exploration/exploitation problem.  As the paper speculates, a light
ε-greedy scheme suffices: every tick (the *toggling granularity*, §5) the
controller

1. samples end-to-end performance for the mode that just ran,
2. folds it into that mode's EWMA,
3. picks the next mode: with probability ε the other one (exploration),
   otherwise the mode whose smoothed performance the policy prefers,

and applies the choice to the sockets under control.  Ticks whose
estimate is undefined (idle connection) leave the EWMAs untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.ewma import Ewma
from repro.core.policy import BatchingPolicy, PerfSample
from repro.errors import EstimationError
from repro.units import msecs


@dataclass(frozen=True)
class TogglerConfig:
    """ε-greedy toggler tunables.

    ``tick_ns`` is the toggling granularity (the paper's initial results
    suggest a kernel tick, ~1–4 ms).  ``epsilon`` is the exploration
    probability.  ``alpha`` is the per-mode EWMA weight.
    ``min_samples`` forces each mode to be tried that many times before
    greedy selection starts.  ``settle_ticks`` discards that many
    intervals after every mode change before attributing samples: the
    queues built under the old mode must drain, or the new mode gets
    blamed for the old one's backlog (most visible when exploring the
    good mode while the bad one is collapsing).

    Robustness knobs (both default to the legacy behavior):
    ``freeze_ticks`` is the minimum dwell — at least that many ticks
    between consecutive mode changes, bounding how fast the controller
    can oscillate when its estimates turn noisy.  ``loss_freeze_ticks``
    is how long a detected loss episode (see ``loss_signal_fn`` on the
    toggler) holds the controller: mode frozen, EWMAs untouched, so
    retransmission stalls are never attributed to the running mode.
    """

    tick_ns: int = msecs(1)
    epsilon: float = 0.1
    alpha: float = 0.3
    min_samples: int = 3
    settle_ticks: int = 3
    freeze_ticks: int = 0
    loss_freeze_ticks: int = 4

    def validate(self) -> None:
        """Raise on out-of-range parameters."""
        if self.tick_ns <= 0:
            raise EstimationError(f"tick must be positive, got {self.tick_ns}")
        if not 0.0 <= self.epsilon <= 1.0:
            raise EstimationError(f"epsilon out of range: {self.epsilon}")
        if self.min_samples < 1:
            raise EstimationError(f"min_samples must be >= 1: {self.min_samples}")
        if self.settle_ticks < 0:
            raise EstimationError(f"settle_ticks must be >= 0: {self.settle_ticks}")
        if self.freeze_ticks < 0:
            raise EstimationError(f"freeze_ticks must be >= 0: {self.freeze_ticks}")
        if self.loss_freeze_ticks < 0:
            raise EstimationError(
                f"loss_freeze_ticks must be >= 0: {self.loss_freeze_ticks}"
            )


@dataclass
class ToggleRecord:
    """Telemetry: one controller tick."""

    time: int
    mode: bool
    sample: PerfSample | None
    explored: bool


@dataclass
class _ModeStats:
    latency: Ewma
    throughput: Ewma
    samples: int = 0


class NagleToggler:
    """ε-greedy dynamic Nagle on/off controller.

    ``sample_fn`` returns the latest :class:`PerfSample` (or None) —
    typically a closure over an :class:`~repro.core.estimator
    .E2EEstimator` or a :class:`~repro.core.hints.RemoteHintEstimator`.
    ``apply_fn`` receives the chosen mode (True = Nagle on) and flips it
    on every connection the policy governs; per §3.2, a policy spanning
    multiple connections averages their estimates inside ``sample_fn``.

    ``loss_signal_fn``, when given, is polled every tick and returns
    True while the network is visibly losing segments (e.g. a closure
    diffing the sockets' retransmit counters).  A True reading opens a
    loss episode: for ``config.loss_freeze_ticks`` ticks the controller
    holds its mode and leaves both EWMAs at their last-known-good
    values — samples taken during recovery measure the loss, not the
    batching mode, and folding them in would make the controller flap
    between two arms it is mis-scoring.

    ``tracer`` (a :class:`repro.obs.Tracer`) records every tick as a
    ``toggler.decision`` trace record — the sample observed, the phase
    (measure/settle/loss-freeze/freeze-hold) and both arms' EWMAs — so a
    choice can be audited after the fact; ``name`` is the record's
    ``src`` field.
    """

    def __init__(
        self,
        sim,
        sample_fn: Callable[[], PerfSample | None],
        apply_fn: Callable[[bool], None],
        policy: BatchingPolicy,
        rng,
        config: TogglerConfig | None = None,
        initial_mode: bool = False,
        loss_signal_fn: Callable[[], bool] | None = None,
        tracer=None,
        name: str = "toggler",
    ):
        from repro.obs.tracer import NULL_TRACER

        self._sim = sim
        self._sample_fn = sample_fn
        self._apply_fn = apply_fn
        self._policy = policy
        self._rng = rng
        self._loss_signal_fn = loss_signal_fn
        self.config = config or TogglerConfig()
        self.config.validate()
        self.mode = initial_mode
        self._stats = {
            mode: _ModeStats(
                latency=Ewma(self.config.alpha),
                throughput=Ewma(self.config.alpha),
            )
            for mode in (False, True)
        }
        self.history: list[ToggleRecord] = []
        self.toggles = 0
        self._timer = None
        self._settling = 0
        self._loss_freeze = 0
        self._ticks_since_toggle = self.config.freeze_ticks
        self.loss_episodes = 0
        self.frozen_ticks = 0
        self.freeze_holds = 0
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._trace_src = name
        self._tick_index = 0

    def start(self) -> None:
        """Apply the initial mode and begin ticking."""
        self._apply_fn(self.mode)
        self._timer = self._sim.call_after(self.config.tick_ns, self._tick)

    def stop(self) -> None:
        """Cancel the tick timer."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    # ------------------------------------------------------------------
    # Controller loop.
    # ------------------------------------------------------------------

    def _tick(self) -> None:
        self._tick_index += 1
        prev_mode = self.mode
        sample = self._sample_fn()
        explored, phase = self._observe_and_choose(sample)
        self.history.append(
            ToggleRecord(self._sim.now, self.mode, sample, explored)
        )
        if self._tracer.enabled:
            self._tracer.toggler_decision(
                self._trace_src,
                tick=self._tick_index,
                mode=self.mode,
                prev_mode=prev_mode,
                explored=explored,
                phase=phase,
                sample_latency_ns=(
                    sample.latency_ns if sample is not None else None
                ),
                ewma=self._ewma_dict(),
            )
        self._timer = self._sim.call_after(self.config.tick_ns, self._tick)

    def _ewma_dict(self) -> dict:
        """Both arms' smoothed views, for the decision trace record."""
        out = {}
        for mode, key in ((False, "nagle_off"), (True, "nagle_on")):
            stats = self._stats[mode]
            out[key] = {
                "latency_ns": stats.latency.mean,
                "throughput_per_sec": stats.throughput.mean,
                "samples": stats.samples,
            }
        return out

    def _observe_and_choose(
        self, sample: PerfSample | None
    ) -> tuple[bool, str]:
        """One tick of the controller.

        Returns ``(explored, phase)``: whether exploration picked the
        next mode, and which phase the tick landed in — ``"loss-freeze"``
        (holding through a loss episode), ``"settle"`` (discarding
        post-toggle drain intervals), ``"freeze-hold"`` (a wanted change
        suppressed by the minimum dwell), or ``"measure"`` (a normal
        sample-and-select tick).
        """
        self._ticks_since_toggle += 1
        if self._loss_signal_fn is not None and self._loss_signal_fn():
            if self._loss_freeze == 0:
                self.loss_episodes += 1
            self._loss_freeze = self.config.loss_freeze_ticks
        if self._loss_freeze > 0:
            # Loss episode: the sample measures retransmission stalls,
            # not the batching mode.  Hold the mode and keep the
            # last-known-good EWMAs untouched until the episode clears.
            self._loss_freeze -= 1
            self.frozen_ticks += 1
            return False, "loss-freeze"
        if self._settling > 0:
            # The intervals right after a mode change straddle the
            # transition — queues built under the old mode drain under
            # the new one, so attributing them would poison this arm's
            # EWMA.  Discard them and measure clean intervals first.
            self._settling -= 1
            return False, "settle"
        if sample is not None and sample.latency_ns is not None:
            stats = self._stats[self.mode]
            stats.samples += 1
            stats.latency.update(sample.latency_ns)
            stats.throughput.update(sample.throughput_per_sec)
        next_mode, explored = self._select()
        if next_mode != self.mode:
            if self._ticks_since_toggle < self.config.freeze_ticks:
                # Inside the freeze window: the last change is too
                # recent for another to be evidence rather than noise.
                self.freeze_holds += 1
                return explored, "freeze-hold"
            self.mode = next_mode
            self.toggles += 1
            self._settling = self.config.settle_ticks
            self._ticks_since_toggle = 0
            self._apply_fn(next_mode)
        return explored, "measure"

    def _select(self) -> tuple[bool, bool]:
        # Make sure both arms have a minimal history first.
        for mode in (False, True):
            if self._stats[mode].samples < self.config.min_samples:
                return mode, True
        if self._rng.bernoulli(self.config.epsilon):
            return (not self.mode), True
        return self._greedy(), False

    def _greedy(self) -> bool:
        scores = {}
        for mode, stats in self._stats.items():
            scores[mode] = self._policy.score(
                PerfSample(
                    latency_ns=stats.latency.mean,
                    throughput_per_sec=stats.throughput.mean or 0.0,
                )
            )
        return scores[True] > scores[False]

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    def smoothed(self, mode: bool) -> PerfSample:
        """Current EWMA view of one mode."""
        stats = self._stats[mode]
        return PerfSample(
            latency_ns=stats.latency.mean,
            throughput_per_sec=stats.throughput.mean or 0.0,
        )
