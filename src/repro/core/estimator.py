"""End-to-end latency estimation from three queue delays (paper §3.2).

The estimate combines the queuing delays of the three monitored queues:

    L ≈ L_unacked^local − L_ackdelay^remote + L_unread^local + L_unread^remote

where *local* is the endpoint whose perspective we take.  The intuition
(paper Figure 3): the local unacked delay spans "send until ack returns";
subtracting the remote's deliberate ack delay and adding both sides'
unread (receive-buffer) delays recovers the request+response journey.

Remote delays come either from the metadata exchange (wire mode — what a
deployment would use) or by directly snapshotting the peer's queue
states (oracle mode — what the paper's offline ethtool-based prototype
effectively does).  Both sides can compute an estimate; the paper uses
the maximum of the two to hedge against underestimation, implemented
here by :func:`combine_estimates`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.littles_law import try_get_avgs
from repro.core.qstate import QueueSnapshot
from repro.errors import EstimationError
from repro.units import SEC


@dataclass(frozen=True)
class QueueDelays:
    """Per-queue average delays (ns) over an interval; None = no
    departures observed, so Little's law yields no estimate."""

    unacked: float | None
    unread: float | None
    ackdelay: float | None


@dataclass(frozen=True)
class EstimateSample:
    """One end-to-end estimate.

    ``latency_ns`` is None when a *required* component (local unacked,
    local or remote unread) was undefined.  An undefined remote ackdelay
    only means no acks were delayed — it contributes zero.  ``complete``
    records whether every component was defined.  ``throughput_per_sec``
    is λ of the local unacked queue: units acknowledged per second.
    """

    latency_ns: float | None
    throughput_per_sec: float
    local: QueueDelays
    remote: QueueDelays | None
    interval_ns: int
    complete: bool

    @property
    def defined(self) -> bool:
        """Whether a latency estimate exists."""
        return self.latency_ns is not None


class _Tripple:
    """Previous snapshots of one side's three queues."""

    __slots__ = ("unacked", "unread", "ackdelay")

    def __init__(self, unacked, unread, ackdelay):
        self.unacked = unacked
        self.unread = unread
        self.ackdelay = ackdelay


def _delay(prev: QueueSnapshot, now: QueueSnapshot) -> float | None:
    # try_get_avgs: a stale or corrupted snapshot pair degrades to "no
    # estimate for this queue" instead of raising mid-sample.
    avgs = try_get_avgs(prev, now)
    return None if avgs is None else avgs.latency_ns


class E2EEstimator:
    """Computes local-view end-to-end estimates for one endpoint.

    ``local`` is any object exposing ``qs_unacked`` / ``qs_unread`` /
    ``qs_ackdelay`` queue states — a socket (byte units) or a
    :class:`repro.core.semantic.MessageUnits` adapter.  Exactly one of
    ``remote`` (oracle mode: the peer's same-shaped object) or
    ``exchange`` (wire mode: this endpoint's metadata exchange) must be
    given.

    Graceful degradation (wire mode is a network consumer, so it must
    tolerate a misbehaving network):

    - ``max_staleness_ns`` — when set, a remote view whose freshest
      accepted exchange is older than this is discarded for the sample
      (counted in :attr:`stale_rejections`) rather than trusted.
    - non-monotonic remote intervals (a rebaselined or corrupt pair)
      yield no remote view and count in :attr:`nonmonotonic_rejections`.
    - the combined latency is clamped at zero (a corrupt remote ackdelay
      can otherwise push it negative; :attr:`negative_clamps`) and, when
      ``max_latency_ns`` is set, at that ceiling
      (:attr:`absurd_clamps`).

    ``tracer`` (a :class:`repro.obs.Tracer`) records every sample as an
    ``estimator.sample`` trace record — all four §3.2 inputs, the
    combined output, and any clamp applied — and every discarded remote
    view as ``estimator.reject``; ``name`` overrides the record ``src``
    (default: the local socket's name).

    ``history`` (a :class:`repro.sim.batch.EstimateBatch`) records every
    produced sample's ``(time, latency, throughput)`` as flat columns
    for bulk post-analysis — the batch-pipeline alternative to retaining
    :class:`EstimateSample` objects.  It observes, never perturbs.
    """

    def __init__(
        self,
        local,
        remote=None,
        exchange=None,
        max_staleness_ns: int | None = None,
        max_latency_ns: float | None = None,
        tracer=None,
        name: str | None = None,
        history=None,
    ):
        from repro.obs.tracer import NULL_TRACER

        if (remote is None) == (exchange is None):
            raise EstimationError("provide exactly one of remote= or exchange=")
        if max_staleness_ns is not None and max_staleness_ns <= 0:
            raise EstimationError(
                f"max staleness must be positive: {max_staleness_ns}"
            )
        if max_latency_ns is not None and max_latency_ns <= 0:
            raise EstimationError(
                f"max latency must be positive: {max_latency_ns}"
            )
        self._local = local
        self._remote = remote
        self._exchange = exchange
        self._max_staleness_ns = max_staleness_ns
        self._max_latency_ns = max_latency_ns
        self._prev_local: _Tripple | None = None
        self._prev_remote: _Tripple | None = None
        self.stale_rejections = 0
        self.nonmonotonic_rejections = 0
        self.negative_clamps = 0
        self.absurd_clamps = 0
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._trace_src = name or getattr(local, "name", "estimator")
        self.history = history

    def sample(self) -> EstimateSample | None:
        """Estimate over the interval since the previous call.

        The first call establishes baselines and returns None.
        """
        local_now = _Tripple(
            self._local.qs_unacked.snapshot(),
            self._local.qs_unread.snapshot(),
            self._local.qs_ackdelay.snapshot(),
        )
        prev_local, self._prev_local = self._prev_local, local_now
        remote_interval = self._remote_interval()
        if prev_local is None:
            return None
        if local_now.unacked.time <= prev_local.unacked.time:
            return None

        d_local = QueueDelays(
            unacked=_delay(prev_local.unacked, local_now.unacked),
            unread=_delay(prev_local.unread, local_now.unread),
            ackdelay=_delay(prev_local.ackdelay, local_now.ackdelay),
        )
        d_remote = None
        if remote_interval is not None:
            prev_remote, remote_now = remote_interval
            d_remote = QueueDelays(
                unacked=_delay(prev_remote.unacked, remote_now.unacked),
                unread=_delay(prev_remote.unread, remote_now.unread),
                ackdelay=_delay(prev_remote.ackdelay, remote_now.ackdelay),
            )

        interval = local_now.unacked.time - prev_local.unacked.time
        throughput = (
            (local_now.unacked.total - prev_local.unacked.total) * SEC / interval
        )

        latency, complete = self._combine(d_local, d_remote)
        clamped = None
        if latency is not None:
            if latency < 0:
                # A corrupt or unlucky remote ackdelay exceeded the whole
                # round trip; a negative latency is never meaningful.
                self.negative_clamps += 1
                latency = 0.0
                clamped = "negative"
            elif (
                self._max_latency_ns is not None
                and latency > self._max_latency_ns
            ):
                self.absurd_clamps += 1
                latency = self._max_latency_ns
                clamped = "absurd"
        sample = EstimateSample(
            latency_ns=latency,
            throughput_per_sec=throughput,
            local=d_local,
            remote=d_remote,
            interval_ns=interval,
            complete=complete,
        )
        if self._tracer.enabled:
            self._tracer.estimator_sample(self._trace_src, sample, clamped)
        if self.history is not None:
            self.history.append(local_now.unacked.time, sample)
        return sample

    def _remote_interval(self):
        if self._remote is not None:
            remote_now = _Tripple(
                self._remote.qs_unacked.snapshot(),
                self._remote.qs_unread.snapshot(),
                self._remote.qs_ackdelay.snapshot(),
            )
            prev_remote, self._prev_remote = self._prev_remote, remote_now
            if prev_remote is None:
                return None
            return prev_remote, remote_now
        prev = self._exchange.remote_prev
        cur = self._exchange.remote_cur
        if prev is None or cur is None or cur.unacked.time <= prev.unacked.time:
            return None
        if not self._monotone(prev, cur):
            self.nonmonotonic_rejections += 1
            if self._tracer.enabled:
                self._tracer.estimator_reject(self._trace_src, "nonmonotonic")
            return None
        if self._max_staleness_ns is not None:
            age = self._exchange.staleness_ns()
            if age is None or age > self._max_staleness_ns:
                # The freshest accepted exchange predates the staleness
                # budget: the remote view describes a network that no
                # longer exists (blackout, exchange drops), so fall back
                # to a local-only (undefined) sample.
                self.stale_rejections += 1
                if self._tracer.enabled:
                    self._tracer.estimator_reject(
                        self._trace_src, "stale", staleness_ns=age
                    )
                return None
        return (
            _Tripple(prev.unacked, prev.unread, prev.ackdelay),
            _Tripple(cur.unacked, cur.unread, cur.ackdelay),
        )

    @staticmethod
    def _monotone(prev, cur) -> bool:
        for queue in ("unacked", "unread", "ackdelay"):
            earlier = getattr(prev, queue)
            later = getattr(cur, queue)
            if (
                later.time < earlier.time
                or later.total < earlier.total
                or later.integral < earlier.integral
            ):
                return False
        return True

    @staticmethod
    def _combine(
        local: QueueDelays, remote: QueueDelays | None
    ) -> tuple[float | None, bool]:
        if local.unacked is None or local.unread is None or remote is None:
            return None, False
        if remote.unread is None:
            return None, False
        ackdelay = remote.ackdelay if remote.ackdelay is not None else 0.0
        complete = remote.ackdelay is not None
        latency = local.unacked - ackdelay + local.unread + remote.unread
        return latency, complete


def combine_estimates(
    a: EstimateSample | None, b: EstimateSample | None
) -> float | None:
    """The paper's two-sided hedge: max of both endpoints' estimates."""
    candidates = [s.latency_ns for s in (a, b) if s is not None and s.defined]
    if not candidates:
        return None
    return max(candidates)
