"""Queue states and the TRACK procedure (paper §3.1, Algorithm 1).

A queue's performance between two points in time is fully captured by a
4-tuple ``(time, size, total, integral)``:

- ``time`` — when the tuple was last updated (integer ns);
- ``size`` — current queue occupancy, in message units;
- ``total`` — cumulative number of units that *left* the queue;
- ``integral`` — time-weighted occupancy accumulator (unit·ns): every
  update adds ``size * dt`` for the interval since the previous update.

``TRACK`` (here :meth:`QueueState.track`) is called whenever the queue size
changes, with a positive count for arrivals and a negative count for
departures.  Two successive *snapshots* of ``(time, total, integral)`` —
``size`` is not needed, as the paper notes — feed ``GETAVGS``
(:func:`repro.core.littles_law.get_avgs`) which recovers the average
occupancy ``Q``, throughput ``λ``, and queuing delay ``D = Q/λ``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EstimationError


@dataclass(frozen=True)
class QueueSnapshot:
    """An immutable ``(time, total, integral)`` 3-tuple.

    This is exactly the information a peer shares in a metadata exchange:
    ``size`` is deliberately absent because ``GETAVGS`` never uses it.
    """

    time: int
    total: int
    integral: int

    def __sub__(self, other: "QueueSnapshot") -> "QueueSnapshot":
        """Component-wise difference (the Δq of Algorithm 2, line 2)."""
        return QueueSnapshot(
            time=self.time - other.time,
            total=self.total - other.total,
            integral=self.integral - other.integral,
        )


class QueueState:
    """The mutable 4-tuple queue state of Algorithm 1.

    ``track(nitems)`` is the TRACK procedure: it first folds the elapsed
    interval into the integral at the *old* size, then applies the size
    change, and counts departures into ``total``.

    The state needs a clock; rather than binding to a full simulator we
    accept any zero-argument callable returning integer nanoseconds, so
    the same class serves the simulated kernel, the userspace hint API,
    and wall-clock use.
    """

    __slots__ = ("_clock", "time", "size", "total", "integral")

    def __init__(self, clock, start_size: int = 0):
        if start_size < 0:
            raise EstimationError(f"negative initial queue size {start_size}")
        self._clock = clock
        self.time = clock()
        self.size = start_size
        self.total = 0
        self.integral = 0

    def track(self, nitems: int) -> None:
        """Record ``nitems`` added (positive) or removed (negative).

        Mirrors Algorithm 1 lines 3-7.  Removing more items than the queue
        holds indicates an instrumentation bug and raises.

        Fast paths (bit-identical, since both skip adding an exact 0):
        coalesced same-tick updates (``dt == 0``) and empty-queue
        intervals (``size == 0``) skip the integral fold entirely —
        together these cover most TRACK calls in a bursty workload, where
        arrivals and their queue-size echoes land on the same tick.
        """
        now = self._clock()
        dt = now - self.time
        if dt:
            if dt < 0:
                raise EstimationError(
                    f"clock moved backwards: {self.time} -> {now}"
                )
            self.time = now
            if self.size:
                self.integral += self.size * dt
        size = self.size + nitems
        if size < 0:
            raise EstimationError(
                f"queue size went negative ({size}) after track({nitems})"
            )
        self.size = size
        if nitems < 0:
            self.total -= nitems

    def snapshot(self) -> QueueSnapshot:
        """Capture the current ``(time, total, integral)`` 3-tuple.

        The integral is brought forward to *now* (a ``track(0)``), so two
        snapshots bracket exactly the wall interval between the calls.
        """
        self.track(0)
        return QueueSnapshot(time=self.time, total=self.total, integral=self.integral)

    def snapshot_tuple(self) -> tuple[int, int, int]:
        """Allocation-light :meth:`snapshot`: a plain ``(time, total,
        integral)`` tuple instead of a :class:`QueueSnapshot`.

        The estimator/exchange hot loop captures both directions of both
        queues on every exchange tick; this variant skips the dataclass
        construction on that path.  The public API keeps returning
        :class:`QueueSnapshot`.
        """
        self.track(0)
        return (self.time, self.total, self.integral)

    def append_snapshot(self, out: list) -> None:
        """Batch-pipeline :meth:`snapshot`: append ``time, total,
        integral`` to a flat column buffer.

        Same bring-forward semantics (a ``track(0)``), zero object
        construction — the collection primitive of
        :class:`repro.sim.batch.SampleBatch`.
        """
        self.track(0)
        out.append(self.time)
        out.append(self.total)
        out.append(self.integral)

    def __repr__(self) -> str:
        return (
            f"QueueState(time={self.time}, size={self.size}, "
            f"total={self.total}, integral={self.integral})"
        )
