"""GETAVGS — averages between two queue snapshots (paper §3.1, Algorithm 2).

Given two successive snapshots of a queue state, compute over the interval
between them:

- average occupancy ``Q = Δintegral / Δtime``;
- throughput ``λ = Δtotal / Δtime`` (departure rate; for a lossless queue
  the arrival rate is the same);
- queuing delay ``D = Q / λ = Δintegral / Δtotal`` (Little's law).

The paper's illustration: a queue holding 1 item for 10 µs then 4 items for
20 µs has integral 1·10 + 4·20 = 90 item·µs, so Q = 90/30 = 3 items.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.qstate import QueueSnapshot
from repro.errors import EstimationError
from repro.units import SEC


@dataclass(frozen=True)
class QueueAverages:
    """Averages over a snapshot interval.

    ``latency_ns`` is None when no items departed during the interval
    (λ = 0): Little's law gives 0/0 and the paper's estimator treats the
    queue's delay contribution as unknown rather than zero.
    """

    occupancy: float
    throughput_per_sec: float
    latency_ns: float | None
    interval_ns: int

    @property
    def defined(self) -> bool:
        """Whether a latency estimate exists (some item departed)."""
        return self.latency_ns is not None


def _averages(delta: QueueSnapshot) -> QueueAverages:
    occupancy = delta.integral / delta.time
    throughput = delta.total * SEC / delta.time
    latency = delta.integral / delta.total if delta.total > 0 else None
    return QueueAverages(
        occupancy=occupancy,
        throughput_per_sec=throughput,
        latency_ns=latency,
        interval_ns=delta.time,
    )


def get_avgs(prev: QueueSnapshot, now: QueueSnapshot) -> QueueAverages:
    """Algorithm 2: averages for the interval between two snapshots.

    ``prev`` must be the earlier snapshot of the same queue state; a
    zero or negative interval and backwards counters both indicate
    misuse and raise :class:`EstimationError` here — never a
    ``ZeroDivisionError`` or a negative latency from the division below.
    Callers that face snapshots of *uncertain* provenance (a metadata
    exchange under faults) should use :func:`try_get_avgs` instead.
    """
    delta = now - prev
    if delta.time == 0:
        raise EstimationError(
            "snapshots are from the same instant (Δt = 0); Little's law "
            "needs a positive interval"
        )
    if delta.time < 0:
        raise EstimationError(
            f"snapshots are not in order (Δt = {delta.time} ns); pass the "
            "earlier snapshot first"
        )
    if delta.total < 0 or delta.integral < 0:
        raise EstimationError(
            f"counter deltas went backwards (total {delta.total}, "
            f"integral {delta.integral}); snapshots from different queues?"
        )
    return _averages(delta)


def try_get_avgs(
    prev: QueueSnapshot, now: QueueSnapshot
) -> QueueAverages | None:
    """Graceful :func:`get_avgs`: None instead of raising.

    Returns None for every interval :func:`get_avgs` would reject —
    zero or negative time progress, or counters that went backwards.
    This is the entry point for snapshots that crossed a network: a
    stale, duplicated, or corrupted exchange yields "no estimate", not
    an exception in the estimator's sampling path.
    """
    delta = now - prev
    if delta.time <= 0 or delta.total < 0 or delta.integral < 0:
        return None
    return _averages(delta)
