"""Batching objectives (paper §5, "Dynamic Toggling").

Throughput and latency can conflict, so mode selection follows a system-
or user-defined policy.  A policy scores a :class:`PerfSample`; scores
are ordered tuples so lexicographic objectives ("meet the SLO, then
maximize throughput") compose naturally.

The two policies the paper names:

- :class:`LatencyFirstPolicy` — prefer lower latency outright;
- :class:`ThroughputUnderSloPolicy` — maximize throughput provided a
  latency SLO is met; among SLO violators, prefer lower latency.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass


@dataclass(frozen=True)
class PerfSample:
    """One end-to-end performance observation.

    ``latency_ns`` may be None (the estimator had no defined sample);
    policies treat unknown latency pessimistically.
    """

    latency_ns: float | None
    throughput_per_sec: float


class BatchingPolicy(ABC):
    """Orders performance samples; bigger score = better."""

    @abstractmethod
    def score(self, sample: PerfSample) -> tuple:
        """Comparable score tuple for one sample."""

    def better(self, a: PerfSample, b: PerfSample) -> bool:
        """Whether ``a`` is strictly preferable to ``b``."""
        return self.score(a) > self.score(b)


class LatencyFirstPolicy(BatchingPolicy):
    """Minimize latency; throughput breaks ties."""

    def score(self, sample: PerfSample) -> tuple:
        if sample.latency_ns is None:
            return (0, 0.0, sample.throughput_per_sec)
        return (1, -sample.latency_ns, sample.throughput_per_sec)


class ThroughputUnderSloPolicy(BatchingPolicy):
    """Maximize throughput subject to a latency SLO.

    Samples meeting the SLO rank above all violators and are ordered by
    throughput; violators are ordered by how close they come to the SLO.
    The paper's evaluation uses a 500 µs SLO [IX, ZygOS].
    """

    def __init__(self, slo_ns: int):
        if slo_ns <= 0:
            raise ValueError(f"SLO must be positive, got {slo_ns}")
        self.slo_ns = slo_ns

    def score(self, sample: PerfSample) -> tuple:
        if sample.latency_ns is None:
            return (0, -float("inf"), 0.0)
        if sample.latency_ns <= self.slo_ns:
            return (1, sample.throughput_per_sec, -sample.latency_ns)
        return (0, -sample.latency_ns, sample.throughput_per_sec)
