"""The cooperative-application hint API (paper §3.3).

A client that knows its own request/response boundaries maintains a
userspace 4-tuple queue state of *outstanding requests*: ``create(n)``
when issuing requests, ``complete(n)`` when responses arrive — thin
wrappers over TRACK.  Little's law applied to this single logical queue
yields exactly the application-perceived end-to-end latency and
throughput; no kernel queue monitoring is needed, and the server needs
to share nothing (top of the paper's Figure 3).

The state is shared with the peer by attaching the session to the
socket's :class:`~repro.core.exchange.MetadataExchange` (the send
ancillary-data analogue).
"""

from __future__ import annotations

from repro.core.littles_law import QueueAverages, get_avgs
from repro.core.qstate import QueueSnapshot, QueueState
from repro.errors import EstimationError


class HintSession:
    """Userspace request-queue state with the create/complete API."""

    def __init__(self, clock):
        self.state = QueueState(clock)
        self._prev: QueueSnapshot | None = None

    def create(self, n: int = 1) -> None:
        """Record that ``n`` requests were issued."""
        if n <= 0:
            raise EstimationError(f"create() needs a positive count, got {n}")
        self.state.track(n)

    def complete(self, n: int = 1) -> None:
        """Record that ``n`` responses were received."""
        if n <= 0:
            raise EstimationError(f"complete() needs a positive count, got {n}")
        self.state.track(-n)

    @property
    def outstanding(self) -> int:
        """Requests issued but not yet completed."""
        return self.state.size

    def sample(self) -> QueueAverages | None:
        """Averages since the previous :meth:`sample` call.

        Returns None on the first call (no interval yet) and when no
        time elapsed.
        """
        snapshot = self.state.snapshot()
        prev, self._prev = self._prev, snapshot
        if prev is None or snapshot.time <= prev.time:
            return None
        return get_avgs(prev, snapshot)


class RemoteHintEstimator:
    """Server-side view of a client's hint queue (via the exchange).

    The server reads the two most recent hint snapshots its exchange
    collected and applies GETAVGS — the latency is application-perceived
    end-to-end by construction.
    """

    def __init__(self, exchange):
        self._exchange = exchange

    def sample(self) -> QueueAverages | None:
        """Averages over the interval between the last two exchanges."""
        prev = self._exchange.remote_hint_prev
        cur = self._exchange.remote_hint_cur
        if prev is None or cur is None or cur.time <= prev.time:
            return None
        return get_avgs(prev, cur)
