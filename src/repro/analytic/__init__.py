"""Closed-form models from the paper's motivation section."""

from repro.analytic.batching_model import (
    BatchingOutcome,
    ScenarioParams,
    compare,
    simulate_batched,
    simulate_unbatched,
)

__all__ = [
    "BatchingOutcome",
    "ScenarioParams",
    "compare",
    "simulate_batched",
    "simulate_unbatched",
]
