"""The Figure 1 closed-form batching model (paper §2).

Scenario: ``n`` client requests are queued at the server at time 0.
Serving one request costs α (per-request) + β (per-batch, amortizable);
the client takes ``c`` per response, serially.

- **Batched**: the server processes all ``n`` together — total server
  time ``n·α + β`` — and emits all responses at once; the client then
  works through them: response k completes at ``n·α + β + k·c``.
- **Unbatched**: the server handles requests individually — response k
  leaves the server at ``k·(α + β)`` — and the client processes each as
  it arrives (but serially): completion is a pipeline recurrence
  ``C_k = max(C_{k-1}, k·(α+β)) + c``.

Average latency is the mean completion time (requests all arrived at 0);
throughput is ``n`` divided by the last completion.  The paper's
headline: with α=2, β=4, n=3, batching helps both metrics at c=1,
degrades both at c=5, and trades latency for throughput at c=3.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError


@dataclass(frozen=True)
class ScenarioParams:
    """Model parameters (arbitrary time units, as in the paper)."""

    n: int = 3
    alpha: float = 2.0
    beta: float = 4.0
    c: float = 1.0

    def validate(self) -> None:
        """Raise on nonsensical parameters."""
        if self.n <= 0:
            raise WorkloadError(f"n must be positive, got {self.n}")
        if self.alpha < 0 or self.beta < 0 or self.c < 0:
            raise WorkloadError("costs must be non-negative")


@dataclass(frozen=True)
class BatchingOutcome:
    """Completion times and summary metrics for one policy."""

    completion_times: tuple[float, ...]
    avg_latency: float
    throughput: float

    @classmethod
    def from_completions(cls, completions: list[float]) -> "BatchingOutcome":
        """Summarize a completion-time vector."""
        if not completions:
            raise WorkloadError("no completions")
        makespan = max(completions)
        return cls(
            completion_times=tuple(completions),
            avg_latency=sum(completions) / len(completions),
            throughput=len(completions) / makespan if makespan > 0 else float("inf"),
        )


def simulate_batched(params: ScenarioParams) -> BatchingOutcome:
    """Completion times when the server processes the queue as a batch."""
    params.validate()
    server_done = params.n * params.alpha + params.beta
    completions = [
        server_done + k * params.c for k in range(1, params.n + 1)
    ]
    return BatchingOutcome.from_completions(completions)


def simulate_unbatched(params: ScenarioParams) -> BatchingOutcome:
    """Completion times when the server processes requests one by one."""
    params.validate()
    completions: list[float] = []
    client_free = 0.0
    for k in range(1, params.n + 1):
        response_ready = k * (params.alpha + params.beta)
        start = max(client_free, response_ready)
        client_free = start + params.c
        completions.append(client_free)
    return BatchingOutcome.from_completions(completions)


def compare(params: ScenarioParams) -> dict:
    """Both policies plus the verdicts the paper reads off Figure 1.

    Returns a dict with 'batched', 'unbatched' outcomes and boolean
    verdicts 'batching_improves_latency' / 'batching_improves_throughput'.
    """
    batched = simulate_batched(params)
    unbatched = simulate_unbatched(params)
    return {
        "batched": batched,
        "unbatched": unbatched,
        "batching_improves_latency": batched.avg_latency < unbatched.avg_latency,
        "batching_improves_throughput": batched.throughput > unbatched.throughput,
    }
