"""Conservative cross-shard simulation: lock-stepped time windows.

:mod:`repro.sim.shard` parallelizes a run only when its components never
talk to each other (the decomposed fan-in).  This module generalizes the
same determinism contract to topologies whose components *do* exchange
packets — many flows contending on one bottleneck link — with the
classic conservative parallel-DES recipe:

1. Cut the scenario into **components**, each owning its own
   :class:`~repro.sim.loop.Simulator`.  Every cut edge has a fixed
   minimum latency; the smallest such latency is the **lookahead**.
2. Advance all components in lock-stepped **windows** of one lookahead:
   within a window each component simulates locally and posts packets
   bound for other components into its typed :class:`Mailbox` — a
   posted message's arrival time is always *beyond* the window end, so
   nothing inside a window can be affected by a message generated in it.
3. At the window barrier, the coordinator collects every mailbox,
   orders the messages by the partition-free key ``(arrival timestamp,
   source component, per-source sequence)``, and routes each to its
   destination shard's inbox for the window it falls in.

The determinism contract extension
----------------------------------

The window schedule is a function of ``(horizon, lookahead)`` only —
never of the partition — and **every** inter-component message goes
through the exchange, co-located or not.  Each component therefore sees
the identical inbox in the identical order whether it shares a shard
(or a process) with its peers or not, so the run's output — and the
``sim.sync.windows`` / ``sim.sync.exchanged_events`` counts themselves
— are byte-identical for every ``(shards, workers)`` combination,
including the in-process serial run.  Components with no cross links
have infinite lookahead: the plan collapses to a single window and the
engine degenerates to the plain shard map, paying ~nothing for the sync
machinery (``benchmarks/perf_baseline.json``, ``cross_shard``).

Execution rides the supervised :class:`~repro.parallel.ParallelRunner`:
each ``(shard, window)`` is one pure job whose payload carries the
shard's *full* inbox history, so any worker can rebuild the shard from
scratch — retries, crashes, checkpoints and resume compose unchanged.
A worker that already advanced the shard keeps it in a module-level
cache keyed by a rolling digest of the delivered history and only
replays when the digest disagrees (or a prior attempt died mid-window),
so the common case after the first window is incremental, not O(n²).
"""

from __future__ import annotations

import hashlib
import itertools
import os
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import WorkloadError
from repro.sim.shard import ShardPlan


@dataclass(frozen=True)
class SyncMessage:
    """One cross-component message (a packet crossing a cut edge).

    ``sequence`` is the source component's emission counter; together
    with ``arrival_ns`` and ``src`` it forms the partition-free total
    order every exchange and delivery uses.
    """

    arrival_ns: int
    src: int
    dst: int
    sequence: int
    payload: object

    @property
    def key(self) -> tuple[int, int, int]:
        return (self.arrival_ns, self.src, self.sequence)


class Mailbox:
    """A component's typed outbox of cross-component messages."""

    __slots__ = ("src", "_sequence", "_pending")

    def __init__(self, src: int):
        self.src = src
        self._sequence = 0
        self._pending: list[SyncMessage] = []

    def post(self, arrival_ns: int, dst: int, payload) -> None:
        """Queue ``payload`` for delivery to ``dst`` at ``arrival_ns``."""
        self._pending.append(
            SyncMessage(arrival_ns, self.src, dst, self._sequence, payload)
        )
        self._sequence += 1

    def drain(self) -> list[SyncMessage]:
        pending = self._pending
        self._pending = []
        return pending


class SyncComponent:
    """One cut piece of a scenario, owning its own sub-simulation.

    Subclasses set :attr:`index` (the global component index) and
    implement the window protocol; instances are built *inside* the
    worker by the picklable builder handed to :func:`run_windowed`, so
    they never cross a process boundary themselves.
    """

    index: int

    def deliver(self, message: SyncMessage) -> None:
        """Schedule an inbound message; called before :meth:`advance`
        for the window ``message.arrival_ns`` falls in, in exchange
        order."""
        raise NotImplementedError

    def advance(self, until_ns: int) -> list[SyncMessage]:
        """Simulate through ``until_ns`` inclusive; return the
        cross-component messages emitted during the window (every
        arrival strictly beyond ``until_ns``)."""
        raise NotImplementedError

    def events_executed(self) -> int:
        return 0

    def finish(self):
        """The component's result payload after the final window."""
        raise NotImplementedError


@dataclass(frozen=True)
class WindowPlan:
    """The lock-step schedule: a horizon cut into lookahead windows.

    ``lookahead_ns=None`` means no component pair exchanges messages
    (infinite lookahead): the whole horizon is one window.  The schedule
    depends only on these two numbers — never on the partition — which
    is what makes the exchange order partition-free.
    """

    horizon_ns: int
    lookahead_ns: int | None = None

    def __post_init__(self):
        if self.horizon_ns <= 0:
            raise WorkloadError(
                f"horizon must be positive, got {self.horizon_ns}"
            )
        if self.lookahead_ns is not None and self.lookahead_ns <= 0:
            raise WorkloadError(
                f"lookahead must be positive (or None), "
                f"got {self.lookahead_ns}"
            )

    def window_ends(self) -> tuple[int, ...]:
        """Window end times, ascending; the last equals the horizon."""
        lookahead = self.lookahead_ns
        if lookahead is None or lookahead >= self.horizon_ns:
            return (self.horizon_ns,)
        ends = list(range(lookahead, self.horizon_ns, lookahead))
        ends.append(self.horizon_ns)
        return tuple(ends)


@dataclass
class SyncRunResult:
    """What :func:`run_windowed` hands back to the experiment layer."""

    results: list            # component finish() payloads, index order
    windows: int             # lock-step windows executed
    exchanged_events: int    # messages through the cross-shard exchange
    events_executed: int     # kernel events across all sub-simulations


# ----------------------------------------------------------------------
# Worker side: advance one shard by one window.
# ----------------------------------------------------------------------

class _ShardState:
    """A worker process's warm copy of one shard's components."""

    __slots__ = ("components", "windows_done", "chain", "dirty")

    def __init__(self, components):
        self.components = components
        self.windows_done = 0
        self.chain = _CHAIN_SEED
        self.dirty = False


_CHAIN_SEED = "sync-v1"
#: (run token, component indices) -> warm state.  One entry per shard of
#: the *current* run; other runs' entries are evicted on first touch.
_STATE: dict[tuple, _ShardState] = {}


def _chain_digest(chain: str, deliveries: Sequence[SyncMessage]) -> str:
    """Extend the rolling history digest by one window's inbox.

    The digest covers each delivery's ``(arrival, src, dst, sequence)``
    key — in a deterministic engine the key identifies the payload, so
    matching chains mean the worker's warm state was built from exactly
    the deliveries this payload prescribes.
    """
    hasher = hashlib.sha256(chain.encode())
    for message in deliveries:
        hasher.update(
            b"%d:%d:%d:%d;" % (
                message.arrival_ns, message.src,
                message.dst, message.sequence,
            )
        )
    return hasher.hexdigest()


def _replay(builder, indices, ends, history, upto) -> _ShardState:
    """Rebuild a shard from scratch through windows ``0..upto-1``."""
    state = _ShardState([builder(index) for index in indices])
    by_index = {c.index: c for c in state.components}
    for window in range(upto):
        for message in history[window]:
            by_index[message.dst].deliver(message)
        for component in state.components:
            component.advance(ends[window])
        state.chain = _chain_digest(state.chain, history[window])
        state.windows_done = window + 1
    return state


def _advance_shard(token, builder, indices, ends, upto, history):
    """Worker entry point: one (shard, window) supervised job.

    ``history[w]`` is the shard's exchange-ordered inbox for window
    ``w`` (``w <= upto``).  Carrying the full history keeps the job
    pure — any worker, fresh or warm, produces the same bytes; the
    cache only short-circuits the replay.
    """
    key = (token, indices)
    state = _STATE.get(key)
    chain = _CHAIN_SEED
    for window in range(upto):
        chain = _chain_digest(chain, history[window])
    if (
        state is None or state.dirty
        or state.windows_done != upto or state.chain != chain
    ):
        for stale in [k for k in _STATE if k[0] != token]:
            del _STATE[stale]
        state = _replay(builder, indices, ends, history, upto)
        _STATE[key] = state

    by_index = {c.index: c for c in state.components}
    end = ends[upto]
    # Anything that raises past this point leaves half-advanced
    # simulators behind; the dirty flag forces the retry to replay.
    state.dirty = True
    for message in history[upto]:
        by_index[message.dst].deliver(message)
    outbox: list[SyncMessage] = []
    for component in state.components:
        outbox.extend(component.advance(end))
    state.windows_done = upto + 1
    state.chain = _chain_digest(state.chain, history[upto])
    state.dirty = False

    for message in outbox:
        if message.arrival_ns <= end:
            raise WorkloadError(
                f"lookahead violation: component {message.src} emitted a "
                f"message arriving at {message.arrival_ns} inside the "
                f"window ending at {end}"
            )
    if upto == len(ends) - 1:
        events = sum(c.events_executed() for c in state.components)
        results = tuple((c.index, c.finish()) for c in state.components)
        del _STATE[key]
        return (tuple(outbox), results, events)
    return (tuple(outbox), None, 0)


# ----------------------------------------------------------------------
# Coordinator side.
# ----------------------------------------------------------------------

_RUN_TOKENS = itertools.count(1)


def run_windowed(
    builder: Callable[[int], SyncComponent],
    count: int,
    plan: WindowPlan,
    shards: int = 1,
    workers: int = 1,
    policy=None,
    checkpoint=None,
    tracer=None,
    metrics=None,
    start_method: str | None = None,
    label: str = "sync",
) -> SyncRunResult:
    """Run ``count`` components through the windowed engine.

    ``builder(index)`` constructs component ``index``; it must be
    picklable (a module-level function or :func:`functools.partial`
    over picklable arguments) since workers rebuild components from it.
    ``shards``/``workers`` choose the partition and the pool exactly as
    in :func:`repro.experiments.fanin.run_fanin_sharded`; ``policy``,
    ``checkpoint`` and ``tracer`` thread through the supervised runner
    (the tracer receives one ``shard.window`` record per barrier, and a
    checkpointed run resumes window-by-window).  ``metrics`` (a
    :class:`~repro.obs.metrics.MetricsRegistry`) gains the
    ``sim.sync.windows`` / ``sim.sync.exchanged_events`` counters.
    """
    from repro.parallel import ParallelRunner, _require_all_ok
    from repro.supervise.checkpoint import job_key

    splan = ShardPlan.round_robin(count, shards)
    ends = plan.window_ends()
    runner = ParallelRunner(workers, start_method=start_method, policy=policy)
    # The token namespaces worker caches per engine run; it is *not*
    # part of the checkpoint key (which must survive restarts).
    token = f"{os.getpid()}:{next(_RUN_TOKENS)}"
    scenario = job_key((label, count, plan, splan.shards))[:16]

    clock = [0]
    if tracer is not None:
        tracer.bind_clock(lambda: clock[0])

    histories: list[list[tuple[SyncMessage, ...]]] = [
        [] for _ in range(splan.shards)
    ]
    chains = [_CHAIN_SEED] * splan.shards
    pending: list[list[SyncMessage]] = [[] for _ in range(splan.shards)]
    finals: dict[int, object] = {}
    exchanged = 0
    events_executed = 0

    with runner.session() as session:
        for window, end in enumerate(ends):
            for shard in range(splan.shards):
                due = sorted(
                    (m for m in pending[shard] if m.arrival_ns <= end),
                    key=lambda m: m.key,
                )
                pending[shard] = [
                    m for m in pending[shard] if m.arrival_ns > end
                ]
                histories[shard].append(tuple(due))
                chains[shard] = _chain_digest(chains[shard], due)
            payloads = [
                (
                    token, builder, splan.assignments[shard],
                    ends, window, tuple(histories[shard]),
                )
                for shard in range(splan.shards)
            ]
            keys = [
                f"sync-{scenario}-s{shard}-w{window}-{chains[shard][:16]}"
                for shard in range(splan.shards)
            ]
            labels = [
                f"{label} window {window + 1}/{len(ends)} "
                f"shard {shard + 1}/{splan.shards}"
                for shard in range(splan.shards)
            ]
            returns = _require_all_ok(
                runner.map_outcomes(
                    _advance_shard, payloads,
                    checkpoint=checkpoint, labels=labels, keys=keys,
                    session=session,
                )
            )
            emitted: list[SyncMessage] = []
            for outbox, results, events in returns:
                emitted.extend(outbox)
                if results is not None:
                    finals.update(results)
                    events_executed += events
            for message in sorted(emitted, key=lambda m: m.key):
                if message.arrival_ns <= end:
                    raise WorkloadError(
                        f"lookahead violation at the exchange: "
                        f"{message.arrival_ns} <= window end {end}"
                    )
                if not 0 <= message.dst < count:
                    raise WorkloadError(
                        f"message addressed to unknown component "
                        f"{message.dst}"
                    )
                pending[splan.shard_of(message.dst)].append(message)
            exchanged += len(emitted)
            clock[0] = end
            if metrics is not None:
                metrics.counter("sim.sync.windows").inc()
                metrics.counter("sim.sync.exchanged_events").inc(
                    len(emitted)
                )
            if tracer is not None and tracer.enabled:
                tracer.shard_window(
                    window + 1, end, splan.shards, len(emitted)
                )
    # Messages still pending here would arrive beyond the horizon; the
    # serial run would not execute them either (run(until=horizon)), so
    # they are dropped symmetrically.
    return SyncRunResult(
        results=[finals[index] for index in range(count)],
        windows=len(ends),
        exchanged_events=exchanged,
        events_executed=events_executed,
    )
