"""Stores and resources for producer/consumer structuring.

- :class:`Store` — an unbounded (or capacity-bounded) FIFO of items.
  ``store.get()`` returns a waitable a process yields; it resumes with the
  next item.  ``store.put(item)`` never blocks for unbounded stores and
  wakes one waiter per item.
- :class:`Resource` — a counted resource (semaphore).  ``acquire()`` is a
  waitable; ``release()`` hands the slot to the next waiter FIFO.

Both preserve strict FIFO ordering among waiters, which keeps simulations
deterministic.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable

from repro.errors import SimulationError


class _GetOp:
    """Waitable returned by :meth:`Store.get`."""

    __slots__ = ("_store", "_resume")

    def __init__(self, store: "Store"):
        self._store = store
        self._resume: Callable[[Any], None] | None = None

    def _subscribe(self, resume: Callable[[Any], None]) -> None:
        self._resume = resume
        self._store._satisfy_getters()


class Store:
    """FIFO item store with blocking get and optional capacity.

    ``capacity=None`` means unbounded puts.  A bounded store raises on
    overflow rather than blocking the producer: in this code base bounded
    stores model hardware rings where overflow is a programming error that
    should surface loudly (backpressure is modelled explicitly by the NIC
    and TCP layers, not hidden inside the store).
    """

    def __init__(self, sim, capacity: int | None = None, name: str = ""):
        if capacity is not None and capacity <= 0:
            raise SimulationError(f"store capacity must be positive, got {capacity}")
        self._sim = sim
        self.name = name
        self.capacity = capacity
        self._items: deque[Any] = deque()
        self._getters: deque[_GetOp] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def waiting(self) -> int:
        """Number of processes blocked in get()."""
        return sum(1 for op in self._getters if op._resume is not None)

    def put(self, item: Any) -> None:
        """Append an item, waking the oldest waiting getter if any."""
        if self.capacity is not None and len(self._items) >= self.capacity:
            raise SimulationError(
                f"store {self.name!r} overflow (capacity {self.capacity})"
            )
        self._items.append(item)
        self._satisfy_getters()

    def get(self) -> _GetOp:
        """Return a waitable that resumes with the next item."""
        op = _GetOp(self)
        self._getters.append(op)
        return op

    def try_get(self) -> Any | None:
        """Non-blocking get: pop the next item or return None.

        Only valid when no processes are blocked in :meth:`get` — mixing
        the two would let a poll steal an item from a FIFO waiter.
        """
        if self._getters:
            raise SimulationError(
                f"try_get on store {self.name!r} while getters are waiting"
            )
        if self._items:
            return self._items.popleft()
        return None

    def _satisfy_getters(self) -> None:
        while self._items and self._getters:
            op = self._getters[0]
            if op._resume is None:
                # get() was called but the process has not yielded it yet;
                # it will re-run _satisfy_getters on subscribe.
                break
            self._getters.popleft()
            item = self._items.popleft()
            # Resume at the current instant, asynchronously, to avoid
            # reentrant process stepping from inside put().
            self._sim.call_after(0, lambda op=op, item=item: op._resume(item))


class _AcquireOp:
    """Waitable returned by :meth:`Resource.acquire`."""

    __slots__ = ("_resource", "_resume")

    def __init__(self, resource: "Resource"):
        self._resource = resource
        self._resume: Callable[[Any], None] | None = None

    def _subscribe(self, resume: Callable[[Any], None]) -> None:
        self._resume = resume
        self._resource._grant()


class Resource:
    """A counted resource with FIFO acquisition order."""

    def __init__(self, sim, capacity: int = 1, name: str = ""):
        if capacity <= 0:
            raise SimulationError(f"resource capacity must be positive, got {capacity}")
        self._sim = sim
        self.name = name
        self.capacity = capacity
        self._in_use = 0
        self._waiters: deque[_AcquireOp] = deque()

    @property
    def in_use(self) -> int:
        """Currently held slots."""
        return self._in_use

    @property
    def available(self) -> int:
        """Free slots."""
        return self.capacity - self._in_use

    def acquire(self) -> _AcquireOp:
        """Return a waitable that resumes (with None) once a slot is held."""
        op = _AcquireOp(self)
        self._waiters.append(op)
        return op

    def release(self) -> None:
        """Free a slot, granting it to the oldest waiter if any."""
        if self._in_use <= 0:
            raise SimulationError(f"release of un-acquired resource {self.name!r}")
        self._in_use -= 1
        self._grant()

    def _grant(self) -> None:
        while self._in_use < self.capacity and self._waiters:
            op = self._waiters[0]
            if op._resume is None:
                break
            self._waiters.popleft()
            self._in_use += 1
            self._sim.call_after(0, lambda op=op: op._resume(None))
