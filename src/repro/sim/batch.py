"""The vectorized batch pipeline: flat-array collection, bulk processing.

The legacy pipeline materializes one frozen-dataclass tree per counter
tick (six :class:`~repro.core.qstate.QueueSnapshot`, two
``TripleSnapshot``, one ``CounterSample``) and summarizes runs with
python loops over record objects.  At datacenter-sweep sampling rates
(tens of thousands of ticks per run) that object churn dominates the
whole pipeline.  This module is the batch stage behind
``--backend``/:class:`repro.config.ReproConfig`:

- :class:`SampleBatch` collects per-tick queue-state samples as flat
  integer columns (one ``append`` is nineteen list appends, no object
  construction) and answers window queries in bulk;
- :class:`LatencyBatch` flattens completion records into columns once
  and computes every window summary (latency, send latency, per-kind)
  with bulk operations;
- :class:`EstimateBatch` accumulates per-tick estimator updates
  (time, latency, throughput) as flat arrays for bulk post-analysis.

Two backends share these classes: ``python`` keeps the columns as flat
lists and reduces with the stock scalar code; ``numpy`` converts flushed
chunks to ``int64``/``float64`` ndarrays and reduces vectorized.

**The byte-identity contract.**  Backend selection must never change an
output byte.  Every bulk reduction here is therefore chosen to be
*provably* equal to its scalar twin, not approximately equal:

- window selection uses ``searchsorted``/``bisect`` over the
  monotonically non-decreasing time column — set-identical to the
  scalar ``start <= t <= end`` filter;
- integer sums use exact ``int64`` arithmetic (guarded against
  overflow, falling back to python's arbitrary precision);
- float sums use ``np.add.accumulate`` — defined as the *sequential*
  left-to-right fold, bit-identical to a python accumulation loop —
  never ``np.sum``, whose pairwise summation rounds differently;
- the window *estimate* itself re-materializes the two boundary
  samples and calls the scalar :func:`~repro.analysis.offline.
  estimate_between`, so the arithmetic is the same code on the same
  ints.

``tests/sim/test_batch.py`` fuzzes these identities and
``tests/perf/test_equivalence.py`` pins whole-run digests per backend.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right

from repro.errors import WorkloadError
from repro.loadgen.stats import LatencySummary, percentile, summarize

#: Rows buffered as plain python lists before a flush converts them to
#: the backend's column representation.  Power of two, large enough to
#: amortize ndarray construction, small enough to bound the unconverted
#: tail a query has to fold in.
FLUSH_CHUNK_ROWS = 1024

_SAMPLE_FIELDS = 18  # 2 endpoints x 3 queues x (time, total, integral)


def _np():
    import numpy

    return numpy


def _sequential_float_sum(np, values) -> float:
    """Left-to-right float64 fold, bit-identical to a python loop.

    ``np.add.accumulate`` applies the ufunc sequentially (``r[i] =
    r[i-1] + a[i]``), unlike ``np.sum``'s pairwise tree — so the final
    element is exactly what ``for x in values: total += x`` computes.
    """
    if len(values) == 0:
        return 0.0
    return float(np.add.accumulate(values)[-1])


def _exact_int_sum(np, ordered) -> int:
    """Exact sum of a sorted non-negative int64 array.

    ``int64`` accumulation is exact until it overflows — and overflow
    would wrap *silently*, diverging from python's arbitrary-precision
    sum.  The guard is conservative: if the largest element times the
    count cannot be represented, fall back to the python sum.
    """
    count = len(ordered)
    if count == 0:
        return 0
    if int(ordered[-1]) * count < 2**62:
        return int(np.add.accumulate(ordered)[-1])
    return sum(int(v) for v in ordered)


def bulk_summarize(values, backend: str) -> LatencySummary:
    """:func:`~repro.loadgen.stats.summarize`, bulk-reduced.

    ``values`` is a flat sequence (list or ndarray) of latency samples.
    The numpy path reproduces the scalar formulas term for term: exact
    integer mean numerator, float64 variance terms folded in sorted
    order.  The python backend defers to the scalar implementation —
    its win is on the collection side, not the reduction.
    """
    if backend != "numpy":
        if not isinstance(values, list):
            values = list(values)
        return summarize(values)
    np = _np()
    array = np.asarray(values)
    if array.size == 0:
        return LatencySummary.empty()
    ordered = np.sort(array)
    count = int(ordered.size)
    if ordered.dtype.kind in "iu":
        mean = _exact_int_sum(np, ordered) / count
    else:
        mean = _sequential_float_sum(np, ordered) / count
    import math

    deviations = (ordered.astype(np.float64) - mean) ** 2
    variance = _sequential_float_sum(np, deviations) / count
    return LatencySummary(
        count=count,
        mean_ns=mean,
        p50_ns=_rank_value(ordered, count, 0.50),
        p90_ns=_rank_value(ordered, count, 0.90),
        p99_ns=_rank_value(ordered, count, 0.99),
        max_ns=float(ordered[-1]),
        stddev_ns=math.sqrt(variance),
    )


def _rank_value(ordered, count: int, fraction: float) -> float:
    """Nearest-rank percentile on an ascending array (scalar twin:
    :func:`repro.loadgen.stats.percentile`)."""
    import math

    rank = min(count - 1, max(0, math.ceil(fraction * count) - 1))
    return float(ordered[rank])


class SampleBatch:
    """Columnar per-tick queue-state samples for one collector.

    Row layout: ``times[i]`` plus eighteen ints in ``flat[18*i :
    18*i+18]`` — client then server, each three queues ``(unacked,
    unread, ackdelay)`` of three ints ``(time, total, integral)`` (the
    ``TripleSnapshot``-pair of the legacy
    :class:`~repro.analysis.counters.CounterSample`, flattened).

    Appends go to plain python lists; every :data:`FLUSH_CHUNK_ROWS`
    rows a *flush* converts the pending chunk into the backend's column
    store (``flushes`` counts them — surfaced as the
    ``sim.batch.flushes`` metric).  Queries fold the flushed chunks and
    the pending tail together, so a batch is always fully queryable.
    """

    __slots__ = (
        "backend", "flushes", "_times", "_pending", "_chunks", "_cached"
    )

    def __init__(self, backend: str):
        if backend not in ("python", "numpy"):
            raise WorkloadError(
                f"batch backend must be 'python' or 'numpy', got {backend!r}"
            )
        self.backend = backend
        self.flushes = 0
        self._times: list[int] = []   # monotone; kept flat for bisect
        self._pending: list[int] = []  # stride-12 row tail
        self._chunks: list = []        # flushed backend columns
        self._cached = None            # materialized CounterSample list

    # ------------------------------------------------------------------
    # Collection.
    # ------------------------------------------------------------------

    def append(self, now: int, client, server) -> None:
        """Record one sample tick from two endpoints' queue states.

        Equivalent to capturing the legacy ``CounterSample`` — each
        queue state is brought forward (``track(0)``) exactly as
        ``snapshot()`` would, then its three ints land in the row.
        """
        self._times.append(now)
        row = self._pending
        client.qs_unacked.append_snapshot(row)
        client.qs_unread.append_snapshot(row)
        client.qs_ackdelay.append_snapshot(row)
        server.qs_unacked.append_snapshot(row)
        server.qs_unread.append_snapshot(row)
        server.qs_ackdelay.append_snapshot(row)
        self._cached = None
        if len(row) >= FLUSH_CHUNK_ROWS * _SAMPLE_FIELDS:
            self.flush()

    def flush(self) -> None:
        """Convert pending rows into the backend column store."""
        if not self._pending:
            return
        if self.backend == "numpy":
            np = _np()
            chunk = np.array(self._pending, dtype=np.int64).reshape(
                -1, _SAMPLE_FIELDS
            )
        else:
            chunk = self._pending
        self._chunks.append(chunk)
        self._pending = []
        self.flushes += 1

    # ------------------------------------------------------------------
    # Bulk queries.
    # ------------------------------------------------------------------

    @property
    def sample_count(self) -> int:
        """Rows recorded so far."""
        return len(self._times)

    def window_bounds(self, start_ns: int, end_ns: int) -> tuple[int, int]:
        """Index half-open range of samples with ``start <= t <= end``.

        The time column is non-decreasing (the collector samples in
        event order), so a bisection is set-identical to the scalar
        filter ``[s for s in samples if start <= s.time <= end]`` —
        O(log n) against its O(n), on both backends.
        """
        return (
            bisect_left(self._times, start_ns),
            bisect_right(self._times, end_ns),
        )

    def row(self, index: int) -> tuple[int, tuple[int, ...]]:
        """``(time, twelve-int row)`` for one sample, from any chunk."""
        if index < 0 or index >= len(self._times):
            raise WorkloadError(
                f"sample index {index} out of range 0..{len(self._times) - 1}"
            )
        position = index
        for chunk in self._chunks:
            rows = (
                len(chunk)
                if self.backend == "numpy"
                else len(chunk) // _SAMPLE_FIELDS
            )
            if position < rows:
                if self.backend == "numpy":
                    values = tuple(int(v) for v in chunk[position])
                else:
                    base = position * _SAMPLE_FIELDS
                    values = tuple(chunk[base:base + _SAMPLE_FIELDS])
                return self._times[index], values
            position -= rows
        base = position * _SAMPLE_FIELDS
        return self._times[index], tuple(
            self._pending[base:base + _SAMPLE_FIELDS]
        )

    def materialize(self, index: int):
        """One row as a legacy :class:`~repro.analysis.counters.
        CounterSample` (identical values, by construction)."""
        from repro.analysis.counters import CounterSample, TripleSnapshot
        from repro.core.qstate import QueueSnapshot

        time, row = self.row(index)

        def triple(offset: int) -> TripleSnapshot:
            return TripleSnapshot(
                unacked=QueueSnapshot(row[offset], row[offset + 1], row[offset + 2]),
                unread=QueueSnapshot(row[offset + 3], row[offset + 4], row[offset + 5]),
                ackdelay=QueueSnapshot(
                    row[offset + 6], row[offset + 7], row[offset + 8]
                ),
            )

        return CounterSample(time=time, client=triple(0), server=triple(9))

    def samples(self) -> list:
        """The full legacy sample list, materialized lazily and cached.

        Compatibility surface for consumers that iterate samples; the
        hot summarize path never calls this.
        """
        if self._cached is None:
            self._cached = [
                self.materialize(index) for index in range(len(self._times))
            ]
        return self._cached

    def window_estimate(self, start_ns: int, end_ns: int):
        """:func:`~repro.analysis.offline.window_estimate`, bulk-selected.

        Bisect the window bounds in bulk, then re-materialize exactly
        the two boundary samples and hand them to the scalar
        :func:`~repro.analysis.offline.estimate_between` — identical
        arithmetic on identical ints, without the O(n) object filter.
        """
        from repro.analysis.offline import estimate_between
        from repro.errors import EstimationError

        lo, hi = self.window_bounds(start_ns, end_ns)
        inside = hi - lo
        if inside < 2:
            raise EstimationError(
                f"need at least two samples in [{start_ns}, {end_ns}], "
                f"have {inside}"
            )
        return estimate_between(self.materialize(lo), self.materialize(hi - 1))


class LatencyBatch:
    """Completion records flattened into columns, summarized in bulk.

    Built once per run at summarize time: one pass over the per-
    connection record lists (connection-major, record order — exactly
    the legacy iteration order) extracts ``completed_at``,
    ``latency_ns``, ``send_latency_ns``, and an interned kind code per
    record.  Every subsequent window/kind summary is a bulk mask +
    :func:`bulk_summarize`, replacing the legacy per-summary python
    loops over record objects.
    """

    __slots__ = ("backend", "_completed", "_latency", "_send", "_kind",
                 "_kind_names")

    def __init__(self, backend: str):
        if backend not in ("python", "numpy"):
            raise WorkloadError(
                f"batch backend must be 'python' or 'numpy', got {backend!r}"
            )
        self.backend = backend
        self._completed: list[int] = []
        self._latency: list[int] = []
        self._send: list[int] = []
        self._kind: list[int] = []
        self._kind_names: dict[str, int] = {}

    @classmethod
    def from_connections(cls, record_lists, backend: str) -> "LatencyBatch":
        """Flatten per-connection ``CompletionRecord`` lists into columns."""
        batch = cls(backend)
        completed = batch._completed
        latency = batch._latency
        send = batch._send
        kind_col = batch._kind
        kinds = batch._kind_names
        for records in record_lists:
            for record in records:
                completed.append(record.completed_at)
                latency.append(record.latency_ns)
                send.append(record.send_latency_ns)
                code = kinds.get(record.kind)
                if code is None:
                    code = kinds.setdefault(record.kind, len(kinds))
                kind_col.append(code)
        return batch

    def __len__(self) -> int:
        return len(self._completed)

    def window_summaries(
        self, start_ns: int, end_ns: int, kinds=("SET", "GET")
    ) -> tuple[int, LatencySummary, LatencySummary, dict]:
        """``(count, latency, send_latency, per_kind)`` over a window.

        Matches the legacy path byte for byte: the window mask is the
        same closed-interval comparison, each summary reduces the same
        multiset of ints, and ``per_kind`` contains exactly the kinds
        with at least one sample, in the order given.
        """
        if self.backend == "numpy":
            np = _np()
            completed = np.asarray(self._completed, dtype=np.int64)
            mask = (completed >= start_ns) & (completed <= end_ns)
            latency = np.asarray(self._latency, dtype=np.int64)[mask]
            send = np.asarray(self._send, dtype=np.int64)[mask]
            kind_col = np.asarray(self._kind, dtype=np.int64)[mask]
            per_kind = {}
            for kind in kinds:
                code = self._kind_names.get(kind)
                if code is None:
                    continue
                kind_latency = latency[kind_col == code]
                if kind_latency.size:
                    per_kind[kind] = bulk_summarize(kind_latency, self.backend)
            return (
                int(latency.size),
                bulk_summarize(latency, self.backend),
                bulk_summarize(send, self.backend),
                per_kind,
            )
        latency, send, kind_col = [], [], []
        for position, completed in enumerate(self._completed):
            if start_ns <= completed <= end_ns:
                latency.append(self._latency[position])
                send.append(self._send[position])
                kind_col.append(self._kind[position])
        per_kind = {}
        for kind in kinds:
            code = self._kind_names.get(kind)
            if code is None:
                continue
            kind_latency = [
                value
                for value, sample_kind in zip(latency, kind_col)
                if sample_kind == code
            ]
            if kind_latency:
                per_kind[kind] = summarize(kind_latency)
        return len(latency), summarize(latency), summarize(send), per_kind


class EstimateBatch:
    """Per-tick estimator updates as flat arrays.

    Attach one to an :class:`~repro.core.estimator.E2EEstimator`
    (``history=``) and every ``sample()`` lands here as three columns —
    time, latency (``nan`` when undefined), throughput — instead of a
    retained object per tick.  ``columns()`` exposes the raw columns
    (ndarrays under the numpy backend) for bulk analysis; ``summary()``
    is the standard bulk reduction over the defined updates.
    """

    __slots__ = ("backend", "times", "latencies", "throughputs")

    def __init__(self, backend: str):
        if backend not in ("python", "numpy"):
            raise WorkloadError(
                f"batch backend must be 'python' or 'numpy', got {backend!r}"
            )
        self.backend = backend
        self.times: list[int] = []
        self.latencies: list[float] = []
        self.throughputs: list[float] = []

    def append(self, time_ns: int, sample) -> None:
        """Record one estimator update (``None`` samples are skipped —
        they carry no interval yet)."""
        if sample is None:
            return
        self.times.append(time_ns)
        self.latencies.append(
            sample.latency_ns if sample.latency_ns is not None else float("nan")
        )
        self.throughputs.append(sample.throughput_per_sec)

    def __len__(self) -> int:
        return len(self.times)

    def columns(self):
        """``(times, latencies, throughputs)`` in backend representation."""
        if self.backend == "numpy":
            np = _np()
            return (
                np.asarray(self.times, dtype=np.int64),
                np.asarray(self.latencies, dtype=np.float64),
                np.asarray(self.throughputs, dtype=np.float64),
            )
        return self.times, self.latencies, self.throughputs

    def summary(self) -> dict:
        """Bulk reduction: update counts and defined-latency stats."""
        if self.backend == "numpy":
            np = _np()
            latencies = np.asarray(self.latencies, dtype=np.float64)
            defined = latencies[~np.isnan(latencies)]
            mean = (
                _sequential_float_sum(np, defined) / defined.size
                if defined.size
                else None
            )
            return {
                "updates": len(self.times),
                "defined": int(defined.size),
                "mean_latency_ns": mean,
            }
        defined = [value for value in self.latencies if value == value]
        total = 0.0
        for value in defined:
            total += value
        return {
            "updates": len(self.times),
            "defined": len(defined),
            "mean_latency_ns": total / len(defined) if defined else None,
        }
