"""Generator-based cooperative processes.

A simulation process is a Python generator.  It advances by ``yield``-ing
*waitables*:

- ``Timeout(delay)`` — resume after ``delay`` nanoseconds;
- an :class:`~repro.sim.events.Event` — resume when it triggers, receiving
  the trigger value;
- another :class:`Process` — resume when it terminates, receiving its
  return value;
- a store operation from :mod:`repro.sim.resources` (``Store.get()`` etc.).

Anything yielded must expose ``_subscribe(resume)``, where ``resume`` is a
one-argument callable the waitable invokes (exactly once) to hand control
back.  Processes themselves are waitables, so parent/child structuring is
free.
"""

from __future__ import annotations

from typing import Any, Callable, Generator

from repro.errors import ProcessError


class Timeout:
    """Waitable that resumes the process after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, delay: int):
        if delay < 0:
            raise ProcessError(f"negative timeout {delay}")
        self.delay = delay

    def _subscribe_with_sim(self, sim, resume: Callable[[Any], None]) -> None:
        sim.call_after(self.delay, lambda: resume(None))

    def __repr__(self) -> str:
        return f"Timeout({self.delay})"


class Process:
    """A running simulation process wrapping a generator.

    The process starts automatically: its first step is scheduled at the
    current simulated instant.  When the generator returns, the process's
    completion event fires with the return value, waking any process that
    yielded this one.
    """

    __slots__ = ("_sim", "_generator", "name", "_done", "_failure")

    def __init__(self, sim, generator: Generator, name: str | None = None):
        if not hasattr(generator, "send"):
            raise ProcessError(
                f"Process needs a generator, got {type(generator).__name__} "
                "(did you forget to call the generator function?)"
            )
        from repro.sim.events import Event

        self._sim = sim
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._done = Event(sim, name=f"{self.name}.done")
        self._failure: BaseException | None = None
        sim.call_after(0, lambda: self._step(None))

    # ------------------------------------------------------------------
    # State.
    # ------------------------------------------------------------------

    @property
    def alive(self) -> bool:
        """True until the generator returns or raises."""
        return not self._done.triggered

    @property
    def result(self) -> Any:
        """The generator's return value (None until completion)."""
        return self._done.value

    @property
    def failure(self) -> BaseException | None:
        """The exception that killed the process, if any."""
        return self._failure

    # ------------------------------------------------------------------
    # Stepping.
    # ------------------------------------------------------------------

    def _step(self, value: Any) -> None:
        if self._done.triggered:
            # A waitable resumed us after interrupt()/termination — e.g.
            # a timeout that was already in flight.  Drop it silently;
            # the generator is closed.
            return
        try:
            target = self._generator.send(value)
        except StopIteration as stop:
            self._done.trigger(stop.value)
            return
        except BaseException as exc:
            # Record and re-raise: a crashing process is a bug in the
            # simulation script, not a condition to paper over.
            self._failure = exc
            self._done.trigger(None)
            raise
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        if isinstance(target, Timeout):
            target._subscribe_with_sim(self._sim, self._step)
        elif hasattr(target, "_subscribe"):
            target._subscribe(self._step)
        else:
            raise ProcessError(
                f"process {self.name!r} yielded non-waitable "
                f"{type(target).__name__}: {target!r}"
            )

    # Protocol: a Process is itself waitable (resumes with its result).
    def _subscribe(self, resume: Callable[[Any], None]) -> None:
        self._done.add_callback(resume)

    def interrupt(self) -> None:
        """Forcefully terminate the process.

        The generator is closed (its pending ``yield`` raises
        ``GeneratorExit``), and the completion event fires with None.
        """
        if self._done.triggered:
            return
        self._generator.close()
        self._done.trigger(None)

    def __repr__(self) -> str:
        state = "alive" if self.alive else "done"
        return f"<Process {self.name!r} {state}>"
