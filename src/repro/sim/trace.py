"""Lightweight trace recording.

Components emit ``(time, source, event, detail)`` records through a shared
:class:`TraceRecorder`.  Tracing is off by default and costs one attribute
check per emit when disabled, so instrumented hot paths stay cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator


@dataclass(frozen=True)
class TraceRecord:
    """One trace record."""

    time: int
    source: str
    event: str
    detail: Any = None


class TraceRecorder:
    """Collects :class:`TraceRecord` entries when enabled."""

    def __init__(self, sim, enabled: bool = False):
        self._sim = sim
        self.enabled = enabled
        self.records: list[TraceRecord] = []

    def emit(self, source: str, event: str, detail: Any = None) -> None:
        """Record an event (no-op when disabled)."""
        if self.enabled:
            self.records.append(TraceRecord(self._sim.now, source, event, detail))

    def filter(self, source: str | None = None, event: str | None = None) -> Iterator[TraceRecord]:
        """Iterate records matching the given source and/or event name."""
        for record in self.records:
            if source is not None and record.source != source:
                continue
            if event is not None and record.event != event:
                continue
            yield record

    def clear(self) -> None:
        """Drop all recorded entries."""
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)
