"""Lightweight per-host trace recording (legacy tap API).

Components emit ``(time, source, event, detail)`` records through a
shared :class:`TraceRecorder`.  Tracing is off by default and costs one
attribute check per emit when disabled, so instrumented hot paths stay
cheap.

This is the legacy, per-host view; the unified observability layer is
:mod:`repro.obs`.  A recorder constructed with ``forward=`` bridges the
two: every emitted event is also recorded as a typed ``tcp.event``
record on the run's :class:`~repro.obs.tracer.Tracer`, so the old taps
(socket tx/rx, batching holds, window probes) appear in the same
``repro-trace-v1`` stream as queue samples, estimates, and toggler
decisions.  Forwarding is independent of the local ``enabled`` flag:
``host.trace.enabled`` still controls only the in-memory per-host list
the existing tests and debuggers read.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator


@dataclass(frozen=True)
class TraceRecord:
    """One trace record."""

    time: int
    source: str
    event: str
    detail: Any = None


class TraceRecorder:
    """Collects :class:`TraceRecord` entries when enabled.

    ``forward`` is an optional :class:`~repro.obs.tracer.Tracer`; when
    given (and itself enabled) every emit is mirrored as a ``tcp.event``
    record on the unified stream, regardless of this recorder's own
    ``enabled`` flag.
    """

    __slots__ = ("_sim", "enabled", "records", "forward")

    def __init__(self, sim, enabled: bool = False, forward=None):
        self._sim = sim
        self.enabled = enabled
        self.records: list[TraceRecord] = []
        # Public so hot emit sites can test `trace.enabled or
        # (trace.forward is not None and trace.forward.enabled)` inline
        # and skip building the detail payload when nothing listens.
        self.forward = forward

    def emit(self, source: str, event: str, detail: Any = None) -> None:
        """Record an event (no-op when disabled and not forwarding)."""
        if self.enabled:
            self.records.append(TraceRecord(self._sim.now, source, event, detail))
        forward = self.forward
        if forward is not None and forward.enabled:
            forward.tcp_event(source, event, detail)

    def filter(self, source: str | None = None, event: str | None = None) -> Iterator[TraceRecord]:
        """Iterate records matching the given source and/or event name."""
        for record in self.records:
            if source is not None and record.source != source:
                continue
            if event is not None and record.event != event:
                continue
            yield record

    def clear(self) -> None:
        """Drop all recorded entries."""
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)
