"""Named, seeded random streams.

Every source of randomness in a simulation draws from its own named stream
so that adding a new random consumer does not perturb the draws seen by
existing ones — a prerequisite for meaningful A/B comparisons (e.g. the
same arrival sequence with Nagle on vs. off).

Stream seeds are derived deterministically from (root seed, stream name).
"""

from __future__ import annotations

import hashlib
import math
import random


class RngStream(random.Random):
    """A ``random.Random`` with convenience samplers used by the simulator."""

    def exponential_ns(self, mean_ns: float) -> int:
        """Sample an exponential delay (integer ns) with the given mean."""
        if mean_ns <= 0:
            raise ValueError(f"mean must be positive, got {mean_ns}")
        return max(0, round(-mean_ns * math.log(1.0 - self.random())))

    def uniform_ns(self, low_ns: int, high_ns: int) -> int:
        """Sample a uniform integer delay in [low, high]."""
        if low_ns > high_ns:
            raise ValueError(f"empty range [{low_ns}, {high_ns}]")
        return self.randint(low_ns, high_ns)

    def bernoulli(self, probability: float) -> bool:
        """True with the given probability."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability out of range: {probability}")
        return self.random() < probability


class RngRegistry:
    """Factory of independent named :class:`RngStream` instances.

    Asking for the same name twice returns the same stream object, so a
    stream's state is shared among the components that legitimately share
    it and isolated from everyone else.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams: dict[str, RngStream] = {}

    def stream(self, name: str) -> RngStream:
        """Get or create the stream with the given name."""
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        digest = hashlib.sha256(f"{self.seed}/{name}".encode()).digest()
        stream = RngStream(int.from_bytes(digest[:8], "big"))
        self._streams[name] = stream
        return stream

    def __contains__(self, name: str) -> bool:
        return name in self._streams
