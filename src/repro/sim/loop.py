"""The discrete-event loop.

:class:`Simulator` owns the clock and a heap of scheduled callbacks.  Time
never moves backwards; callbacks scheduled for the same instant run in the
order they were scheduled (FIFO within a timestamp), which keeps runs
deterministic regardless of heap internals.
"""

from __future__ import annotations

import heapq
from typing import Callable

from repro.errors import SimulationError


class _Scheduled:
    """A heap entry: (time, sequence number, callback).

    The sequence number breaks ties so same-time callbacks preserve
    scheduling order, and entries can be cancelled in O(1) by flipping
    :attr:`cancelled` rather than rebuilding the heap.
    """

    __slots__ = ("time", "seq", "callback", "cancelled")

    def __init__(self, time: int, seq: int, callback: Callable[[], None]):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def __lt__(self, other: "_Scheduled") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def cancel(self) -> None:
        """Mark this entry so the loop skips it when popped."""
        self.cancelled = True


class Simulator:
    """A deterministic discrete-event simulator with an integer-ns clock.

    Typical use::

        sim = Simulator()
        sim.call_after(1000, lambda: print("at t=1000ns"))
        sim.run()

    Processes (see :mod:`repro.sim.process`) are spawned via
    :meth:`spawn`, which exists here only as a convenience re-export to
    avoid import cycles in user code.
    """

    def __init__(self, start_time: int = 0):
        self._now = start_time
        self._heap: list[_Scheduled] = []
        self._seq = 0
        self._running = False
        self._stopped = False

    # ------------------------------------------------------------------
    # Clock.
    # ------------------------------------------------------------------

    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    # ------------------------------------------------------------------
    # Scheduling.
    # ------------------------------------------------------------------

    def call_at(self, time: int, callback: Callable[[], None]) -> _Scheduled:
        """Schedule ``callback`` to run at absolute simulated ``time``.

        Returns a handle whose ``cancel()`` prevents the callback from
        running.  Scheduling in the past is an error.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} (now is t={self._now})"
            )
        entry = _Scheduled(time, self._seq, callback)
        self._seq += 1
        heapq.heappush(self._heap, entry)
        return entry

    def call_after(self, delay: int, callback: Callable[[], None]) -> _Scheduled:
        """Schedule ``callback`` to run ``delay`` nanoseconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.call_at(self._now + delay, callback)

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Run the single next scheduled callback.

        Returns False when the heap is exhausted (nothing ran).
        """
        while self._heap:
            entry = heapq.heappop(self._heap)
            if entry.cancelled:
                continue
            self._now = entry.time
            entry.callback()
            return True
        return False

    def run(self, until: int | None = None) -> None:
        """Run until the event heap is empty, or until simulated time would
        pass ``until`` (the clock is then advanced to exactly ``until``).
        """
        if self._running:
            raise SimulationError("simulator is already running (reentrant run)")
        self._running = True
        self._stopped = False
        try:
            while self._heap and not self._stopped:
                entry = self._heap[0]
                if entry.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and entry.time > until:
                    break
                heapq.heappop(self._heap)
                self._now = entry.time
                entry.callback()
            if until is not None and not self._stopped and self._now < until:
                self._now = until
        finally:
            self._running = False

    def stop(self) -> None:
        """Request that :meth:`run` return after the current callback."""
        self._stopped = True

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) scheduled entries."""
        return sum(1 for entry in self._heap if not entry.cancelled)

    # ------------------------------------------------------------------
    # Process convenience.
    # ------------------------------------------------------------------

    def spawn(self, generator, name: str | None = None):
        """Spawn a generator as a :class:`~repro.sim.process.Process`."""
        from repro.sim.process import Process

        return Process(self, generator, name=name)
