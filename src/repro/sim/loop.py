"""The discrete-event loop.

:class:`Simulator` owns the clock and a heap of scheduled callbacks.  Time
never moves backwards; callbacks scheduled for the same instant run in the
order they were scheduled (FIFO within a timestamp), which keeps runs
deterministic regardless of heap internals.

Hot-path layout: heap entries are plain ``(time, seq, callback, handle)``
tuples, so every sift compares ``(time, seq)`` at C speed instead of
calling a Python ``__lt__`` (``seq`` is unique, so the callback and handle
are never compared).  Cancellation flips a flag on the lightweight
:class:`ScheduleHandle`; cancelled entries are skipped lazily on pop, and
the heap is compacted in place once dead entries outnumber live ones, so
cancel-heavy workloads (TCP retransmit/delack timers are armed and
disarmed per segment) cannot bloat the heap.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from itertools import count
from typing import Callable

from repro.errors import SimulationError, WatchdogError

# Compact once at least this many cancelled entries linger in the heap
# *and* they outnumber the live ones.  The floor keeps tiny heaps from
# compacting constantly; the ratio bounds wasted heap memory and pop
# work at 2x regardless of workload.
_COMPACT_MIN_DEAD = 64


class ScheduleHandle:
    """Cancellation handle for one scheduled callback.

    ``_done`` doubles as "consumed": the loop flips it just before the
    callback runs, so ``cancel()`` after execution is a no-op and a
    double ``cancel()`` cannot double-decrement the live-entry count.
    """

    __slots__ = ("_sim", "_done")

    def __init__(self, sim: "Simulator"):
        self._sim = sim
        self._done = False

    @property
    def cancelled(self) -> bool:
        """Whether this entry will no longer fire (cancelled or already ran)."""
        return self._done

    def cancel(self) -> None:
        """Prevent the callback from running (no-op if it already did)."""
        if not self._done:
            self._done = True
            self._sim._note_cancel()


class Simulator:
    """A deterministic discrete-event simulator with an integer-ns clock.

    Typical use::

        sim = Simulator()
        sim.call_after(1000, lambda: print("at t=1000ns"))
        sim.run()

    Processes (see :mod:`repro.sim.process`) are spawned via
    :meth:`spawn`, which exists here only as a convenience re-export to
    avoid import cycles in user code.
    """

    def __init__(self, start_time: int = 0):
        # Public plain attribute, not a property: the clock is read on
        # every TRACK call and trace emit across the codebase, and an
        # attribute load is several times cheaper than a property call.
        # Only the dispatch loop writes it.
        self.now = start_time
        # Entries: (time, seq, callback, handle).
        self._heap: list[tuple[int, int, Callable[[], None], ScheduleHandle]] = []
        self._seq = count()  # FIFO tie-breaker within a timestamp
        self._dead = 0  # cancelled entries still sitting in the heap
        self._running = False
        self._stopped = False
        self._executed = 0
        self._event_budget: int | None = None

    # ------------------------------------------------------------------
    # Watchdog budget.
    # ------------------------------------------------------------------

    @property
    def events_executed(self) -> int:
        """Callbacks run so far (the watchdog's work measure)."""
        return self._executed

    def set_event_budget(self, max_events: int | None) -> None:
        """Cap total executed callbacks; ``None`` removes the cap.

        Exceeding the cap raises :class:`~repro.errors.WatchdogError`
        from :meth:`run`/:meth:`step` *before* the over-budget callback
        fires — the fail-fast path for runaway configurations whose
        event count explodes while simulated time barely advances.
        """
        if max_events is not None and max_events <= 0:
            raise SimulationError(
                f"event budget must be positive, got {max_events}"
            )
        self._event_budget = max_events

    def _budget_exceeded(self, executed: int | None = None) -> WatchdogError:
        count = self._executed if executed is None else executed
        return WatchdogError(
            f"event budget exhausted: {count} callbacks executed "
            f"(budget {self._event_budget}) at t={self.now}ns"
        )

    # ------------------------------------------------------------------
    # Scheduling.
    # ------------------------------------------------------------------

    def call_at(self, time: int, callback: Callable[[], None]) -> ScheduleHandle:
        """Schedule ``callback`` to run at absolute simulated ``time``.

        Returns a handle whose ``cancel()`` prevents the callback from
        running.  Scheduling in the past is an error.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} (now is t={self.now})"
            )
        handle = ScheduleHandle.__new__(ScheduleHandle)
        handle._sim = self
        handle._done = False
        heappush(self._heap, (time, next(self._seq), callback, handle))
        return handle

    def call_after(self, delay: int, callback: Callable[[], None]) -> ScheduleHandle:
        """Schedule ``callback`` to run ``delay`` nanoseconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        handle = ScheduleHandle.__new__(ScheduleHandle)
        handle._sim = self
        handle._done = False
        heappush(self._heap, (self.now + delay, next(self._seq), callback, handle))
        return handle

    def _note_cancel(self) -> None:
        """Account one cancellation; compact the heap when mostly dead."""
        self._dead += 1
        if self._dead >= _COMPACT_MIN_DEAD and self._dead * 2 >= len(self._heap):
            # In-place so loops holding a reference to the list see the
            # compacted heap (run() aliases it locally).
            self._heap[:] = [e for e in self._heap if not e[3]._done]
            heapify(self._heap)
            self._dead = 0

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Run the single next scheduled callback.

        Returns False when the heap is exhausted (nothing ran).
        """
        heap = self._heap
        while heap:
            entry = heap[0]
            if entry[3]._done:
                heappop(heap)
                self._dead -= 1
                continue
            if (
                self._event_budget is not None
                and self._executed >= self._event_budget
            ):
                raise self._budget_exceeded()
            heappop(heap)
            entry[3]._done = True
            self.now = entry[0]
            self._executed += 1
            entry[2]()
            return True
        return False

    def run(self, until: int | None = None) -> None:
        """Run until the event heap is empty, or until simulated time would
        pass ``until`` (the clock is then advanced to exactly ``until``).
        """
        if self._running:
            raise SimulationError("simulator is already running (reentrant run)")
        self._running = True
        self._stopped = False
        heap = self._heap
        pop = heappop
        budget = self._event_budget
        executed = self._executed
        try:
            if until is None:
                while heap and not self._stopped:
                    entry = heap[0]
                    if entry[3]._done:
                        pop(heap)
                        self._dead -= 1
                        continue
                    if budget is not None and executed >= budget:
                        raise self._budget_exceeded(executed)
                    pop(heap)
                    entry[3]._done = True
                    self.now = entry[0]
                    executed += 1
                    entry[2]()
            else:
                while heap and not self._stopped:
                    entry = heap[0]
                    if entry[3]._done:
                        pop(heap)
                        self._dead -= 1
                        continue
                    if entry[0] > until:
                        break
                    if budget is not None and executed >= budget:
                        raise self._budget_exceeded(executed)
                    pop(heap)
                    entry[3]._done = True
                    self.now = entry[0]
                    executed += 1
                    entry[2]()
                if not self._stopped and self.now < until:
                    self.now = until
        finally:
            self._executed = executed
            self._running = False

    def stop(self) -> None:
        """Request that :meth:`run` return after the current callback."""
        self._stopped = True

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) scheduled entries."""
        return len(self._heap) - self._dead

    # ------------------------------------------------------------------
    # Process convenience.
    # ------------------------------------------------------------------

    def spawn(self, generator, name: str | None = None):
        """Spawn a generator as a :class:`~repro.sim.process.Process`."""
        from repro.sim.process import Process

        return Process(self, generator, name=name)
