"""Discrete-event simulation engine.

A small, deterministic, generator-based discrete-event kernel in the style
of SimPy, written from scratch for this reproduction.  The pieces:

- :class:`~repro.sim.loop.Simulator` — the event loop: a priority queue of
  timestamped callbacks with a monotonically advancing integer-nanosecond
  clock.
- :class:`~repro.sim.events.Event` — one-shot triggerable events processes
  can wait on.
- :class:`~repro.sim.process.Process` — cooperative processes written as
  Python generators that ``yield`` timeouts, events, other processes, or
  store operations.
- :mod:`~repro.sim.resources` — FIFO stores and counted resources.
- :mod:`~repro.sim.rng` — named, seeded random streams for reproducibility.
- :mod:`~repro.sim.trace` — lightweight trace recording for debugging and
  offline analysis.
"""

from repro.sim.events import Event
from repro.sim.loop import Simulator
from repro.sim.process import Process, Timeout
from repro.sim.resources import Resource, Store
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder

__all__ = [
    "Event",
    "Process",
    "Resource",
    "RngRegistry",
    "Simulator",
    "Store",
    "Timeout",
    "TraceRecorder",
]
