"""Intra-run sharding: partition one simulation, merge deterministically.

Campaign-level parallelism (:mod:`repro.parallel`) only helps when there
are many runs; a single large scenario — the fan-in experiments, the
buffer-sizing sweeps where *n* flows is the variable — still executes on
one core.  This module supplies the two primitives that let one run span
a worker pool without giving up determinism:

- :class:`ShardPlan` partitions a scenario's independent components
  (connections, hosts) into shards by a fixed rule, so the same
  ``(count, shards)`` always yields the same partition;
- :func:`merge_streams` recombines the shards' timestamped event
  streams into one totally-ordered stream whose order is **invariant to
  the partition**.

The determinism contract
------------------------

Merged order is ``(timestamp, component index, per-component
sequence)`` — note what is *absent*: the shard index.  A shard is an
execution placement, not an identity; keying the merge on it would make
output depend on how work was dealt out.  Because each component's
sub-simulation is seeded independently of the partition (its RNG
streams are named by *global* component index) and the merge key is
partition-free, the merged stream — and everything derived from it — is
byte-identical for every shard count, including the in-process serial
run.  ``tests/sim/test_shard.py`` fuzzes this; CI byte-diffs a
2-worker sharded fan-in against the serial one.

Ordering within the key is total by construction: a component's events
carry strictly increasing sequence numbers, and two events from
different components at the same timestamp order by component index.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from heapq import merge as _heap_merge

from repro.errors import WorkloadError


@dataclass(frozen=True)
class ShardPlan:
    """A fixed partition of ``count`` components into ``shards`` groups.

    Components are dealt round-robin (component ``i`` lands in shard
    ``i % shards``), so the partition depends only on ``(count,
    shards)`` — never on timing, hashing, or load.  Empty shards are
    dropped: asking for more shards than components yields one
    single-component shard each.
    """

    count: int
    shards: int
    assignments: tuple[tuple[int, ...], ...]

    @classmethod
    def round_robin(cls, count: int, shards: int) -> "ShardPlan":
        """Partition ``count`` components across ``shards`` groups."""
        if count < 1:
            raise WorkloadError(f"need at least one component, got {count}")
        if shards < 1:
            raise WorkloadError(f"shards must be >= 1, got {shards}")
        effective = min(shards, count)
        groups: list[list[int]] = [[] for _ in range(effective)]
        for index in range(count):
            groups[index % effective].append(index)
        return cls(
            count=count,
            shards=effective,
            assignments=tuple(tuple(group) for group in groups),
        )

    def shard_of(self, index: int) -> int:
        """Which shard a component landed in.

        Answered from the stored partition, not by re-deriving the
        round-robin rule — a plan constructed with a different placement
        policy (or a hand-built one) stays consistent with itself.
        """
        if not 0 <= index < self.count:
            raise WorkloadError(
                f"component {index} out of range 0..{self.count - 1}"
            )
        for shard, group in enumerate(self.assignments):
            if index in group:
                return shard
        raise WorkloadError(
            f"component {index} is missing from the stored partition"
        )


def merge_streams(streams):
    """Merge per-component event streams into one ordered stream.

    ``streams`` is an iterable of ``(component_index, events)`` pairs
    where ``events`` is a list of ``(timestamp, payload)`` tuples in
    that component's emission order (timestamps non-decreasing within a
    component).  Returns a list of ``(timestamp, component_index,
    sequence, payload)`` tuples in the contract order ``(timestamp,
    component index, sequence)``.

    Implemented as a k-way heap merge over per-component generators —
    O(total log k) — which is stable because each generator's keys are
    strictly increasing (the per-component sequence breaks timestamp
    ties within a component).
    """

    def keyed(component: int, events):
        previous = None
        for sequence, (timestamp, payload) in enumerate(events):
            if previous is not None and timestamp < previous:
                raise WorkloadError(
                    f"component {component} events out of order: "
                    f"{previous} -> {timestamp}"
                )
            previous = timestamp
            yield (timestamp, component, sequence, payload)

    ordered = sorted(streams, key=lambda pair: pair[0])
    seen: set[int] = set()
    for component, _events in ordered:
        # A component index appearing in two streams would interleave
        # two independent sequence counters under one key, silently
        # corrupting the total order — refuse instead.
        if component in seen:
            raise WorkloadError(
                f"component {component} appears in more than one stream"
            )
        seen.add(component)
    generators = [keyed(component, events) for component, events in ordered]
    return list(_heap_merge(*generators))


def merge_digest(merged) -> str:
    """SHA-256 fingerprint of a merged stream, order-sensitive.

    Two runs with the same fingerprint produced the same events in the
    same merged order — the checkable form of the determinism contract
    (a sorted-equal comparison would not notice a merge-order bug).
    """
    hasher = hashlib.sha256()
    for timestamp, component, sequence, payload in merged:
        hasher.update(
            f"{timestamp}:{component}:{sequence}:{payload!r}\n".encode()
        )
    return hasher.hexdigest()
