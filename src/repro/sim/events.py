"""One-shot events that simulation processes can wait on.

An :class:`Event` starts untriggered.  Processes yield it to block; when
some other code calls :meth:`Event.trigger`, every waiter is resumed (at the
current simulated instant) with the trigger value.  Triggering twice is an
error — create a fresh event per occurrence, or use
:class:`~repro.sim.resources.Store` for streams of items.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import SimulationError


class Event:
    """A one-shot, many-waiter event.

    Waiters registered after the event already triggered are resumed
    immediately (scheduled at the current instant), so there is no
    lost-wakeup race between checking and waiting.
    """

    __slots__ = ("_sim", "name", "_triggered", "_value", "_callbacks")

    def __init__(self, sim, name: str = ""):
        self._sim = sim
        self.name = name
        self._triggered = False
        self._value: Any = None
        self._callbacks: list[Callable[[Any], None]] = []

    @property
    def triggered(self) -> bool:
        """Whether :meth:`trigger` has been called."""
        return self._triggered

    @property
    def value(self) -> Any:
        """The value passed to :meth:`trigger`; None before triggering."""
        return self._value

    def trigger(self, value: Any = None) -> None:
        """Fire the event, resuming all waiters with ``value``."""
        if self._triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self._triggered = True
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            # Deliver asynchronously (same instant) so a trigger inside a
            # process cannot reentrantly resume another process mid-step.
            self._sim.call_after(0, lambda cb=callback: cb(value))

    def add_callback(self, callback: Callable[[Any], None]) -> None:
        """Invoke ``callback(value)`` when the event triggers.

        If the event already triggered the callback is scheduled to run
        at the current instant with the stored value.
        """
        if self._triggered:
            self._sim.call_after(0, lambda: callback(self._value))
        else:
            self._callbacks.append(callback)

    # Protocol used by Process when this object is yielded.
    def _subscribe(self, resume: Callable[[Any], None]) -> None:
        self.add_callback(resume)

    def __repr__(self) -> str:
        state = "triggered" if self._triggered else "pending"
        return f"<Event {self.name!r} {state}>"
