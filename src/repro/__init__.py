"""repro — Batching with End-to-End Performance Estimation (HotOS'25).

A full reproduction of the paper's system on a from-scratch simulated
TCP/IP stack:

- :mod:`repro.core` — the contribution: Little's-law queue states
  (TRACK/GETAVGS), the three-queue end-to-end estimator, the metadata
  exchange, the hints API, and dynamic batching control (ε-greedy
  toggling, AIMD batch limits).
- :mod:`repro.sim`, :mod:`repro.net`, :mod:`repro.host`,
  :mod:`repro.tcp` — the substrates: discrete-event engine, links/NICs
  (TSO, GRO, doorbell batching), CPU cores with utilization accounting,
  and a TCP stack with Nagle, delayed acks and auto-corking.
- :mod:`repro.apps`, :mod:`repro.loadgen` — the Redis-like key-value
  store and the Lancet-like load generator used by the evaluation.
- :mod:`repro.analysis`, :mod:`repro.analytic`,
  :mod:`repro.experiments` — offline counter analysis, the Figure 1
  closed-form model, and one driver per paper figure.

Quickstart::

    from repro import QueueState, get_avgs

    clock = lambda: now_ns
    qs = QueueState(clock)
    qs.track(+3)          # three requests arrived
    ...
    qs.track(-3)          # three departed
    avgs = get_avgs(snap_earlier, qs.snapshot())
    print(avgs.latency_ns, avgs.throughput_per_sec)
"""

from repro.core import (
    AimdBatchLimiter,
    E2EEstimator,
    EstimateSample,
    Ewma,
    HintSession,
    LatencyFirstPolicy,
    MetadataExchange,
    NagleToggler,
    PerfSample,
    QueueAverages,
    QueueSnapshot,
    QueueState,
    ThroughputUnderSloPolicy,
    TogglerConfig,
    get_avgs,
    try_get_avgs,
)
from repro.sim import Simulator

__version__ = "1.0.0"

__all__ = [
    "AimdBatchLimiter",
    "E2EEstimator",
    "EstimateSample",
    "Ewma",
    "HintSession",
    "LatencyFirstPolicy",
    "MetadataExchange",
    "NagleToggler",
    "PerfSample",
    "QueueAverages",
    "QueueSnapshot",
    "QueueState",
    "Simulator",
    "ThroughputUnderSloPolicy",
    "TogglerConfig",
    "get_avgs",
    "try_get_avgs",
    "__version__",
]
