"""Runtime configuration for the execution substrate.

:class:`ReproConfig` captures the knobs that select *how* a simulation
executes — never *what* it computes.  The two members today are the
batch-pipeline backend (see :mod:`repro.sim.batch`) and the intra-run
shard count (see :mod:`repro.sim.shard`).  Both are execution details
with a hard byte-identity contract: switching backend or shard count
must not change a single output byte, which is why neither lives on
:class:`~repro.loadgen.lancet.BenchConfig` (whose fields are part of
every result digest and cache key).

Backend resolution order:

1. an explicit name passed by the caller (``--backend`` on the CLI,
   ``backend=`` on :func:`~repro.loadgen.lancet.run_benchmark`);
2. the ``REPRO_BACKEND`` environment variable;
3. ``"legacy"`` — the per-object pipeline, unchanged from PR 5.

``"auto"`` resolves to ``"numpy"`` when numpy imports, else
``"python"`` — numpy is never a hard dependency, and the pure-python
batch backend is a complete fallback.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.errors import WorkloadError

#: Selectable backend names.  ``legacy`` is the per-object pipeline
#: (dataclass snapshots, python-loop summaries); ``python`` collects
#: into flat python lists; ``numpy`` collects into flat lists and
#: processes them as ndarray columns; ``auto`` picks numpy if present.
BACKENDS = ("legacy", "auto", "python", "numpy")

#: Environment variable consulted when no explicit backend is given.
BACKEND_ENV = "REPRO_BACKEND"

_numpy_available: bool | None = None


def numpy_available() -> bool:
    """Whether the numpy backend can be used (import probed once)."""
    global _numpy_available
    if _numpy_available is None:
        try:
            import numpy  # noqa: F401
        except ImportError:
            _numpy_available = False
        else:
            _numpy_available = True
    return _numpy_available


def resolve_backend(name: str | None = None) -> str:
    """Resolve a backend request to ``legacy``, ``python``, or ``numpy``.

    ``None`` consults ``REPRO_BACKEND`` and falls back to ``legacy``.
    Asking for ``numpy`` where numpy is not importable is an explicit
    error — silent degradation is reserved for ``auto``.
    """
    if name is None:
        name = os.environ.get(BACKEND_ENV) or "legacy"
    if name not in BACKENDS:
        raise WorkloadError(
            f"unknown backend {name!r}; pick from {', '.join(BACKENDS)}"
        )
    if name == "auto":
        return "numpy" if numpy_available() else "python"
    if name == "numpy" and not numpy_available():
        raise WorkloadError(
            "backend 'numpy' requested but numpy is not importable; "
            "use 'auto' to fall back to the pure-python batch backend"
        )
    return name


@dataclass(frozen=True)
class ReproConfig:
    """Execution-substrate selection for one run or campaign.

    ``backend`` — batch-pipeline backend name (see :data:`BACKENDS`);
    ``shards`` — intra-run shard count for decomposable scenarios
    (1 = no sharding).  Both are byte-identity-neutral by contract.
    """

    backend: str = "legacy"
    shards: int = 1

    def validate(self) -> None:
        """Raise on nonsensical parameters."""
        resolve_backend(self.backend)
        if self.shards < 1:
            raise WorkloadError(f"shards must be >= 1, got {self.shards}")

    def resolved_backend(self) -> str:
        """The concrete backend this config selects."""
        return resolve_backend(self.backend)
