"""Host composition: cores + NIC + softirq + TCP demux + cost model.

A :class:`Host` mirrors one of the paper's pinned-core machines: the
application thread runs on ``app_core`` and the network receive path on
``net_core``.  :class:`HostCosts` is the machine's cost model; the
``cpu_factor`` multiplier implements the Figure 2 virtual-machine client
(same workload, inflated per-operation CPU costs).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.errors import NetworkError
from repro.host.cpu import CpuCore
from repro.host.irq import SoftIrq
from repro.net.nic import Nic, NicConfig
from repro.net.packet import Packet, recycle_packet

if TYPE_CHECKING:
    from repro.tcp.socket import TcpSocket


@dataclass(frozen=True)
class HostCosts:
    """Per-operation CPU costs of a machine (nanoseconds).

    Receive path (charged to the net core by the softirq):

    - ``rx_irq_ns`` — per interrupt;
    - ``rx_delivery_ns`` — per (GRO-merged) *data* delivery: stack
      traversal, TCP receive handling, ack generation, socket wakeup and
      the IPI/scheduling work of waking the application;
    - ``rx_ack_ns`` — per pure-ack delivery (no payload, no wakeup —
      much cheaper than a data delivery);
    - ``rx_wire_packet_ns`` — per constituent wire packet (descriptor and
      DMA handling GRO cannot elide);
    - ``rx_byte_ns`` — per received byte (copy/checksum).

    Transmit path:

    - ``tx_syscall_ns`` — per send system call (app core);
    - ``tx_byte_ns`` — per sent byte copied into the socket buffer (app
      core);
    - ``tx_packet_ns`` — per stack-initiated transmission from softirq
      context, e.g. pure acks and Nagle-released tails (net core).

    Application event loop (charged to the app core):

    - ``wakeup_ns`` — per event-loop iteration (epoll_wait return, read
      syscall, output flush) — the β of Figure 1's cost model;
    - per-request costs (the α and c of Figure 1) live in the
      application configs, not here.
    """

    rx_irq_ns: int = 300
    rx_delivery_ns: int = 12_000
    rx_ack_ns: int = 800
    rx_wire_packet_ns: int = 100
    rx_byte_ns: float = 0.01
    tx_syscall_ns: int = 1_500
    tx_byte_ns: float = 0.05
    tx_packet_ns: int = 500
    wakeup_ns: int = 3_000

    def scaled(self, cpu_factor: float) -> "HostCosts":
        """All costs multiplied by ``cpu_factor`` (VM client model)."""
        if cpu_factor <= 0:
            raise ValueError(f"cpu_factor must be positive, got {cpu_factor}")
        return replace(
            self,
            rx_irq_ns=round(self.rx_irq_ns * cpu_factor),
            rx_delivery_ns=round(self.rx_delivery_ns * cpu_factor),
            rx_ack_ns=round(self.rx_ack_ns * cpu_factor),
            rx_wire_packet_ns=round(self.rx_wire_packet_ns * cpu_factor),
            rx_byte_ns=self.rx_byte_ns * cpu_factor,
            tx_syscall_ns=round(self.tx_syscall_ns * cpu_factor),
            tx_byte_ns=self.tx_byte_ns * cpu_factor,
            tx_packet_ns=round(self.tx_packet_ns * cpu_factor),
            wakeup_ns=round(self.wakeup_ns * cpu_factor),
        )


class Host:
    """One simulated machine."""

    def __init__(
        self,
        sim,
        name: str,
        costs: HostCosts | None = None,
        nic_config: NicConfig | None = None,
        trace=None,
        tracer=None,
    ):
        from repro.sim.trace import TraceRecorder

        self._sim = sim
        self.name = name
        self.costs = costs or HostCosts()
        # Disabled-by-default event taps; enable with
        # ``host.trace.enabled = True`` to record protocol events.
        # ``tracer`` (a repro.obs Tracer) additionally mirrors every tap
        # into the unified repro-trace-v1 stream.
        self.trace = trace or TraceRecorder(sim, forward=tracer)
        self.app_core = CpuCore(sim, name=f"{name}.app")
        self.net_core = CpuCore(sim, name=f"{name}.net")
        self.nic = Nic(sim, nic_config or NicConfig(), name=f"{name}.nic")
        self.softirq = SoftIrq(
            sim,
            core=self.net_core,
            irq_cost_ns=self.costs.rx_irq_ns,
            delivery_cost_ns=self.costs.rx_delivery_ns,
            ack_cost_ns=self.costs.rx_ack_ns,
            wire_packet_cost_ns=self.costs.rx_wire_packet_ns,
            byte_cost_ns=self.costs.rx_byte_ns,
            deliver=self._demux,
        )
        self.nic.attach_rx_handler(self.softirq.on_interrupt)
        self._sockets: dict[int, "TcpSocket"] = {}

        # Clock for queue states: TRACK calls this on every queue-size
        # change, so it is a plain closure over the simulator (one call,
        # one attribute load) rather than a method.
        def clock() -> int:
            """Current simulated time (passed to QueueState instances)."""
            return sim.now

        self.clock = clock

    # ------------------------------------------------------------------
    # Socket registry / demux.
    # ------------------------------------------------------------------

    def register_socket(self, conn_id: int, socket: "TcpSocket") -> None:
        """Bind a socket so incoming segments for ``conn_id`` reach it."""
        if conn_id in self._sockets:
            raise NetworkError(
                f"connection {conn_id} already registered on host {self.name!r}"
            )
        self._sockets[conn_id] = socket

    def _demux(self, packet: Packet) -> None:
        segment = packet.payload
        socket = self._sockets.get(segment.conn_id)
        if socket is None:
            raise NetworkError(
                f"host {self.name!r}: no socket for connection {segment.conn_id}"
            )
        socket.segment_arrived(segment)
        # Terminal point of the packet pipeline: the segment has been
        # consumed by the socket and nothing retains the carrier.
        recycle_packet(packet)

    # ------------------------------------------------------------------
    # Cost helpers.
    # ------------------------------------------------------------------

    def send_cost_ns(self, nbytes: int) -> int:
        """App-core cost of one send syscall carrying ``nbytes``."""
        return self.costs.tx_syscall_ns + round(self.costs.tx_byte_ns * nbytes)

    def reset_utilization_windows(self) -> None:
        """Restart utilization accounting on both cores."""
        self.app_core.reset_window()
        self.net_core.reset_window()
