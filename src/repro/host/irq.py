"""The softirq receive context.

The NIC raises an interrupt with a batch of packets; the softirq charges
the net core a fixed per-interrupt cost plus per-packet and per-byte costs,
then hands each packet's TCP segment to the host's demultiplexer.  Because
all of this runs through the (serial) net core, receive processing
naturally queues when packets arrive faster than the core can handle them
— the receive-side congestion at the heart of the paper's motivation.
"""

from __future__ import annotations

from typing import Callable

from repro.host.cpu import CpuCore
from repro.net.packet import Packet


class SoftIrq:
    """Drains NIC RX interrupts onto the net core."""

    def __init__(
        self,
        sim,
        core: CpuCore,
        irq_cost_ns: int,
        delivery_cost_ns: int,
        ack_cost_ns: int,
        wire_packet_cost_ns: int,
        byte_cost_ns: float,
        deliver: Callable[[Packet], None],
    ):
        self._sim = sim
        self._core = core
        self._irq_cost_ns = irq_cost_ns
        self._delivery_cost_ns = delivery_cost_ns
        self._ack_cost_ns = ack_cost_ns
        self._wire_packet_cost_ns = wire_packet_cost_ns
        self._byte_cost_ns = byte_cost_ns
        self._deliver = deliver
        self.interrupts = 0
        self.deliveries = 0
        self.wire_packets = 0

    def on_interrupt(self, batch: list[Packet]) -> None:
        """NIC RX handler: charge costs and deliver each packet.

        The per-interrupt cost is charged once for the batch (the
        amortization interrupt coalescing buys).  Each delivery — a
        GRO-merged aggregate or a lone packet — then costs a fixed
        per-delivery amount (stack traversal, socket handling, wakeup)
        plus a smaller per-wire-packet amount (descriptor/DMA handling
        GRO cannot elide) plus a per-byte amount (copies/checksums).
        """
        self.interrupts += 1
        self._core.execute(self._irq_cost_ns, lambda: None)
        for packet in batch:
            self.deliveries += 1
            self.wire_packets += packet.wire_count
            base = (
                self._ack_cost_ns
                if packet.payload_bytes == 0
                else self._delivery_cost_ns
            )
            cost = (
                base
                + self._wire_packet_cost_ns * packet.wire_count
                + round(self._byte_cost_ns * packet.wire_bytes)
            )
            self._core.execute(cost, lambda p=packet: self._deliver(p))
