"""The softirq receive context.

The NIC raises an interrupt with a batch of packets; the softirq charges
the net core a fixed per-interrupt cost plus per-packet and per-byte costs,
then hands each packet's TCP segment to the host's demultiplexer.  Because
all of this runs through the (serial) net core, receive processing
naturally queues when packets arrive faster than the core can handle them
— the receive-side congestion at the heart of the paper's motivation.
"""

from __future__ import annotations

from typing import Callable

from repro.host.cpu import CpuCore
from repro.net.packet import Packet


def _noop() -> None:
    return None


class SoftIrq:
    """Drains NIC RX interrupts onto the net core."""

    def __init__(
        self,
        sim,
        core: CpuCore,
        irq_cost_ns: int,
        delivery_cost_ns: int,
        ack_cost_ns: int,
        wire_packet_cost_ns: int,
        byte_cost_ns: float,
        deliver: Callable[[Packet], None],
    ):
        self._sim = sim
        self._core = core
        self._irq_cost_ns = irq_cost_ns
        self._delivery_cost_ns = delivery_cost_ns
        self._ack_cost_ns = ack_cost_ns
        self._wire_packet_cost_ns = wire_packet_cost_ns
        self._byte_cost_ns = byte_cost_ns
        self._deliver = deliver
        self.interrupts = 0
        self.deliveries = 0
        self.wire_packets = 0

    def on_interrupt(self, batch: list[Packet]) -> None:
        """NIC RX handler: charge costs and deliver each packet.

        The per-interrupt cost is charged once for the batch (the
        amortization interrupt coalescing buys).  Each delivery — a
        GRO-merged aggregate or a lone packet — then costs a fixed
        per-delivery amount (stack traversal, socket handling, wakeup)
        plus a smaller per-wire-packet amount (descriptor/DMA handling
        GRO cannot elide) plus a per-byte amount (copies/checksums).
        """
        self.interrupts += 1
        execute = self._core.execute
        execute(self._irq_cost_ns, _noop)
        ack_cost = self._ack_cost_ns
        delivery_cost = self._delivery_cost_ns
        wire_packet_cost = self._wire_packet_cost_ns
        byte_cost = self._byte_cost_ns
        deliver = self._deliver
        for packet in batch:
            self.deliveries += 1
            wire_count = packet.wire_count
            self.wire_packets += wire_count
            base = ack_cost if packet.payload_bytes == 0 else delivery_cost
            cost = (
                base
                + wire_packet_cost * wire_count
                + round(byte_cost * packet.wire_bytes)
            )
            execute(cost, lambda p=packet: deliver(p))
