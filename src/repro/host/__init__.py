"""Host substrate: CPU cores and the softirq receive context.

The paper pins two execution contexts per machine — the application thread
and the network-stack receive routines (IRQ/softIRQ) — to dedicated cores.
This package models exactly that:

- :class:`~repro.host.cpu.CpuCore` — a serial executor with busy-time
  accounting (CPU utilization feeds Figure 2a/2b).
- :class:`~repro.host.irq.SoftIrq` — the receive context: drains NIC
  interrupts, charges per-packet and per-byte costs to the net core, and
  feeds segments to the TCP layer.
- :class:`~repro.host.host.Host` — composition of cores, NIC and softirq,
  plus the cost-model knobs for a machine.
"""

from repro.host.cpu import CpuCore
from repro.host.host import Host, HostCosts
from repro.host.irq import SoftIrq

__all__ = ["CpuCore", "Host", "HostCosts", "SoftIrq"]
