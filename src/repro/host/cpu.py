"""A CPU core as a serial work executor with utilization accounting.

Work items are ``(cost_ns, callback)`` pairs executed strictly FIFO; the
core is busy for exactly the sum of the costs it runs.  Utilization over a
window — busy time divided by elapsed time — is what Figure 2a/2b report.

Two submission styles:

- :meth:`execute` — callback style, usable from any context (timers,
  softirq handlers).
- :meth:`submit` — returns a waitable for generator processes:
  ``yield core.submit(cost)`` charges the cost and resumes when done.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable

from repro.errors import SimulationError


class CpuCore:
    """Serial FIFO executor with busy-time accounting."""

    __slots__ = (
        "_sim",
        "name",
        "_queue",
        "_busy",
        "_current",
        "busy_ns",
        "work_items",
        "_window_start",
        "_window_busy_base",
    )

    def __init__(self, sim, name: str = "core"):
        self._sim = sim
        self.name = name
        self._queue: deque[tuple[int, Callable[[], None]]] = deque()
        self._busy = False
        self._current: Callable[[], None] | None = None
        self.busy_ns = 0
        self.work_items = 0
        self._window_start = sim.now
        self._window_busy_base = 0

    # ------------------------------------------------------------------
    # Submission.
    # ------------------------------------------------------------------

    def execute(self, cost_ns: int, callback: Callable[[], None]) -> None:
        """Run ``callback`` after the core has spent ``cost_ns`` on it,
        behind any previously queued work."""
        if cost_ns < 0:
            raise SimulationError(f"negative CPU cost {cost_ns}")
        self._queue.append((cost_ns, callback))
        if not self._busy:
            self._run_next()

    def submit(self, cost_ns: int) -> "_CpuWork":
        """Waitable variant of :meth:`execute` for processes."""
        return _CpuWork(self, cost_ns)

    def _run_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        cost_ns, callback = self._queue.popleft()
        self.busy_ns += cost_ns
        self.work_items += 1
        # The core runs strictly one item at a time, so the in-progress
        # callback lives in an attribute and the completion is a bound
        # method — no per-item closure.
        self._current = callback
        self._sim.call_after(cost_ns, self._finish_current)

    def _finish_current(self) -> None:
        callback = self._current
        self._current = None
        callback()
        self._run_next()

    # ------------------------------------------------------------------
    # Accounting.
    # ------------------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Work items waiting behind the current one."""
        return len(self._queue)

    def reset_window(self) -> None:
        """Start a fresh utilization measurement window at *now*."""
        self._window_start = self._sim.now
        self._window_busy_base = self.busy_ns

    def utilization(self) -> float:
        """Busy fraction since the last :meth:`reset_window` (or creation).

        Note: busy time is attributed when work *starts*, so a window cut
        mid-item attributes the whole item to the window in which it
        began; with the millisecond-scale windows used by experiments the
        bias is negligible.
        """
        elapsed = self._sim.now - self._window_start
        if elapsed <= 0:
            return 0.0
        return min(1.0, (self.busy_ns - self._window_busy_base) / elapsed)


class _CpuWork:
    """Waitable wrapper around :meth:`CpuCore.execute`."""

    __slots__ = ("_core", "_cost")

    def __init__(self, core: CpuCore, cost_ns: int):
        self._core = core
        self._cost = cost_ns

    def _subscribe(self, resume: Callable[[Any], None]) -> None:
        self._core.execute(self._cost, lambda: resume(None))
