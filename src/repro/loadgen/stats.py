"""Latency statistics over a measurement window."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.units import SEC


@dataclass(frozen=True)
class LatencySummary:
    """Summary of one latency sample set (all values ns)."""

    count: int
    mean_ns: float
    p50_ns: float
    p90_ns: float
    p99_ns: float
    max_ns: float
    stddev_ns: float

    @classmethod
    def empty(cls) -> "LatencySummary":
        """Summary of zero samples."""
        return cls(0, math.nan, math.nan, math.nan, math.nan, math.nan, math.nan)


def percentile(sorted_values: list, fraction: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sample."""
    if not sorted_values:
        raise WorkloadError("percentile of an empty sample")
    if not 0.0 <= fraction <= 1.0:
        raise WorkloadError(f"fraction out of range: {fraction}")
    rank = min(len(sorted_values) - 1, max(0, math.ceil(fraction * len(sorted_values)) - 1))
    return float(sorted_values[rank])


def summarize(latencies_ns: list) -> LatencySummary:
    """Build a :class:`LatencySummary` from raw samples."""
    if not latencies_ns:
        return LatencySummary.empty()
    ordered = sorted(latencies_ns)
    count = len(ordered)
    mean = sum(ordered) / count
    variance = sum((x - mean) ** 2 for x in ordered) / count
    return LatencySummary(
        count=count,
        mean_ns=mean,
        p50_ns=percentile(ordered, 0.50),
        p90_ns=percentile(ordered, 0.90),
        p99_ns=percentile(ordered, 0.99),
        max_ns=float(ordered[-1]),
        stddev_ns=math.sqrt(variance),
    )


def throughput_per_sec(completions: int, window_ns: int) -> float:
    """Completions per second over a window."""
    if window_ns <= 0:
        raise WorkloadError(f"window must be positive, got {window_ns}")
    return completions * SEC / window_ns
