"""Load sweeps: latency-vs-load curves (the Figure 4 x-axis)."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.analysis.cutoff import CurvePoint
from repro.loadgen.lancet import BenchConfig, RunResult, run_benchmark


@dataclass(frozen=True)
class SweepPoint:
    """One sweep sample: full run result at one offered load."""

    rate_per_sec: float
    result: RunResult

    def measured_point(self) -> CurvePoint:
        """Measured mean latency curve point."""
        return CurvePoint(self.rate_per_sec, self.result.latency.mean_ns)

    def estimated_point(self) -> CurvePoint | None:
        """Estimated (offline §3.2) latency curve point."""
        estimate = self.result.estimate
        if estimate is None or not estimate.defined:
            return None
        return CurvePoint(self.rate_per_sec, estimate.latency_ns)


def sweep_rates(
    base: BenchConfig, rates: list[float], tweak=None
) -> list[SweepPoint]:
    """Run ``base`` at each offered rate; identical seeds across rates.

    Because every random stream is derived from the config's seed, a
    sweep over rates with Nagle on sees exactly the same request
    sequences as the matching sweep with Nagle off.
    """
    points = []
    for rate in rates:
        config = replace(base, rate_per_sec=rate)
        points.append(SweepPoint(rate, run_benchmark(config, tweak=tweak)))
    return points


def measured_curve(points: list[SweepPoint]) -> list[CurvePoint]:
    """Measured latency curve from a sweep."""
    return [p.measured_point() for p in points]


def estimated_curve(points: list[SweepPoint]) -> list[CurvePoint]:
    """Estimated latency curve from a sweep (undefined points skipped)."""
    curve = []
    for point in points:
        estimated = point.estimated_point()
        if estimated is not None:
            curve.append(estimated)
    return curve
