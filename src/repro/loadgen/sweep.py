"""Load sweeps: latency-vs-load curves (the Figure 4 x-axis)."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Sequence

from repro.analysis.cutoff import CurvePoint
from repro.loadgen.lancet import BenchConfig, RunResult
from repro.parallel import run_campaign


@dataclass(frozen=True)
class SweepPoint:
    """One sweep sample: full run result at one offered load."""

    rate_per_sec: float
    result: RunResult

    def measured_point(self) -> CurvePoint:
        """Measured mean latency curve point."""
        return CurvePoint(self.rate_per_sec, self.result.latency.mean_ns)

    def estimated_point(self) -> CurvePoint | None:
        """Estimated (offline §3.2) latency curve point."""
        estimate = self.result.estimate
        if estimate is None or not estimate.defined:
            return None
        return CurvePoint(self.rate_per_sec, estimate.latency_ns)


def sweep_rates(
    base: BenchConfig,
    rates: Sequence[float],
    tweak: Callable | None = None,
    workers: int = 1,
    policy=None,
    checkpoint=None,
    watchdog=None,
) -> list[SweepPoint]:
    """Run ``base`` at each offered rate; identical seeds across rates.

    Because every random stream is derived from the config's seed, a
    sweep over rates with Nagle on sees exactly the same request
    sequences as the matching sweep with Nagle off.

    ``workers > 1`` fans the runs over a supervised process pool (see
    :mod:`repro.parallel`); the returned points are byte-identical to a
    serial sweep and in the same rate order.  ``policy``, ``checkpoint``
    and ``watchdog`` are forwarded to :func:`repro.parallel.run_campaign`
    — a checkpoint directory makes the sweep resumable.
    """
    configs = [replace(base, rate_per_sec=rate) for rate in rates]
    results = run_campaign(
        configs, tweak=tweak, workers=workers,
        policy=policy, checkpoint=checkpoint, watchdog=watchdog,
    )
    return [
        SweepPoint(rate, result) for rate, result in zip(rates, results)
    ]


def sweep_nagle_pair(
    base: BenchConfig,
    rates: Sequence[float],
    workers: int = 1,
    policy=None,
    checkpoint=None,
    watchdog=None,
) -> tuple[list[SweepPoint], list[SweepPoint]]:
    """Nagle-off and Nagle-on sweeps over ``rates`` as one campaign.

    Both configurations' runs share a single worker pool, so a parallel
    figure reproduction keeps every worker busy across the whole
    2 x len(rates) grid instead of draining per sweep.  Returns
    ``(off_points, on_points)``.
    """
    rates = list(rates)
    configs = [
        replace(base, nagle=nagle, rate_per_sec=rate)
        for nagle in (False, True)
        for rate in rates
    ]
    results = run_campaign(
        configs, workers=workers,
        policy=policy, checkpoint=checkpoint, watchdog=watchdog,
    )
    n = len(rates)
    off = [SweepPoint(rate, res) for rate, res in zip(rates, results[:n])]
    on = [SweepPoint(rate, res) for rate, res in zip(rates, results[n:])]
    return off, on


def measured_curve(points: list[SweepPoint]) -> list[CurvePoint]:
    """Measured latency curve from a sweep."""
    return [p.measured_point() for p in points]


def estimated_curve(points: list[SweepPoint]) -> list[CurvePoint]:
    """Estimated latency curve from a sweep (undefined points skipped)."""
    curve = []
    for point in points:
        estimated = point.estimated_point()
        if estimated is not None:
            curve.append(estimated)
    return curve
