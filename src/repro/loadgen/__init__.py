"""Load generation and measurement (the paper's Lancet role).

- :mod:`~repro.loadgen.arrivals` — open-loop arrival schedules (Poisson,
  uniform) and the workload specification (SET/GET mix, sizes).
- :mod:`~repro.loadgen.stats` — latency summaries (mean, percentiles)
  over the measurement window.
- :mod:`~repro.loadgen.lancet` — the single-run benchmark harness: build
  the two-host testbed, apply a load, measure latency, CPU utilization,
  and end-to-end estimates.
- :mod:`~repro.loadgen.sweep` — load sweeps across rates and batching
  configurations (the Figure 4 x-axis).
"""

from repro.loadgen.arrivals import Workload, poisson_schedule, uniform_schedule
from repro.loadgen.lancet import BenchConfig, RunResult, run_benchmark
from repro.loadgen.stats import LatencySummary, summarize
from repro.loadgen.sweep import SweepPoint, sweep_rates
from repro.loadgen.trace import (
    TraceEntry,
    load_trace,
    record_schedule,
    save_trace,
    trace_schedule,
)

__all__ = [
    "BenchConfig",
    "LatencySummary",
    "RunResult",
    "SweepPoint",
    "TraceEntry",
    "Workload",
    "load_trace",
    "poisson_schedule",
    "record_schedule",
    "run_benchmark",
    "save_trace",
    "summarize",
    "sweep_rates",
    "trace_schedule",
    "uniform_schedule",
]
