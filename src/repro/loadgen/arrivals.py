"""Workload specification and open-loop arrival schedules.

The paper's primary workload: one client issuing SETs of 16 KiB values
under 16 B keys (Figure 4a), and a 95:5 SET:GET variant whose large GET
responses break byte-granularity estimation (Figure 4b).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.messages import Request
from repro.errors import WorkloadError
from repro.units import KIB, interarrival_ns


@dataclass(frozen=True)
class Workload:
    """SET/GET mix with fixed or distributed value sizes.

    ``set_ratio`` is the probability a request is a SET.  Keys are drawn
    uniformly from a ``keyspace`` of fixed-length keys so GETs hit
    values stored by earlier SETs (the harness pre-populates the store).
    ``value_dist``, when given, replaces the fixed ``value_bytes`` with
    a discrete size distribution of ``(size, weight)`` pairs — the
    general heterogeneous case beyond Figure 4b's two-size mix.
    """

    set_ratio: float = 1.0
    key_bytes: int = 16
    value_bytes: int = 16 * KIB
    keyspace: int = 1024
    value_dist: tuple[tuple[int, float], ...] | None = None

    def validate(self) -> None:
        """Raise on nonsensical parameters."""
        if not 0.0 <= self.set_ratio <= 1.0:
            raise WorkloadError(f"set_ratio out of range: {self.set_ratio}")
        if self.key_bytes < len(str(self.keyspace - 1)) + 2:
            raise WorkloadError(
                f"key_bytes={self.key_bytes} too small for keyspace {self.keyspace}"
            )
        if self.value_bytes < 0:
            raise WorkloadError(f"negative value size {self.value_bytes}")
        if self.value_dist is not None:
            if not self.value_dist:
                raise WorkloadError("empty value distribution")
            for size, weight in self.value_dist:
                if size < 0 or weight <= 0:
                    raise WorkloadError(
                        f"bad value-dist entry ({size}, {weight})"
                    )

    def make_key(self, index: int) -> str:
        """Fixed-length key for a keyspace slot."""
        key = f"k:{index}"
        return key.ljust(self.key_bytes, "x")

    def _draw_value_bytes(self, rng) -> int:
        if self.value_dist is None:
            return self.value_bytes
        total = sum(weight for _, weight in self.value_dist)
        pick = rng.random() * total
        acc = 0.0
        for size, weight in self.value_dist:
            acc += weight
            if pick < acc:
                return size
        return self.value_dist[-1][0]

    def make_request(self, rng, created_at: int) -> Request:
        """Draw one request."""
        kind = "SET" if rng.random() < self.set_ratio else "GET"
        key = self.make_key(rng.randrange(self.keyspace))
        return Request(
            kind=kind,
            key=key,
            value_bytes=self._draw_value_bytes(rng),
            created_at=created_at,
        )

    def mean_value_bytes(self) -> float:
        """Expected value size under the distribution."""
        if self.value_dist is None:
            return float(self.value_bytes)
        total = sum(weight for _, weight in self.value_dist)
        return sum(size * weight for size, weight in self.value_dist) / total

    def mean_request_wire_bytes(self) -> float:
        """Expected RESP request size under the mix.

        Approximates the SET size at the mean value size (the RESP
        length-prefix digits differ by at most a few bytes across
        sizes).
        """
        from repro.apps import resp

        set_bytes = resp.set_command_bytes(
            self.key_bytes, round(self.mean_value_bytes())
        )
        get_bytes = resp.get_command_bytes(self.key_bytes)
        return self.set_ratio * set_bytes + (1.0 - self.set_ratio) * get_bytes


def poisson_schedule(rng, workload: Workload, rate_per_sec: float,
                     start_ns: int, duration_ns: int):
    """Yield (time, request) pairs with exponential inter-arrivals."""
    workload.validate()
    mean_gap = interarrival_ns(rate_per_sec)
    now = start_ns
    end = start_ns + duration_ns
    while True:
        now += rng.exponential_ns(mean_gap)
        if now >= end:
            return
        yield now, workload.make_request(rng, created_at=now)


def uniform_schedule(rng, workload: Workload, rate_per_sec: float,
                     start_ns: int, duration_ns: int):
    """Yield (time, request) pairs at fixed inter-arrival gaps."""
    workload.validate()
    gap = round(interarrival_ns(rate_per_sec))
    if gap <= 0:
        raise WorkloadError(f"rate {rate_per_sec}/s rounds to a zero gap")
    now = start_ns
    end = start_ns + duration_ns
    while True:
        now += gap
        if now >= end:
            return
        yield now, workload.make_request(rng, created_at=now)
