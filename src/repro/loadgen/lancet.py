"""The benchmark harness: build the two-host testbed, load it, measure.

Mirrors the paper's methodology (§4): one machine runs the Redis-like
server, the other the load generator; application and network contexts
are pinned to dedicated cores; a load is applied for a warmup period and
then a measurement window, during which we record per-request latency,
CPU utilization, and the queue-state counters both online (metadata
exchange) and for offline analysis (the ethtool-counters analogue).

:func:`build_testbed` is exposed separately so experiments needing
custom control loops (the dynamic toggler, AIMD) can assemble the same
testbed and drive it themselves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.analysis.counters import CounterCollector
from repro.analysis.offline import OfflineEstimate
from repro.apps.kvstore import KVStore
from repro.apps.redis_client import ClientConfig, RedisClient
from repro.apps.redis_server import RedisServer, ServerConfig
from repro.core.exchange import MetadataExchange
from repro.core.hints import HintSession
from repro.errors import WorkloadError
from repro.faults import FaultInjector, FaultPlan
from repro.host.host import Host, HostCosts
from repro.loadgen.arrivals import Workload, poisson_schedule, uniform_schedule
from repro.loadgen.stats import LatencySummary, summarize, throughput_per_sec
from repro.net.nic import NicConfig
from repro.net.topology import PointToPoint
from repro.sim.loop import Simulator
from repro.sim.rng import RngRegistry
from repro.tcp.connect import connect_pair
from repro.tcp.socket import TcpConfig
from repro.units import SEC, msecs, usecs


@dataclass(frozen=True)
class BenchConfig:
    """One benchmark run's full configuration."""

    rate_per_sec: float
    workload: Workload = field(default_factory=Workload)
    nagle: bool = False
    nagle_mode: str = "classic"
    autocork: bool = False
    connections: int = 1
    arrival: str = "poisson"
    warmup_ns: int = msecs(100)
    measure_ns: int = msecs(400)
    seed: int = 1
    client_cpu_factor: float = 1.0
    client_costs: HostCosts = field(default_factory=HostCosts)
    server_costs: HostCosts = field(default_factory=HostCosts)
    client_config: ClientConfig = field(default_factory=ClientConfig)
    server_config: ServerConfig = field(default_factory=ServerConfig)
    nic_config: NicConfig = field(default_factory=NicConfig)
    bandwidth_bps: float = 100e9
    propagation_delay_ns: int = usecs(10)
    counter_period_ns: int = msecs(10)
    exchange_period_ns: int = msecs(10)
    use_hints: bool = True
    recv_buffer_bytes: int = 4 * 1024 * 1024
    min_rto_ns: int = msecs(200)
    fault_plan: FaultPlan | None = None

    def validate(self) -> None:
        """Raise on nonsensical parameters."""
        if self.fault_plan is not None:
            self.fault_plan.validate()
        if self.rate_per_sec <= 0:
            raise WorkloadError(f"rate must be positive: {self.rate_per_sec}")
        if self.arrival not in ("poisson", "uniform"):
            raise WorkloadError(f"unknown arrival process {self.arrival!r}")
        if self.warmup_ns < 0 or self.measure_ns <= 0:
            raise WorkloadError("warmup must be >= 0 and measure > 0")
        if self.connections < 1:
            raise WorkloadError(
                f"need at least one connection, got {self.connections}"
            )


@dataclass
class Connection:
    """One connection's endpoints and instrumentation."""

    client_sock: object
    server_sock: object
    client: RedisClient
    client_exchange: MetadataExchange
    server_exchange: MetadataExchange
    hint_session: HintSession | None
    collector: CounterCollector


@dataclass
class Testbed:
    """Everything :func:`build_testbed` assembles.

    ``conns`` holds every connection; the flat fields alias connection
    zero for the (common) single-connection experiments.
    """

    config: BenchConfig
    sim: Simulator
    rng: RngRegistry
    client_host: Host
    server_host: Host
    server: RedisServer
    conns: list[Connection]
    faults: FaultInjector | None = None
    tracer: object = None  # repro.obs Tracer; NULL_TRACER when untraced
    # Resolved batch-pipeline backend (see repro.config).  Execution
    # detail only — deliberately not on BenchConfig, whose fields are
    # digested into every result and cache key.
    backend: str = "legacy"

    @property
    def client_sock(self):
        """Connection 0's client socket."""
        return self.conns[0].client_sock

    @property
    def server_sock(self):
        """Connection 0's server socket."""
        return self.conns[0].server_sock

    @property
    def client(self) -> RedisClient:
        """Connection 0's client."""
        return self.conns[0].client

    @property
    def client_exchange(self) -> MetadataExchange:
        """Connection 0's client-side exchange."""
        return self.conns[0].client_exchange

    @property
    def server_exchange(self) -> MetadataExchange:
        """Connection 0's server-side exchange."""
        return self.conns[0].server_exchange

    @property
    def hint_session(self) -> HintSession | None:
        """Connection 0's hint session."""
        return self.conns[0].hint_session

    @property
    def collector(self) -> CounterCollector:
        """Connection 0's counter collector."""
        return self.conns[0].collector

    def start_load(self) -> None:
        """Pre-populate the store and spawn server and clients."""
        workload = self.config.workload
        for index in range(workload.keyspace):
            self.server.store.set(workload.make_key(index), workload.value_bytes)
        self.server.start()
        schedule_fn = (
            poisson_schedule if self.config.arrival == "poisson" else uniform_schedule
        )
        per_connection_rate = self.config.rate_per_sec / len(self.conns)
        for index, conn in enumerate(self.conns):
            schedule = schedule_fn(
                self.rng.stream(f"arrivals.{index}"),
                workload,
                per_connection_rate,
                start_ns=self.sim.now,
                duration_ns=self.config.warmup_ns + self.config.measure_ns,
            )
            conn.client.start(schedule)


@dataclass
class RunResult:
    """Everything one benchmark run reports."""

    config: BenchConfig
    offered_rate: float
    achieved_rate: float
    latency: LatencySummary                 # from scheduled creation
    send_latency: LatencySummary            # from the send syscall
    per_kind: dict[str, LatencySummary]
    estimate: OfflineEstimate | None        # §3.2 combination, bytes
    estimate_rps: float | None              # estimate λ scaled to requests
    hint_latency_ns: float | None           # hint-queue Little's law
    hint_rps: float | None
    client_app_util: float
    client_net_util: float
    server_app_util: float
    server_net_util: float
    server_mean_batch: float
    client_wire_packets: int
    server_deliveries: int

    @property
    def client_cpu(self) -> float:
        """Client machine utilization (both pinned cores averaged),
        Figure 2a's metric."""
        return (self.client_app_util + self.client_net_util) / 2

    @property
    def server_cpu(self) -> float:
        """Server machine utilization, Figure 2b's metric."""
        return (self.server_app_util + self.server_net_util) / 2


def build_testbed(config: BenchConfig, tracer=None, backend=None) -> Testbed:
    """Assemble hosts, sockets, apps and instrumentation for one run.

    ``tracer`` is an optional :class:`repro.obs.Tracer`; when given its
    clock is bound to the run's simulator and every instrumented layer
    (hosts' protocol taps, exchanges, counter collectors, fault hooks)
    emits into it.  Tracing never perturbs the run: emit sites draw no
    randomness and schedule no events, so results with a disabled (or
    absent) tracer are byte-identical.

    ``backend`` selects the batch pipeline (see :mod:`repro.config`):
    ``None`` consults ``REPRO_BACKEND`` and defaults to ``legacy``;
    ``python``/``numpy``/``auto`` switch counter collection to
    :class:`repro.sim.batch.SampleBatch` columns.  Backend choice is
    byte-identity-neutral by contract.
    """
    from repro.config import resolve_backend
    from repro.obs.tracer import NULL_TRACER

    config.validate()
    backend = resolve_backend(backend)
    sim = Simulator()
    rng = RngRegistry(config.seed)
    if tracer is None:
        tracer = NULL_TRACER
    else:
        tracer.bind_clock(sim)
    client_costs = config.client_costs.scaled(config.client_cpu_factor)
    client_host = Host(
        sim, "client", costs=client_costs, nic_config=config.nic_config,
        tracer=tracer,
    )
    server_host = Host(
        sim, "server", costs=config.server_costs, nic_config=config.nic_config,
        tracer=tracer,
    )
    # The fault layer is strictly opt-in: without a (non-no-op) plan no
    # injector exists, no hook is installed anywhere, and no fault RNG
    # stream is ever created — runs without faults stay byte-identical.
    faults = None
    if config.fault_plan is not None and not config.fault_plan.is_noop:
        faults = FaultInjector(sim, config.fault_plan, rng, tracer=tracer)
    PointToPoint.connect(
        sim,
        client_host.nic,
        server_host.nic,
        bandwidth_bps=config.bandwidth_bps,
        propagation_delay_ns=config.propagation_delay_ns,
        fault_injector=faults,
    )
    tcp_config = TcpConfig(
        nagle=config.nagle,
        nagle_mode=config.nagle_mode,
        autocork=config.autocork,
        recv_buffer_bytes=config.recv_buffer_bytes,
        tso_max_bytes=config.nic_config.tso_max_bytes,
        min_rto_ns=config.min_rto_ns,
    )
    # Under faults the exchanges get their gap sanity check: a corrupt
    # time32 unwraps to a jump of minutes, so a one-second ceiling never
    # rejects a legitimate state (blackouts here last milliseconds) while
    # catching every time-counter corruption.
    exchange_gap = (
        max(64 * config.exchange_period_ns, SEC) if faults is not None else None
    )
    conns: list[Connection] = []
    for index in range(config.connections):
        client_sock, server_sock = connect_pair(
            sim, client_host, server_host, tcp_config, tcp_config,
            name=f"redis.{index}",
        )
        hint_session = (
            HintSession(client_host.clock) if config.use_hints else None
        )
        client_exchange = MetadataExchange(
            sim, client_sock, period_ns=config.exchange_period_ns,
            hint_session=hint_session, max_gap_ns=exchange_gap,
            tracer=tracer,
        )
        server_exchange = MetadataExchange(
            sim, server_sock, period_ns=config.exchange_period_ns,
            max_gap_ns=exchange_gap, tracer=tracer,
        )
        if faults is not None:
            faults.attach_exchange(client_exchange, f"client.{index}")
            faults.attach_exchange(server_exchange, f"server.{index}")
            faults.attach_receiver(server_sock)
        client = RedisClient(
            sim, client_host, client_sock, config=config.client_config,
            hint_session=hint_session, name=f"lancet.{index}",
        )
        sample_batch = None
        if backend != "legacy":
            from repro.sim.batch import SampleBatch

            sample_batch = SampleBatch(backend)
        collector = CounterCollector(
            sim, client_sock, server_sock,
            period_ns=config.counter_period_ns, tracer=tracer,
            batch=sample_batch,
        )
        conns.append(
            Connection(
                client_sock=client_sock,
                server_sock=server_sock,
                client=client,
                client_exchange=client_exchange,
                server_exchange=server_exchange,
                hint_session=hint_session,
                collector=collector,
            )
        )
    server = RedisServer(
        sim, server_host, conns[0].server_sock, store=KVStore(),
        config=config.server_config,
        extra_sockets=[conn.server_sock for conn in conns[1:]],
    )
    return Testbed(
        config=config,
        sim=sim,
        rng=rng,
        client_host=client_host,
        server_host=server_host,
        server=server,
        conns=conns,
        faults=faults,
        tracer=tracer,
        backend=backend,
    )


def run_benchmark(
    config: BenchConfig,
    tweak: Callable[[Testbed], None] | None = None,
    tracer=None,
    watchdog=None,
    backend=None,
) -> RunResult:
    """Run one benchmark to completion and summarize.

    ``tweak`` runs after testbed assembly and before load start — the
    hook experiments use to attach controllers (toggler, AIMD) or extra
    instrumentation.  ``tracer`` is forwarded to :func:`build_testbed`.
    ``watchdog`` (a :class:`repro.supervise.watchdog.Watchdog`) bounds
    the run: its simulated-time budget is checked against the config's
    horizon before anything is built, and its event budget arms the
    simulator so a runaway config raises a typed
    :class:`~repro.errors.WatchdogError` instead of spinning.
    ``backend`` is forwarded to :func:`build_testbed` (batch-pipeline
    selection; byte-identity-neutral).
    """
    if watchdog is not None:
        watchdog.validate()
        horizon_ns = config.warmup_ns + config.measure_ns
        if (
            watchdog.max_sim_time_ns is not None
            and horizon_ns > watchdog.max_sim_time_ns
        ):
            from repro.errors import WatchdogError

            raise WatchdogError(
                f"run horizon {horizon_ns}ns (warmup + measure) exceeds "
                f"the watchdog budget of {watchdog.max_sim_time_ns}ns"
            )
    bed = build_testbed(config, tracer=tracer, backend=backend)
    if watchdog is not None and watchdog.max_events is not None:
        bed.sim.set_event_budget(watchdog.max_events)
    if tweak is not None:
        tweak(bed)
    bed.start_load()

    measure_start = bed.sim.now + config.warmup_ns
    measure_end = measure_start + config.measure_ns

    def begin_measurement() -> None:
        bed.client_host.reset_utilization_windows()
        bed.server_host.reset_utilization_windows()
        for conn in bed.conns:
            conn.collector.start()
            if conn.hint_session is not None:
                conn.hint_session.sample()  # reset the interval baseline

    bed.sim.call_at(measure_start, begin_measurement)
    bed.sim.run(until=measure_end)
    for conn in bed.conns:
        conn.collector.stop()

    return _summarize_run(bed, measure_start, measure_end)


def _summarize_run(bed: Testbed, start: int, end: int) -> RunResult:
    config = bed.config
    if bed.backend != "legacy":
        # Batch pipeline: one pass flattens every connection's records
        # into columns, and all window/kind summaries reduce in bulk.
        # Byte-identical to the scalar path below by the contracts in
        # repro.sim.batch.
        from repro.sim.batch import LatencyBatch

        latency_batch = LatencyBatch.from_connections(
            (conn.client.records for conn in bed.conns), bed.backend
        )
        record_count, latency_summary, send_summary, per_kind = (
            latency_batch.window_summaries(start, end)
        )
    else:
        records = [
            r
            for conn in bed.conns
            for r in conn.client.records
            if start <= r.completed_at <= end
        ]
        record_count = len(records)
        latency_summary = summarize([r.latency_ns for r in records])
        send_summary = summarize([r.send_latency_ns for r in records])
        per_kind = {}
        for kind in ("SET", "GET"):
            kind_samples = [r.latency_ns for r in records if r.kind == kind]
            if kind_samples:
                per_kind[kind] = summarize(kind_samples)

    # Per-connection §3.2 estimates, averaged across the connections the
    # (hypothetical) batching policy spans — weighted by each
    # connection's estimated throughput, as uniform averaging would let
    # idle connections dilute the estimate.  The collector answers the
    # window query directly (bulk-selected in batch mode).
    estimate = None
    estimate_rps = None
    per_conn = [
        conn.collector.window_estimate(start, end)
        for conn in bed.conns
        if conn.collector.sample_count >= 2
    ]
    defined = [e for e in per_conn if e.defined and e.throughput_per_sec > 0]
    if per_conn:
        estimate = per_conn[0]
        if len(bed.conns) > 1 and defined:
            total_tput = sum(e.throughput_per_sec for e in defined)
            blended = sum(
                e.latency_ns * e.throughput_per_sec for e in defined
            ) / total_tput
            estimate = OfflineEstimate(
                start=start,
                end=end,
                client_view_ns=None,
                server_view_ns=None,
                latency_ns=blended,
                throughput_per_sec=total_tput,
            )
        mean_request = config.workload.mean_request_wire_bytes()
        if mean_request > 0 and estimate.defined:
            estimate_rps = estimate.throughput_per_sec / mean_request

    hint_latency = None
    hint_rps = None
    hint_samples = []
    for conn in bed.conns:
        if conn.hint_session is not None:
            avgs = conn.hint_session.sample()
            if avgs is not None and avgs.defined:
                hint_samples.append(avgs)
    if hint_samples:
        total = sum(s.throughput_per_sec for s in hint_samples)
        if total > 0:
            hint_latency = (
                sum(s.latency_ns * s.throughput_per_sec for s in hint_samples)
                / total
            )
            hint_rps = total

    return RunResult(
        config=config,
        offered_rate=config.rate_per_sec,
        achieved_rate=throughput_per_sec(record_count, end - start),
        latency=latency_summary,
        send_latency=send_summary,
        per_kind=per_kind,
        estimate=estimate,
        estimate_rps=estimate_rps,
        hint_latency_ns=hint_latency,
        hint_rps=hint_rps,
        client_app_util=bed.client_host.app_core.utilization(),
        client_net_util=bed.client_host.net_core.utilization(),
        server_app_util=bed.server_host.app_core.utilization(),
        server_net_util=bed.server_host.net_core.utilization(),
        server_mean_batch=bed.server.mean_batch_size,
        client_wire_packets=bed.client_host.nic.tx_wire_packets,
        server_deliveries=bed.server_host.nic.rx_deliveries,
    )
