"""Trace-driven load: record, save, load and replay request schedules.

Reproduction work often needs the *same* request sequence replayed
against different configurations or library versions.  Seeded schedules
already give that within one code version; traces extend it across
versions and to externally supplied workloads (e.g. converted
production logs — the substitution DESIGN.md describes for data we
cannot have).

The on-disk format is JSON-lines, one request per line:

    {"t": 123456, "kind": "SET", "key": "k:7xxx...", "value": 16384}
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from repro.apps.messages import Request
from repro.errors import WorkloadError


@dataclass(frozen=True)
class TraceEntry:
    """One recorded request."""

    time_ns: int
    kind: str
    key: str
    value_bytes: int

    def to_json(self) -> str:
        """One JSONL line."""
        return json.dumps(
            {"t": self.time_ns, "kind": self.kind, "key": self.key,
             "value": self.value_bytes},
            separators=(",", ":"),
        )

    @classmethod
    def from_json(cls, line: str) -> "TraceEntry":
        """Parse one JSONL line."""
        try:
            data = json.loads(line)
            return cls(
                time_ns=int(data["t"]),
                kind=str(data["kind"]),
                key=str(data["key"]),
                value_bytes=int(data["value"]),
            )
        except (KeyError, TypeError, ValueError, json.JSONDecodeError) as exc:
            raise WorkloadError(f"bad trace line: {line!r}") from exc


def record_schedule(schedule: Iterable[tuple[int, Request]]) -> list[TraceEntry]:
    """Materialize any schedule into trace entries (consumes it)."""
    return [
        TraceEntry(time_ns=when, kind=request.kind, key=request.key,
                   value_bytes=request.value_bytes)
        for when, request in schedule
    ]


def save_trace(entries: Iterable[TraceEntry], path: str | Path) -> int:
    """Write entries as JSONL; returns the count written."""
    count = 0
    with open(path, "w") as handle:
        for entry in entries:
            handle.write(entry.to_json() + "\n")
            count += 1
    return count


def load_trace(path: str | Path) -> list[TraceEntry]:
    """Read a JSONL trace, validating monotone timestamps."""
    entries: list[TraceEntry] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            entries.append(TraceEntry.from_json(line))
    for previous, current in zip(entries, entries[1:]):
        if current.time_ns < previous.time_ns:
            raise WorkloadError(
                f"trace times go backwards at t={current.time_ns}"
            )
    return entries


def trace_schedule(
    entries: Iterable[TraceEntry],
    start_ns: int = 0,
    time_scale: float = 1.0,
) -> Iterator[tuple[int, Request]]:
    """Replay a trace as a load-generator schedule.

    ``start_ns`` shifts the whole trace; ``time_scale`` stretches or
    compresses it (0.5 = twice the offered load).
    """
    if time_scale <= 0:
        raise WorkloadError(f"time scale must be positive: {time_scale}")
    for entry in entries:
        when = start_ns + round(entry.time_ns * time_scale)
        yield when, Request(
            kind=entry.kind,
            key=entry.key,
            value_bytes=entry.value_bytes,
            created_at=when,
        )
