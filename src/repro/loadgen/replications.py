"""Multi-seed replications with confidence intervals.

Single simulated runs are deterministic, but conclusions should not
hinge on one arrival sequence.  :func:`replicate` runs a configuration
under K seeds and summarizes any scalar metric with a mean and a
Student-t confidence interval; :func:`replicated_sweep` lifts that to
latency-vs-load curves with per-point error bars.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, Sequence

from repro.errors import WorkloadError
from repro.loadgen.lancet import BenchConfig, RunResult
from repro.parallel import run_campaign

# Two-sided 95% Student-t critical values by degrees of freedom.
_T95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447,
    7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228, 15: 2.131, 20: 2.086,
    30: 2.042, 60: 2.000,
}


def _t95(dof: int) -> float:
    """Critical value at the largest tabulated dof not exceeding ``dof``."""
    if dof <= 0:
        raise WorkloadError("confidence interval needs at least two samples")
    if dof > max(_T95):
        return 1.96
    return _T95[max(k for k in _T95 if k <= dof)]


@dataclass(frozen=True)
class Replicated:
    """Mean and 95% confidence half-width of one scalar metric."""

    mean: float
    half_width_95: float
    samples: tuple[float, ...]

    @property
    def low(self) -> float:
        """Lower bound of the 95% interval."""
        return self.mean - self.half_width_95

    @property
    def high(self) -> float:
        """Upper bound of the 95% interval."""
        return self.mean + self.half_width_95

    @property
    def relative_half_width(self) -> float:
        """Half-width as a fraction of the mean (0 when mean is 0)."""
        if self.mean == 0:
            return 0.0
        return self.half_width_95 / abs(self.mean)

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "Replicated":
        """Summarize raw per-seed samples."""
        if len(samples) < 2:
            raise WorkloadError("confidence interval needs at least two samples")
        n = len(samples)
        mean = sum(samples) / n
        variance = sum((x - mean) ** 2 for x in samples) / (n - 1)
        half = _t95(n - 1) * math.sqrt(variance / n)
        return cls(mean=mean, half_width_95=half, samples=tuple(samples))


def replicate(
    config: BenchConfig,
    seeds: Sequence[int],
    metric: Callable[[RunResult], float] = lambda r: r.latency.mean_ns,
    tweak: Callable | None = None,
    workers: int = 1,
    policy=None,
    checkpoint=None,
    watchdog=None,
) -> Replicated:
    """Run ``config`` under each seed; summarize ``metric``.

    ``tweak`` is forwarded to every run (as in
    :func:`~repro.loadgen.sweep.sweep_rates`); ``workers > 1`` fans the
    seeds over a supervised pool with results identical to serial.
    ``policy``/``checkpoint``/``watchdog`` forward to
    :func:`repro.parallel.run_campaign`.
    """
    runs = run_campaign(
        [replace(config, seed=seed) for seed in seeds],
        tweak=tweak,
        workers=workers,
        policy=policy, checkpoint=checkpoint, watchdog=watchdog,
    )
    return Replicated.from_samples([metric(run) for run in runs])


@dataclass(frozen=True)
class ReplicatedPoint:
    """One load point with error bars."""

    rate_per_sec: float
    latency: Replicated


def replicated_sweep(
    base: BenchConfig,
    rates: Sequence[float],
    seeds: Sequence[int],
    metric: Callable[[RunResult], float] = lambda r: r.latency.mean_ns,
    tweak: Callable | None = None,
    workers: int = 1,
    policy=None,
    checkpoint=None,
    watchdog=None,
) -> list[ReplicatedPoint]:
    """A latency-vs-load curve with per-point confidence intervals.

    The full rates x seeds cross product is one campaign, so a single
    worker pool covers every run; results are grouped back per rate and
    are identical to the serial double loop.
    """
    configs = [
        replace(base, rate_per_sec=rate, seed=seed)
        for rate in rates
        for seed in seeds
    ]
    runs = run_campaign(
        configs, tweak=tweak, workers=workers,
        policy=policy, checkpoint=checkpoint, watchdog=watchdog,
    )
    width = len(seeds)
    return [
        ReplicatedPoint(
            rate_per_sec=rate,
            latency=Replicated.from_samples(
                [metric(run) for run in runs[i * width:(i + 1) * width]]
            ),
        )
        for i, rate in enumerate(rates)
    ]
