"""``repro-remediation-v1`` document schema: definition and validation.

Mirrors the :mod:`repro.diagnose.schema` idiom: the field tables here
are the single source of truth — :func:`validate_remediation_report`
checks a parsed document against them, and ``tools/check_docs.py``
regenerates the schema table embedded in ``docs/SERVICE.md`` from the
same structure, so documentation cannot drift from code.
"""

from __future__ import annotations

from repro.errors import RemedyError
from repro.remedy.report import SCHEMA, TRIGGERS, VERDICTS

#: The document layout, one table per JSON object kind, in render order.
#: Field specs are ``name -> (python type(s), description)`` exactly as
#: in :data:`repro.obs.schema.RECORD_TYPES`.
DOCUMENT: dict[str, dict] = {
    "report": {
        "doc": (
            "Top-level document emitted by "
            "``repro campaign run --remediate --remedy-json``."
        ),
        "fields": {
            "schema": (str, f"schema version; always {SCHEMA!r}"),
            "campaign": (str, "the campaign spec's name"),
            "spec_digest": (
                (str, type(None)),
                "sha256 of the spec's canonical JSON, when known",
            ),
            "budget": (int, "per-campaign probe budget the engine ran with"),
            "actions": (list, "one ``action`` object per playbook firing"),
            "summary": (dict, "the campaign-wide ``summary`` object"),
        },
    },
    "action": {
        "doc": "One playbook invocation on one supervised job.",
        "fields": {
            "playbook": (
                str,
                "'confirm-environment' | 'relax-watchdog' | "
                "'isolate-and-rerun'",
            ),
            "index": (int, "job position in the submitted campaign"),
            "key": (str, "content digest of the job's config"),
            "label": ((str, type(None)), "the job's human-readable label"),
            "trigger": (str, " | ".join(f"'{t}'" for t in TRIGGERS)),
            "verdict": (str, " | ".join(f"'{v}'" for v in VERDICTS)),
            "probes": (int, "probe re-executions performed (0 or 1)"),
            "detail": (str, "human-readable justification"),
        },
    },
    "summary": {
        "doc": "Campaign-wide rollup over every action.",
        "fields": {
            "actions": (int, "playbook firings"),
            "probes": (int, "probe re-executions across all actions"),
            "by_verdict": (dict, "action counts keyed by verdict"),
            "by_playbook": (dict, "action counts keyed by playbook"),
        },
    },
}


def _check(value, expected) -> bool:
    if isinstance(expected, tuple):
        return isinstance(value, expected)
    if expected is int:
        return isinstance(value, int) and not isinstance(value, bool)
    return isinstance(value, expected)


def _check_object(obj, kind: str, where: str) -> list[str]:
    problems: list[str] = []
    if not isinstance(obj, dict):
        return [f"{where}: must be an object, got {type(obj).__name__}"]
    fields = DOCUMENT[kind]["fields"]
    for name, (expected, _) in fields.items():
        if name not in obj:
            problems.append(f"{where}: missing field {name!r}")
        elif not _check(obj[name], expected):
            problems.append(
                f"{where}: field {name!r} has wrong type "
                f"{type(obj[name]).__name__}"
            )
    extras = set(obj) - set(fields)
    if extras:
        problems.append(f"{where}: unexpected fields {sorted(extras)}")
    return problems


def validate_remediation_report(document) -> list[str]:
    """Check a parsed report document; return a list of problems.

    Empty list means the document is a valid ``repro-remediation-v1``
    report.  Checks structure, field types, verdict/trigger enums, and
    internal consistency (the summary matches the actions it rolls up).
    """
    problems = _check_object(document, "report", "report")
    if problems:
        return problems
    if document["schema"] != SCHEMA:
        problems.append(
            f"report: schema is {document['schema']!r}, expected {SCHEMA!r}"
        )
    probes = 0
    by_verdict: dict[str, int] = {}
    for aindex, action in enumerate(document["actions"]):
        where = f"actions[{aindex}]"
        problems.extend(_check_object(action, "action", where))
        if problems:
            continue
        if action["verdict"] not in VERDICTS:
            problems.append(f"{where}: unknown verdict {action['verdict']!r}")
        if action["trigger"] not in TRIGGERS:
            problems.append(f"{where}: unknown trigger {action['trigger']!r}")
        probes += action["probes"]
        by_verdict[action["verdict"]] = by_verdict.get(action["verdict"], 0) + 1
    summary = document["summary"]
    problems.extend(_check_object(summary, "summary", "summary"))
    if not problems:
        if summary["actions"] != len(document["actions"]):
            problems.append(
                f"summary: actions={summary['actions']} but document has "
                f"{len(document['actions'])}"
            )
        if summary["probes"] != probes:
            problems.append(
                f"summary: probes={summary['probes']} but actions hold "
                f"{probes}"
            )
        if summary["by_verdict"] != dict(sorted(by_verdict.items())):
            problems.append("summary: by_verdict does not match the actions")
    return problems


def require_valid_remediation_report(document) -> None:
    """Raise :class:`RemedyError` unless the document validates."""
    problems = validate_remediation_report(document)
    if problems:
        shown = "\n  ".join(problems[:20])
        more = (
            f"\n  ... and {len(problems) - 20} more"
            if len(problems) > 20 else ""
        )
        raise RemedyError(
            f"document does not conform to {SCHEMA}:\n  {shown}{more}"
        )
