"""Automated remediation: typed playbooks over supervision events.

When the always-on diagnosis layer flags a job — or the supervisor
quarantines one — the remediation engine fires deterministic
*playbooks* that re-execute the cell with a targeted edit and classify
the episode's root cause (environment vs configuration, tight budget vs
runaway, transient vs persistent), producing the canonical
``repro-remediation-v1`` report.  See :mod:`repro.remedy.playbooks` for
the recipes and :mod:`repro.remedy.engine` for the firing rules.
"""

from repro.remedy.engine import RemedyEngine
from repro.remedy.playbooks import (
    CONFIRM_ENVIRONMENT,
    DEFAULT_BUDGET,
    ISOLATE_AND_RERUN,
    PLAYBOOKS,
    RELAX_WATCHDOG,
    WATCHDOG_SLACK,
    FlaggedJob,
    Playbook,
    ProbeOutcome,
    ProbeRun,
    QuarantinedJob,
    load_playbook_config,
    resolve_playbooks,
    result_digest,
)
from repro.remedy.report import (
    SCHEMA,
    TRIGGER_FINDING,
    TRIGGER_QUARANTINE,
    TRIGGERS,
    VERDICTS,
    RemediationReport,
    RemedyAction,
    render_report,
)
from repro.remedy.schema import (
    require_valid_remediation_report,
    validate_remediation_report,
)

__all__ = [
    "RemedyEngine",
    "Playbook",
    "PLAYBOOKS",
    "CONFIRM_ENVIRONMENT",
    "RELAX_WATCHDOG",
    "ISOLATE_AND_RERUN",
    "DEFAULT_BUDGET",
    "WATCHDOG_SLACK",
    "FlaggedJob",
    "QuarantinedJob",
    "ProbeRun",
    "ProbeOutcome",
    "load_playbook_config",
    "resolve_playbooks",
    "result_digest",
    "RemediationReport",
    "RemedyAction",
    "render_report",
    "SCHEMA",
    "VERDICTS",
    "TRIGGERS",
    "TRIGGER_FINDING",
    "TRIGGER_QUARANTINE",
    "validate_remediation_report",
    "require_valid_remediation_report",
]
