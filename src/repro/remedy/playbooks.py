"""Typed remediation playbooks: what to do about a flagged job.

A playbook is a deterministic recipe that fires on one kind of
supervision event — a diagnosis *finding* on a completed job, or a job
*quarantine* — and classifies the episode's root cause, usually by
re-executing the cell once with a targeted edit (a *probe*):

- :data:`CONFIRM_ENVIRONMENT` re-runs a flagged cell with its fault
  plan stripped and compares result digests: a diverging probe proves
  the injected environment caused the pathology (verdict
  ``environment``); an identical one — or a cell with no fault plan to
  strip — pins it on the configuration (``config``).  The no-plan case
  never probes, so a fault-free cell can *never* be classified
  environment-caused: zero misclassifications by construction.
- :data:`RELAX_WATCHDOG` retries a watchdog-quarantined job with every
  budget scaled ×:data:`WATCHDOG_SLACK`: success means the budget was
  too tight (``recovered-with-slack``), another blowout means a genuine
  runaway (``persistent``).
- :data:`ISOLATE_AND_RERUN` re-runs any other quarantined job serially
  with tracing forced on, capturing a deep trace for the post-mortem:
  a clean re-run is ``transient``, a repeat failure ``persistent``.

Probes are pure re-executions of deterministic cells, so every verdict
— and therefore the whole ``repro-remediation-v1`` report — is
reproducible.  Probes never touch the campaign's checkpoint store,
tracer, or diagnosis stream; remediation observes, it does not alter
campaign output (the importance report is byte-identical with and
without it).

:func:`load_playbook_config` reads the JSON playbook config the CLI's
``--playbooks`` flag points at (see ``examples/remedy_playbooks.json``).
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import pickle
from dataclasses import dataclass
from typing import Callable

from repro.errors import RemedyError
from repro.remedy.report import TRIGGER_FINDING, TRIGGER_QUARANTINE

#: Budget multiplier the relax-watchdog probe runs with.
WATCHDOG_SLACK = 4.0


def result_digest(result) -> str:
    """A stable content digest of one cell result (pickle sha256)."""
    return hashlib.sha256(pickle.dumps(result, protocol=4)).hexdigest()


# ---------------------------------------------------------------------------
# Supervision events playbooks fire on.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FlaggedJob:
    """A completed job whose trace segment drew diagnosis findings."""

    index: int
    key: str
    label: str | None
    findings: int
    classes: tuple
    result: object

    trigger = TRIGGER_FINDING


@dataclass(frozen=True)
class QuarantinedJob:
    """A job the supervisor gave up on (see JobFailure)."""

    index: int
    key: str
    label: str | None
    kind: str
    error_type: str | None
    message: str

    trigger = TRIGGER_QUARANTINE


# ---------------------------------------------------------------------------
# Probe plumbing (filled in by the campaign engine's prober).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ProbeRun:
    """What one probe re-execution produced."""

    result: object = None
    records: int = 0  # deep-trace records captured ('traced' edits)


@dataclass(frozen=True)
class ProbeOutcome:
    """A probe request's fate, as seen by the playbook.

    ``status`` is ``ok`` (ran, succeeded), ``failed`` (ran, raised),
    ``inapplicable`` (the edit does not apply to this cell — e.g. no
    fault plan to strip; nothing executed), ``no-prober`` (remediation
    ran without a bound prober), or ``budget`` (the campaign's probe
    budget is exhausted).  Only ``ok``/``failed`` consumed budget.
    """

    status: str
    run: ProbeRun | None = None
    error_type: str | None = None
    message: str = ""

    @property
    def executed(self) -> bool:
        return self.status in ("ok", "failed")


def _skip_detail(outcome: ProbeOutcome) -> str:
    if outcome.status == "budget":
        return "remediation probe budget exhausted"
    return "no prober bound; cannot re-execute the cell"


# ---------------------------------------------------------------------------
# The playbooks.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Playbook:
    """One named remediation recipe.

    ``trigger`` names the event kind it fires on; ``matches`` narrows
    within that kind; ``run(event, probe)`` — where ``probe(edit)``
    returns a :class:`ProbeOutcome` — produces ``(verdict, probes,
    detail)``.
    """

    name: str
    doc: str
    trigger: str
    matches: Callable
    run: Callable


def _confirm_environment(event: FlaggedJob, probe) -> tuple[str, int, str]:
    outcome = probe("strip-faults")
    if outcome.status == "inapplicable":
        return (
            "config", 0,
            "no fault plan to strip; the pathology is "
            "configuration-caused by construction",
        )
    if not outcome.executed:
        return ("skipped", 0, _skip_detail(outcome))
    if outcome.status == "failed":
        return (
            "config", 1,
            f"fault-free probe failed outright "
            f"({outcome.error_type}: {outcome.message}); the "
            f"configuration cannot complete even without injection",
        )
    probed = result_digest(outcome.run.result)
    original = result_digest(event.result)
    if probed != original:
        return (
            "environment", 1,
            f"fault-plan-stripped re-run diverged "
            f"(digest {original[:12]} -> {probed[:12]}): the injected "
            f"environment caused the flagged behavior",
        )
    return (
        "config", 1,
        "fault-plan-stripped re-run reproduced the result byte-for-byte; "
        "the configuration itself is the root cause",
    )


def _relax_watchdog(event: QuarantinedJob, probe) -> tuple[str, int, str]:
    outcome = probe("relax-watchdog")
    if outcome.status == "inapplicable":
        return ("skipped", 0, "no watchdog bound to this campaign's cells")
    if not outcome.executed:
        return ("skipped", 0, _skip_detail(outcome))
    if outcome.status == "ok":
        return (
            "recovered-with-slack", 1,
            f"re-run succeeded under a {WATCHDOG_SLACK:g}x watchdog "
            f"budget; the original budget was too tight for this cell",
        )
    return (
        "persistent", 1,
        f"still failed under a {WATCHDOG_SLACK:g}x watchdog budget "
        f"({outcome.error_type}: {outcome.message}); genuine runaway "
        f"configuration",
    )


def _isolate_and_rerun(event: QuarantinedJob, probe) -> tuple[str, int, str]:
    outcome = probe("traced")
    if outcome.status == "inapplicable":
        return ("skipped", 0, "cell cannot be re-executed in isolation")
    if not outcome.executed:
        return ("skipped", 0, _skip_detail(outcome))
    if outcome.status == "ok":
        return (
            "transient", 1,
            f"isolated re-run succeeded; the {event.kind} did not "
            f"reproduce (deep trace captured, "
            f"{outcome.run.records} record(s))",
        )
    return (
        "persistent", 1,
        f"isolated re-run failed again ({outcome.error_type}: "
        f"{outcome.message}); deep trace captured for the post-mortem",
    )


CONFIRM_ENVIRONMENT = Playbook(
    name="confirm-environment",
    doc="re-run a flagged cell with its fault plan stripped; a "
        "diverging digest pins the root cause on the environment, an "
        "identical one (or no plan at all) on the configuration",
    trigger=TRIGGER_FINDING,
    matches=lambda event: True,
    run=_confirm_environment,
)

RELAX_WATCHDOG = Playbook(
    name="relax-watchdog",
    doc="retry a watchdog-quarantined job with every budget scaled "
        f"x{WATCHDOG_SLACK:g}; success means the budget was too tight, "
        "another blowout a genuine runaway",
    trigger=TRIGGER_QUARANTINE,
    matches=lambda event: event.error_type == "WatchdogError",
    run=_relax_watchdog,
)

ISOLATE_AND_RERUN = Playbook(
    name="isolate-and-rerun",
    doc="re-run any other quarantined job serially with tracing forced "
        "on, capturing a deep trace; classifies the failure transient "
        "or persistent",
    trigger=TRIGGER_QUARANTINE,
    matches=lambda event: event.error_type != "WatchdogError",
    run=_isolate_and_rerun,
)

#: Registry, in the default (deterministic) firing order.
PLAYBOOKS: dict[str, Playbook] = {
    playbook.name: playbook
    for playbook in (CONFIRM_ENVIRONMENT, RELAX_WATCHDOG, ISOLATE_AND_RERUN)
}

#: Default per-campaign probe budget.
DEFAULT_BUDGET = 8

CONFIG_SCHEMA = "repro-remedy-config-v1"


def resolve_playbooks(names) -> tuple[Playbook, ...]:
    """Playbook objects for ``names`` (strings pass through the
    registry; :class:`Playbook` instances are taken as-is), keeping the
    given order.  ``None`` means every registered playbook."""
    if names is None:
        return tuple(PLAYBOOKS.values())
    resolved = []
    for name in names:
        if isinstance(name, Playbook):
            resolved.append(name)
            continue
        playbook = PLAYBOOKS.get(name)
        if playbook is None:
            raise RemedyError(
                f"unknown playbook {name!r}; choose from {sorted(PLAYBOOKS)}"
            )
        resolved.append(playbook)
    if not resolved:
        raise RemedyError("playbook list must not be empty")
    return tuple(resolved)


def load_playbook_config(path) -> tuple[tuple[Playbook, ...], int]:
    """``(playbooks, budget)`` from a JSON playbook config file.

    The document shape is ``{"schema": "repro-remedy-config-v1",
    "playbooks": [name, ...], "budget": N}``; both fields are optional
    and default to the full registry and :data:`DEFAULT_BUDGET`.
    """
    path = pathlib.Path(path)
    try:
        document = json.loads(path.read_text())
    except OSError as exc:
        raise RemedyError(f"{path}: unreadable playbook config: {exc}") from exc
    except ValueError as exc:
        raise RemedyError(f"{path}: invalid JSON: {exc}") from exc
    if not isinstance(document, dict):
        raise RemedyError(
            f"{path}: playbook config must be an object, got "
            f"{type(document).__name__}"
        )
    schema = document.get("schema", CONFIG_SCHEMA)
    if schema != CONFIG_SCHEMA:
        raise RemedyError(
            f"{path}: schema is {schema!r}, expected {CONFIG_SCHEMA!r}"
        )
    budget = document.get("budget", DEFAULT_BUDGET)
    if not isinstance(budget, int) or isinstance(budget, bool) or budget < 0:
        raise RemedyError(
            f"{path}: budget must be a non-negative integer, got {budget!r}"
        )
    names = document.get("playbooks")
    if names is not None and not isinstance(names, list):
        raise RemedyError(f"{path}: playbooks must be a list of names")
    try:
        playbooks = resolve_playbooks(names)
    except RemedyError as exc:
        raise RemedyError(f"{path}: {exc}") from exc
    return playbooks, budget
