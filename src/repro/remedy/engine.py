"""The remediation engine: fire playbooks on supervision events.

:class:`RemedyEngine` sits beside the :class:`~repro.supervise.Supervisor`
the way :class:`~repro.diagnose.DiagnosisHook` does: the supervisor calls
:meth:`job_flagged` when a completed job drew diagnosis findings and
:meth:`job_quarantined` when a job is given up on, and the engine walks
its playbooks **in configured order**, fires every one whose trigger and
match predicate apply, and collects the resulting
:class:`~repro.remedy.report.RemedyAction` records.

Probes — the targeted re-executions playbooks request — go through a
*prober* the campaign layer binds (:meth:`bind_prober`): a callable
``prober(index, edit)`` that either returns a
:class:`~repro.remedy.playbooks.ProbeRun`, returns ``None`` when the
edit does not apply to that cell (e.g. no fault plan to strip), or
raises the probe's own failure.  The engine enforces the per-campaign
probe *budget* around it: once ``budget`` probes have executed, further
playbook firings record verdict ``skipped`` instead of re-executing
anything.

Observability: each firing emits a ``remedy.action`` trace record and a
``remedy.verdict`` record with the classification, plus ``remedy.*``
metrics (``remedy.actions``, ``remedy.probes``,
``remedy.budget_exhausted``, and per-verdict counters).  Remediation is
strictly *diagnostic*: it never changes a job's outcome, touches the
checkpoint store, or feeds the diagnosis stream, so campaign output is
byte-identical with and without it.
"""

from __future__ import annotations

from repro.errors import RemedyError
from repro.obs.log import NULL_LOG
from repro.obs.tracer import NULL_TRACER
from repro.remedy.playbooks import (
    DEFAULT_BUDGET,
    FlaggedJob,
    ProbeOutcome,
    ProbeRun,
    QuarantinedJob,
    resolve_playbooks,
)
from repro.remedy.report import RemediationReport, RemedyAction


class RemedyEngine:
    """Deterministic remediation over one supervised campaign.

    ``playbooks`` is an ordered list of names or
    :class:`~repro.remedy.playbooks.Playbook` objects (default: the full
    registry in its canonical order); ``budget`` caps probe
    re-executions for the whole campaign.  The engine is single-use: one
    campaign, then :meth:`report`.
    """

    def __init__(self, playbooks=None, budget: int = DEFAULT_BUDGET, log=None):
        if not isinstance(budget, int) or isinstance(budget, bool) or budget < 0:
            raise RemedyError(
                f"remediation budget must be a non-negative integer, "
                f"got {budget!r}"
            )
        self.playbooks = resolve_playbooks(playbooks)
        self.budget = budget
        self.actions: list[RemedyAction] = []
        self._prober = None
        self._probes_used = 0
        self._tracer = NULL_TRACER
        self._metrics = None
        self._log = log if log is not None else NULL_LOG

    # -- wiring ---------------------------------------------------------

    def bind_prober(self, prober) -> None:
        """Attach the campaign layer's re-execution hook.

        ``prober(index, edit)`` re-runs the cell at ``index`` with the
        named edit (``strip-faults`` / ``relax-watchdog`` / ``traced``)
        and returns a :class:`ProbeRun`, or ``None`` when the edit does
        not apply to that cell.  Exceptions it raises are the probe's
        own failure and become part of the verdict.
        """
        self._prober = prober

    def bind_runtime(self, tracer=None, metrics=None, log=None) -> None:
        """Called by the supervisor: share its tracer/metrics/log."""
        if tracer is not None:
            self._tracer = tracer
        if metrics is not None:
            self._metrics = metrics
        if log is not None and log is not NULL_LOG:
            self._log = log

    # -- budget ---------------------------------------------------------

    @property
    def probes_used(self) -> int:
        return self._probes_used

    @property
    def probes_remaining(self) -> int:
        return max(0, self.budget - self._probes_used)

    def _count(self, name: str, amount: int = 1) -> None:
        if self._metrics is not None:
            self._metrics.counter(name).inc(amount)

    # -- supervision hooks ----------------------------------------------

    def job_flagged(
        self, index: int, key: str, label: str | None,
        findings: int, classes, result,
    ) -> None:
        """A completed (not quarantined) job drew diagnosis findings."""
        self._fire(FlaggedJob(
            index=index, key=key, label=label,
            findings=findings, classes=tuple(classes), result=result,
        ))

    def job_quarantined(
        self, index: int, key: str, label: str | None,
        kind: str, error_type: str | None, message: str,
    ) -> None:
        """The supervisor gave up on a job."""
        self._fire(QuarantinedJob(
            index=index, key=key, label=label,
            kind=kind, error_type=error_type, message=message,
        ))

    # -- the firing loop ------------------------------------------------

    def _probe(self, index: int, edit: str) -> ProbeOutcome:
        if self._prober is None:
            return ProbeOutcome(status="no-prober")
        if self._probes_used >= self.budget:
            self._count("remedy.budget_exhausted")
            return ProbeOutcome(status="budget")
        try:
            run = self._prober(index, edit)
        except Exception as exc:
            self._probes_used += 1
            self._count("remedy.probes")
            return ProbeOutcome(
                status="failed",
                error_type=type(exc).__name__,
                message=str(exc),
            )
        if run is None:
            return ProbeOutcome(status="inapplicable")
        if not isinstance(run, ProbeRun):
            run = ProbeRun(result=run)
        self._probes_used += 1
        self._count("remedy.probes")
        return ProbeOutcome(status="ok", run=run)

    def _fire(self, event) -> None:
        for playbook in self.playbooks:
            if playbook.trigger != event.trigger:
                continue
            if not playbook.matches(event):
                continue
            self._count("remedy.actions")
            self._tracer.remedy_action(
                playbook.name, event.index, event.key, event.trigger,
            )
            verdict, probes, detail = playbook.run(
                event, lambda edit: self._probe(event.index, edit),
            )
            self._count(f"remedy.verdict.{verdict}")
            self._tracer.remedy_verdict(
                playbook.name, event.index, event.key,
                verdict, probes, detail,
            )
            action = RemedyAction(
                playbook=playbook.name,
                index=event.index,
                key=event.key,
                label=event.label,
                trigger=event.trigger,
                verdict=verdict,
                probes=probes,
                detail=detail,
            )
            self.actions.append(action)
            self._log.info(f"remedy: {action.describe()}")

    # -- output ---------------------------------------------------------

    def report(
        self, campaign: str, spec_digest: str | None = None
    ) -> RemediationReport:
        """The campaign's canonical ``repro-remediation-v1`` report."""
        return RemediationReport(
            campaign=campaign,
            spec_digest=spec_digest,
            budget=self.budget,
            actions=tuple(self.actions),
        )
