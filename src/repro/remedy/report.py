"""The ``repro-remediation-v1`` report: what remediation did and found.

A report is the typed record of every remediation playbook that fired
during one supervised campaign — which job triggered it, what probe it
ran, and the root-cause verdict it reached.  Serialization is
**canonical** (fixed key order, compact separators, newline-terminated)
like every other report in the repo, so the self-healing acceptance
contract — "the same campaign produces the same remediation report
bytes" — is checkable with ``==`` on bytes.

Verdict vocabulary (:data:`VERDICTS`):

- ``environment`` — the fault-plan-stripped probe diverged from the
  flagged run: the injected environment, not the configuration, caused
  the pathology;
- ``config`` — the stripped probe reproduced the flagged result (or
  there was no fault plan to strip): the configuration itself is the
  root cause;
- ``recovered-with-slack`` — a quarantined job succeeded when re-run
  with a scaled watchdog budget: the budget was too tight;
- ``persistent`` — the probe failed the same way the original did;
- ``transient`` — an isolated re-run of a quarantined job succeeded:
  the failure did not reproduce;
- ``skipped`` — the playbook matched but did not probe (remediation
  budget exhausted, or no prober bound).

Nothing here reads the wall clock; a remediation report is a pure
function of the campaign's jobs, their outcomes, and the probes' own
deterministic results.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

SCHEMA = "repro-remediation-v1"

#: Closed verdict vocabulary (see the module doc).
VERDICTS = (
    "environment",
    "config",
    "recovered-with-slack",
    "persistent",
    "transient",
    "skipped",
)

#: What fired a playbook.
TRIGGER_FINDING = "finding"
TRIGGER_QUARANTINE = "quarantine"
TRIGGERS = (TRIGGER_FINDING, TRIGGER_QUARANTINE)


@dataclass(frozen=True)
class RemedyAction:
    """One playbook invocation on one supervised job.

    ``index``/``key``/``label`` identify the job exactly as supervision
    outcomes do; ``trigger`` says what fired the playbook (a diagnosis
    ``finding`` or a ``quarantine``); ``probes`` counts the re-executions
    the playbook performed (0 for a verdict reached without one).
    """

    playbook: str
    index: int
    key: str
    label: str | None
    trigger: str
    verdict: str
    probes: int
    detail: str

    def to_json(self) -> dict:
        return {
            "playbook": self.playbook,
            "index": self.index,
            "key": self.key,
            "label": self.label,
            "trigger": self.trigger,
            "verdict": self.verdict,
            "probes": self.probes,
            "detail": self.detail,
        }

    def describe(self) -> str:
        name = self.label if self.label else f"job {self.index}"
        return (
            f"{self.playbook} on {name} ({self.trigger}): "
            f"{self.verdict} — {self.detail}"
        )


@dataclass(frozen=True)
class RemediationReport:
    """The full document: every action plus the campaign rollup."""

    campaign: str
    spec_digest: str | None
    budget: int
    actions: tuple[RemedyAction, ...] = ()

    def summary(self) -> dict:
        by_verdict: dict[str, int] = {}
        by_playbook: dict[str, int] = {}
        probes = 0
        for action in self.actions:
            by_verdict[action.verdict] = by_verdict.get(action.verdict, 0) + 1
            by_playbook[action.playbook] = (
                by_playbook.get(action.playbook, 0) + 1
            )
            probes += action.probes
        return {
            "actions": len(self.actions),
            "probes": probes,
            "by_verdict": dict(sorted(by_verdict.items())),
            "by_playbook": dict(sorted(by_playbook.items())),
        }

    def to_json(self) -> dict:
        return {
            "schema": SCHEMA,
            "campaign": self.campaign,
            "spec_digest": self.spec_digest,
            "budget": self.budget,
            "actions": [action.to_json() for action in self.actions],
            "summary": self.summary(),
        }

    def to_canonical(self) -> str:
        """The canonical byte form: compact, fixed key order, one ``\\n``."""
        return json.dumps(self.to_json(), separators=(",", ":")) + "\n"


def render_report(report: RemediationReport) -> str:
    """Human-readable rendering, for the CLI's default output."""
    summary = report.summary()
    lines = [
        f"remediation {report.campaign}: {summary['actions']} action(s), "
        f"{summary['probes']} probe(s), budget {report.budget}"
    ]
    for action in report.actions:
        lines.append(f"  {action.describe()}")
    if summary["by_verdict"]:
        verdicts = ", ".join(
            f"{verdict}={count}"
            for verdict, count in summary["by_verdict"].items()
        )
        lines.append(f"  by verdict: {verdicts}")
    else:
        lines.append("  no playbook fired: nothing needed remediation")
    return "\n".join(lines)
