"""Decision rules for the streaming diagnosis service.

Following *Dapper: Data Plane Performance Diagnosis of TCP* (PAPERS.md),
the classifier never consults the components it diagnoses — it watches
only the lightweight state the trace stream already carries and applies
fixed, deterministic decision rules.  ``fault.verdict`` records (the
injector narrating what it did) are deliberately **ignored** by every
rule: they are the ground truth the diagnosis is scored *against*, and
reading them would make detection circular.

Two kinds of output:

- **limit labels** — every estimator sample is attributed to the queue
  that dominates it, Dapper's sender-/network-/receiver-limited triage
  adapted to the paper's three §3.1 queues:

  ========== ===================== ==============================
  label      dominating queue       meaning
  ========== ===================== ==============================
  network    ``unacked``            bytes sit un-ACKed on the wire
  receiver   ``unread``             the peer is not reading
  sender     ``ackdelay``           ACK/batching holds at the ends
  ========== ===================== ==============================

- **findings** — typed misbehavior episodes (:data:`FINDING_CLASSES`),
  each produced by one rule over one evidence stream.  Thresholds live
  on :class:`DiagnosisConfig`; the defaults are validated against
  fault-free golden traces (zero findings) and the chaos matrix
  (per-class recall) by ``tests/diagnose``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DiagnosisError
from repro.units import msecs, usecs

#: Connection limit labels (Dapper's triage, adapted).
LIMIT_SENDER = "sender-limited"
LIMIT_NETWORK = "network-limited"
LIMIT_RECEIVER = "receiver-limited"
LIMIT_IDLE = "idle"

#: Finding classes the classifier can emit.  The first four mirror the
#: injectable fault classes and are what detection recall is scored
#: over; the last three are the misbehaving-controller diagnoses.
CLASS_LOSS = "loss"
CLASS_BLACKOUT = "blackout"
CLASS_STALL = "stall"
CLASS_STALE_EXCHANGE = "stale-exchange"
CLASS_TOGGLER_FROZEN = "toggler-frozen"
CLASS_TOGGLER_OSCILLATING = "toggler-oscillating"
CLASS_ESTIMATOR_DIVERGENCE = "estimator-divergence"

FINDING_CLASSES = (
    CLASS_LOSS,
    CLASS_BLACKOUT,
    CLASS_STALL,
    CLASS_STALE_EXCHANGE,
    CLASS_TOGGLER_FROZEN,
    CLASS_TOGGLER_OSCILLATING,
    CLASS_ESTIMATOR_DIVERGENCE,
)

#: Toggler phases in which the controller is deliberately not deciding.
FROZEN_PHASES = frozenset({"loss-freeze", "freeze-hold"})


@dataclass(frozen=True)
class DiagnosisConfig:
    """Thresholds for every decision rule; defaults are golden-trace safe.

    Clustering: evidence points closer than ``merge_gap_ns`` fold into
    one episode, so a retransmission train is one loss finding, not
    fifty.

    Loss — any ``tcp.event tx`` with ``retransmit=true`` is evidence (a
    clean simulated wire never retransmits, so the rule has no
    fault-free false positives by construction).

    Dead air (blackout) — a connection that *has* carried traffic and
    then carries none for ``dead_air_ns`` while run time demonstrably
    advances (ticks/samples keep arriving) is dark; so is a connection
    that never carries traffic at all despite being collected.

    Stall (receiver-limited) — an estimator sample whose ``unread``
    delay exceeds ``max(stall_floor_ns, stall_factor × EWMA)`` is a
    stalled-receiver spike; the EWMA (weight ``baseline_alpha``) tracks
    the connection's own benign baseline.

    Stale exchange — evidence is any of: a non-``accepted``
    ``exchange.recv`` outcome; an accepted candidate whose counter
    timestamps run backwards (a replay); an ``estimator.reject``; a
    sent state (``exchange.send``) with no matching arrival at the peer
    within ``exchange_timeout_ns`` — send/receipt matching is exact, so
    every dropped exchange is its own evidence point with no baseline
    to contaminate.

    Toggler — ``frozen_ticks`` consecutive frozen-phase decisions (or
    an equally long decision drought while estimator samples keep
    flowing) is a frozen controller; an EWMA (weight ``osc_alpha``) of
    the per-tick toggle indicator above ``osc_threshold`` is an
    oscillating one.

    Estimator divergence — after ``divergence_min_samples`` samples, a
    latency estimate beyond ``divergence_factor ×`` its own EWMA (and
    above ``divergence_floor_ns``) diverges; any clamped sample is
    divergence evidence outright.
    """

    merge_gap_ns: int = msecs(20)
    dead_air_ns: int = msecs(25)
    stall_floor_ns: int = usecs(200)
    stall_factor: float = 8.0
    baseline_alpha: float = 0.2
    exchange_timeout_ns: int = msecs(8)
    frozen_ticks: int = 8
    osc_alpha: float = 0.25
    osc_threshold: float = 0.4
    divergence_factor: float = 16.0
    divergence_floor_ns: int = msecs(2)
    divergence_min_samples: int = 4
    #: Finding classes that make a job's verdict *pathological* (the
    #: supervisor's opt-in quarantine trigger): controller misbehavior,
    #: not environmental faults.
    pathological_classes: tuple = (
        CLASS_TOGGLER_FROZEN,
        CLASS_TOGGLER_OSCILLATING,
        CLASS_ESTIMATOR_DIVERGENCE,
    )

    def validate(self) -> None:
        """Raise :class:`DiagnosisError` on out-of-range thresholds."""
        for name in ("merge_gap_ns", "dead_air_ns", "stall_floor_ns",
                     "exchange_timeout_ns", "divergence_floor_ns"):
            if getattr(self, name) <= 0:
                raise DiagnosisError(
                    f"{name} must be positive, got {getattr(self, name)}"
                )
        for name in ("stall_factor", "divergence_factor"):
            if getattr(self, name) < 1.0:
                raise DiagnosisError(
                    f"{name} must be >= 1, got {getattr(self, name)}"
                )
        for name in ("baseline_alpha", "osc_alpha"):
            if not 0.0 < getattr(self, name) <= 1.0:
                raise DiagnosisError(
                    f"{name} must be in (0, 1], got {getattr(self, name)}"
                )
        if not 0.0 < self.osc_threshold <= 1.0:
            raise DiagnosisError(
                f"osc_threshold must be in (0, 1], got {self.osc_threshold}"
            )
        if self.frozen_ticks < 1:
            raise DiagnosisError(
                f"frozen_ticks must be >= 1, got {self.frozen_ticks}"
            )
        if self.divergence_min_samples < 1:
            raise DiagnosisError(
                f"divergence_min_samples must be >= 1, "
                f"got {self.divergence_min_samples}"
            )
        unknown = set(self.pathological_classes) - set(FINDING_CLASSES)
        if unknown:
            raise DiagnosisError(
                f"unknown pathological classes: {sorted(unknown)}"
            )


def limit_label(
    network_ns: float | None,
    receiver_ns: float | None,
    sender_ns: float | None,
) -> str:
    """Dapper triage for one sample: which queue dominates its delay.

    ``None`` components are undefined (no window yet); a sample with no
    defined component is ``idle``.  Ties break in severity order
    network > receiver > sender so the label is deterministic.
    """
    candidates = [
        (network_ns, LIMIT_NETWORK),
        (receiver_ns, LIMIT_RECEIVER),
        (sender_ns, LIMIT_SENDER),
    ]
    best = None
    label = LIMIT_IDLE
    for value, name in candidates:
        if value is not None and (best is None or value > best):
            best = value
            label = name
    return label


class Clusters:
    """Online gap-clustering of evidence points into episodes.

    ``add(t, end_t)`` extends the open cluster when the new point is
    within ``merge_gap_ns`` of its end, else closes it and opens a new
    one.  ``closed()`` returns every episode including the still-open
    one *without mutating state*, so report snapshots are pure.
    """

    __slots__ = ("_gap", "_done", "_start", "_end", "_count")

    def __init__(self, merge_gap_ns: int):
        self._gap = merge_gap_ns
        self._done: list[tuple[int, int, int]] = []  # (start, end, events)
        self._start = None
        self._end = None
        self._count = 0

    def add(self, t: int, end_t: int | None = None) -> None:
        """Fold one evidence point (or interval) into the clustering."""
        end_t = t if end_t is None else max(t, end_t)
        if self._start is not None and t - self._end <= self._gap:
            self._end = max(self._end, end_t)
            self._count += 1
            return
        if self._start is not None:
            self._done.append((self._start, self._end, self._count))
        self._start = t
        self._end = end_t
        self._count = 1

    def closed(self) -> list[tuple[int, int, int]]:
        """Every episode, oldest first, open cluster included."""
        episodes = list(self._done)
        if self._start is not None:
            episodes.append((self._start, self._end, self._count))
        return episodes

    @property
    def events(self) -> int:
        """Total evidence points folded in."""
        return sum(count for _, _, count in self._done) + self._count
