"""The ``repro-diagnosis-v1`` report: typed results of a diagnosis pass.

A report is a plain tree of dataclasses mirroring the JSON document the
CLI emits.  Serialization is **canonical** — keys in a fixed order,
compact separators, newline-terminated — so the acceptance contract
"streaming and offline passes over the same trace produce byte-identical
reports" is checkable with ``==`` on bytes, and goldens diff cleanly.

Nothing here reads the wall clock: every timestamp in a report is
simulated time copied from trace records, which is what makes the
same-trace→same-bytes property hold across machines and reruns.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.units import to_msecs

SCHEMA = "repro-diagnosis-v1"


@dataclass
class Finding:
    """One detected misbehavior episode.

    ``connection`` is the socket-pair stem (``redis.0``) for data-plane
    findings and the controller src (``toggler``) for control-plane
    ones.  ``events`` counts the evidence points clustered into the
    episode; ``detail`` is a short human-readable justification.
    """

    cls: str
    connection: str
    start_ns: int
    end_ns: int
    events: int
    detail: str

    def to_json(self) -> dict:
        return {
            "class": self.cls,
            "connection": self.connection,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "events": self.events,
            "detail": self.detail,
        }


@dataclass
class ConnectionVerdict:
    """One connection's diagnosis over one run.

    ``verdict`` is the dominant limit label over the run (Dapper's
    triage); ``limits`` the per-label sample counts behind it;
    ``timeline`` the compressed label segments ``[start_ns, end_ns,
    label]`` in time order.
    """

    id: str
    verdict: str
    samples: int
    limits: dict = field(default_factory=dict)
    timeline: list = field(default_factory=list)
    finding_classes: list = field(default_factory=list)

    def to_json(self) -> dict:
        return {
            "id": self.id,
            "verdict": self.verdict,
            "samples": self.samples,
            "limits": dict(sorted(self.limits.items())),
            "timeline": [
                {"start_ns": s, "end_ns": e, "label": label}
                for s, e, label in self.timeline
            ],
            "finding_classes": sorted(self.finding_classes),
        }


@dataclass
class RunReport:
    """Diagnosis of one run segment (sim clock restart = new run)."""

    index: int
    start_ns: int
    end_ns: int
    records: int
    connections: list = field(default_factory=list)  # [ConnectionVerdict]
    findings: list = field(default_factory=list)  # [Finding]

    def to_json(self) -> dict:
        return {
            "index": self.index,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "records": self.records,
            "connections": [c.to_json() for c in self.connections],
            "findings": [f.to_json() for f in self.findings],
        }


@dataclass
class DiagnosisReport:
    """The full document: every run plus the campaign summary."""

    label: str | None
    records: int
    runs: list = field(default_factory=list)  # [RunReport]

    @property
    def findings(self) -> list:
        """Every finding across every run, in report order."""
        return [f for run in self.runs for f in run.findings]

    def summary(self) -> dict:
        by_class: dict[str, int] = {}
        flagged: set[tuple[int, str]] = set()
        connections = 0
        for run in self.runs:
            connections += len(run.connections)
            for finding in run.findings:
                by_class[finding.cls] = by_class.get(finding.cls, 0) + 1
                flagged.add((run.index, finding.connection))
        return {
            "runs": len(self.runs),
            "connections": connections,
            "findings": sum(len(run.findings) for run in self.runs),
            "flagged": len(flagged),
            "by_class": dict(sorted(by_class.items())),
        }

    def to_json(self) -> dict:
        return {
            "schema": SCHEMA,
            "label": self.label,
            "records": self.records,
            "runs": [run.to_json() for run in self.runs],
            "summary": self.summary(),
        }

    def to_canonical(self) -> str:
        """The canonical byte form: compact, fixed key order, one ``\\n``."""
        return json.dumps(self.to_json(), separators=(",", ":")) + "\n"


def render_report(report: DiagnosisReport) -> str:
    """Human-readable rendering of a report, for the CLI's default mode."""
    lines: list[str] = []
    summary = report.summary()
    label = f" label={report.label!r}" if report.label else ""
    lines.append(
        f"diagnosis{label}: {report.records} records, "
        f"{summary['runs']} run(s), {summary['connections']} connection(s), "
        f"{summary['findings']} finding(s)"
    )
    for run in report.runs:
        span = to_msecs(run.end_ns - run.start_ns)
        lines.append(
            f"  run {run.index}: [{run.start_ns}..{run.end_ns}] ns "
            f"({span:.1f} ms, {run.records} records)"
        )
        for conn in run.connections:
            limits = ", ".join(
                f"{label.split('-')[0]}={count}"
                for label, count in sorted(conn.limits.items())
                if count
            ) or "no samples"
            flags = (
                f" !{','.join(sorted(conn.finding_classes))}"
                if conn.finding_classes else ""
            )
            lines.append(
                f"    {conn.id}: {conn.verdict} ({limits}){flags}"
            )
        for finding in run.findings:
            span = to_msecs(finding.end_ns - finding.start_ns)
            lines.append(
                f"    finding {finding.cls} @ {finding.connection}: "
                f"[{finding.start_ns}..{finding.end_ns}] ns "
                f"({span:.1f} ms, {finding.events} event(s)) — "
                f"{finding.detail}"
            )
    if summary["findings"] == 0:
        lines.append("  no findings: every connection looks healthy")
    else:
        by_class = ", ".join(
            f"{cls}={count}" for cls, count in summary["by_class"].items()
        )
        lines.append(f"  by class: {by_class}")
    return "\n".join(lines)
