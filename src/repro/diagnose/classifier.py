"""The streaming classifier: one pass over a trace, a diagnosis out.

:class:`StreamingClassifier` consumes ``repro-trace-v1`` records in
stream order — from a finished JSONL file, a live tail, or a Tracer's
in-memory sink; the source does not matter because the classifier holds
all its state in per-run :class:`RunState` objects and never looks
backwards.  Feeding the same records in the same order always yields a
byte-identical report, whether they arrive one at a time over minutes or
in one batch (the determinism contract ``tests/diagnose`` enforces).

Run segmentation: simulated time within one run is monotonic (the
tracer stamps the simulator clock), so a record whose ``t`` is strictly
less than its predecessor's marks the next run of a multi-run stream
(each run's simulator restarts at zero).  Campaign-level records that
ride between runs (``job.*``, ``log.message``) are counted but carry no
diagnostic signal.

``fault.verdict`` records are **ignored by design**: they are the
injector's own narration — the ground truth detection is scored against
— and using them would make every detection claim circular.
"""

from __future__ import annotations

from repro.diagnose.connection import ConnState, TogglerState, connection_stem
from repro.diagnose.report import DiagnosisReport, RunReport
from repro.diagnose.rules import DiagnosisConfig
from repro.errors import DiagnosisError

#: Record types that carry no diagnostic signal (campaign plumbing and
#: the injector's own narration).
_IGNORED_TYPES = frozenset({
    "trace.header",
    "fault.verdict",
    "diagnosis.verdict",
    "log.message",
    "metrics.snapshot",
    "job.retry",
    "job.timeout",
    "job.quarantine",
})


class RunState:
    """All diagnosis state for one run segment (pure-snapshot reports)."""

    def __init__(self, index: int, start_ns: int, config: DiagnosisConfig):
        self.index = index
        self.start_ns = start_ns
        self.end_ns = start_ns
        self.records = 0
        self._config = config
        self._conns: dict[str, ConnState] = {}
        self._togglers: dict[str, TogglerState] = {}

    def _conn(self, stem: str) -> ConnState:
        state = self._conns.get(stem)
        if state is None:
            state = self._conns[stem] = ConnState(stem, self._config)
        return state

    def feed(self, record: dict) -> None:
        """Dispatch one record into the per-entity state machines."""
        t = record["t"]
        self.end_ns = max(self.end_ns, t)
        self.records += 1
        rtype = record["type"]
        if rtype in _IGNORED_TYPES:
            return
        if rtype == "toggler.decision":
            src = record["src"]
            state = self._togglers.get(src)
            if state is None:
                state = self._togglers[src] = TogglerState(src, self._config)
            state.on_decision(t, record)
            return
        src = record["src"]
        stem = connection_stem(src)
        if stem is None:
            return
        conn = self._conn(stem)
        conn.saw(t)
        if rtype == "tcp.event":
            conn.on_tcp_event(t, record)
        elif rtype == "exchange.recv":
            conn.on_exchange_recv(t, src, record)
        elif rtype == "exchange.send":
            conn.on_exchange_send(t, src)
        elif rtype == "estimator.sample":
            conn.on_estimator_sample(t, src, record)
        elif rtype == "estimator.reject":
            conn.on_estimator_reject(t)
        # queue.sample establishes contact (saw) but has no rule of its
        # own: the estimator re-derives everything it carries.

    def snapshot(self) -> RunReport:
        """This run's report so far — pure, repeatable, state untouched."""
        connections = []
        findings = []
        for stem in sorted(self._conns):
            conn = self._conns[stem]
            connections.append(conn.verdict(self.end_ns))
            findings.extend(conn.findings(self.end_ns))
        for src in sorted(self._togglers):
            findings.extend(self._togglers[src].findings())
        findings.sort(key=lambda f: (f.start_ns, f.connection, f.cls))
        return RunReport(
            index=self.index,
            start_ns=self.start_ns,
            end_ns=self.end_ns,
            records=self.records,
            connections=connections,
            findings=findings,
        )


class StreamingClassifier:
    """Single-pass diagnosis over a ``repro-trace-v1`` stream.

    Feed records with :meth:`feed` / :meth:`feed_many`; take a report at
    any point with :meth:`report` (a pure snapshot — safe to call
    repeatedly, e.g. for the live mode's periodic output).  The final
    report of a stream is identical however the feeding was chunked.
    """

    def __init__(self, config: DiagnosisConfig | None = None):
        self.config = config if config is not None else DiagnosisConfig()
        self.config.validate()
        self.label: str | None = None
        self.records = 0
        self._finished_runs: list[RunReport] = []
        self._run: RunState | None = None
        self._last_t: int | None = None
        self._force_new = False

    @property
    def runs(self) -> int:
        """Run segments seen so far (current one included)."""
        return len(self._finished_runs) + (1 if self._run is not None else 0)

    def feed(self, record: dict) -> None:
        """Consume one record."""
        if not isinstance(record, dict):
            raise DiagnosisError(
                f"trace records must be dicts, got {type(record).__name__}"
            )
        t = record.get("t")
        rtype = record.get("type")
        if not isinstance(t, int) or not isinstance(rtype, str):
            raise DiagnosisError(
                "record lacks the common t/type fields; "
                "not a repro-trace-v1 stream"
            )
        self.records += 1
        if rtype == "trace.header":
            if self.label is None:
                self.label = record.get("label")
            # A header mid-stream is a fresh trace at the same path
            # (the follow mode's rewrite case): close the current run.
            self._force_new = self._run is not None
            self._last_t = None  # header t is the previous run's clock
            return
        if self._run is None or self._force_new or (
            self._last_t is not None and t < self._last_t
        ):
            self._force_new = False
            if self._run is not None:
                self._finished_runs.append(self._run.snapshot())
            self._run = RunState(
                index=len(self._finished_runs), start_ns=t,
                config=self.config,
            )
        self._last_t = t
        self._run.feed(record)

    def feed_many(self, records) -> None:
        """Consume an iterable of records in order."""
        for record in records:
            self.feed(record)

    def report(self) -> DiagnosisReport:
        """The diagnosis so far — a pure snapshot, state untouched."""
        runs = list(self._finished_runs)
        if self._run is not None:
            runs.append(self._run.snapshot())
        return DiagnosisReport(
            label=self.label, records=self.records, runs=runs,
        )


def diagnose_records(records, config: DiagnosisConfig | None = None) -> DiagnosisReport:
    """One-shot offline diagnosis of an in-memory record stream."""
    classifier = StreamingClassifier(config)
    classifier.feed_many(records)
    return classifier.report()
