"""``repro-diagnosis-v1`` document schema: definition and validation.

Mirrors the :mod:`repro.obs.schema` idiom for traces: the field tables
here are the single source of truth — :func:`validate_report` checks a
parsed document against them, and ``tools/check_docs.py`` regenerates
the schema table embedded in ``docs/OBSERVABILITY.md`` from the same
structure, so documentation cannot drift from code.
"""

from __future__ import annotations

from repro.diagnose.rules import FINDING_CLASSES, LIMIT_IDLE, LIMIT_NETWORK, \
    LIMIT_RECEIVER, LIMIT_SENDER
from repro.diagnose.report import SCHEMA
from repro.errors import DiagnosisError

_LIMIT_LABELS = (LIMIT_SENDER, LIMIT_NETWORK, LIMIT_RECEIVER, LIMIT_IDLE)

#: The document layout, one table per JSON object kind, in render order.
#: Field specs are ``name -> (python type(s), description)`` exactly as
#: in :data:`repro.obs.schema.RECORD_TYPES`.
DOCUMENT: dict[str, dict] = {
    "report": {
        "doc": "Top-level document emitted by ``repro diagnose --json``.",
        "fields": {
            "schema": (str, f"schema version; always {SCHEMA!r}"),
            "label": ((str, type(None)), "run label from the trace header"),
            "records": (int, "trace records consumed"),
            "runs": (list, "one ``run`` object per detected run segment"),
            "summary": (dict, "the campaign-wide ``summary`` object"),
        },
    },
    "run": {
        "doc": (
            "One run segment (a simulated-clock restart in the stream "
            "starts the next segment)."
        ),
        "fields": {
            "index": (int, "segment position in the stream (0-based)"),
            "start_ns": (int, "first record timestamp in the segment"),
            "end_ns": (int, "last record timestamp in the segment"),
            "records": (int, "records in the segment"),
            "connections": (list, "one ``connection`` object per socket pair"),
            "findings": (list, "``finding`` objects, detection order"),
        },
    },
    "connection": {
        "doc": "One connection's Dapper-style verdict over the segment.",
        "fields": {
            "id": (str, "socket-pair stem, e.g. 'redis.0'"),
            "verdict": (
                str,
                "dominant limit: 'sender-limited' | 'network-limited' | "
                "'receiver-limited' | 'idle'",
            ),
            "samples": (int, "estimator samples the verdict is built on"),
            "limits": (dict, "per-label sample counts behind the verdict"),
            "timeline": (
                list,
                "compressed label segments {start_ns, end_ns, label}",
            ),
            "finding_classes": (
                list,
                "distinct finding classes attributed to this connection",
            ),
        },
    },
    "finding": {
        "doc": "One detected misbehavior episode.",
        "fields": {
            "class": (str, " | ".join(f"'{c}'" for c in FINDING_CLASSES)),
            "connection": (
                str,
                "socket-pair stem, or controller src for control-plane classes",
            ),
            "start_ns": (int, "first evidence timestamp"),
            "end_ns": (int, "last evidence timestamp"),
            "events": (int, "evidence points clustered into the episode"),
            "detail": (str, "human-readable justification"),
        },
    },
    "summary": {
        "doc": "Campaign-wide rollup over every run segment.",
        "fields": {
            "runs": (int, "run segments diagnosed"),
            "connections": (int, "connection verdicts across all segments"),
            "findings": (int, "findings across all segments"),
            "flagged": (int, "distinct (run, connection) pairs with findings"),
            "by_class": (dict, "finding counts keyed by class"),
        },
    },
}


def _check(value, expected) -> bool:
    if isinstance(expected, tuple):
        return isinstance(value, expected)
    if expected is int:
        return isinstance(value, int) and not isinstance(value, bool)
    return isinstance(value, expected)


def _check_object(obj, kind: str, where: str) -> list[str]:
    problems: list[str] = []
    if not isinstance(obj, dict):
        return [f"{where}: must be an object, got {type(obj).__name__}"]
    fields = DOCUMENT[kind]["fields"]
    for name, (expected, _) in fields.items():
        if name not in obj:
            problems.append(f"{where}: missing field {name!r}")
        elif not _check(obj[name], expected):
            problems.append(
                f"{where}: field {name!r} has wrong type "
                f"{type(obj[name]).__name__}"
            )
    extras = set(obj) - set(fields)
    if extras:
        problems.append(f"{where}: unexpected fields {sorted(extras)}")
    return problems


def validate_report(document) -> list[str]:
    """Check a parsed report document; return a list of problems.

    Empty list means the document is a valid ``repro-diagnosis-v1``
    report.  Checks structure, field types, enum values, and internal
    consistency (summary counts match the runs they summarize).
    """
    problems = _check_object(document, "report", "report")
    if problems:
        return problems
    if document["schema"] != SCHEMA:
        problems.append(
            f"report: schema is {document['schema']!r}, expected {SCHEMA!r}"
        )
    total_findings = 0
    total_connections = 0
    for rindex, run in enumerate(document["runs"]):
        where = f"runs[{rindex}]"
        problems.extend(_check_object(run, "run", where))
        if problems:
            continue
        if run["end_ns"] < run["start_ns"]:
            problems.append(f"{where}: end_ns precedes start_ns")
        for cindex, conn in enumerate(run["connections"]):
            cwhere = f"{where}.connections[{cindex}]"
            problems.extend(_check_object(conn, "connection", cwhere))
            if not problems and conn["verdict"] not in _LIMIT_LABELS:
                problems.append(
                    f"{cwhere}: unknown verdict {conn['verdict']!r}"
                )
        for findex, finding in enumerate(run["findings"]):
            fwhere = f"{where}.findings[{findex}]"
            problems.extend(_check_object(finding, "finding", fwhere))
            if not problems and finding["class"] not in FINDING_CLASSES:
                problems.append(
                    f"{fwhere}: unknown class {finding['class']!r}"
                )
        total_findings += len(run["findings"])
        total_connections += len(run["connections"])
    summary = document["summary"]
    problems.extend(_check_object(summary, "summary", "summary"))
    if not problems:
        if summary["runs"] != len(document["runs"]):
            problems.append(
                f"summary: runs={summary['runs']} but document has "
                f"{len(document['runs'])}"
            )
        if summary["findings"] != total_findings:
            problems.append(
                f"summary: findings={summary['findings']} but runs hold "
                f"{total_findings}"
            )
        if summary["connections"] != total_connections:
            problems.append(
                f"summary: connections={summary['connections']} but runs "
                f"hold {total_connections}"
            )
        if sum(summary["by_class"].values()) != total_findings:
            problems.append("summary: by_class counts do not sum to findings")
    return problems


def require_valid_report(document) -> None:
    """Raise :class:`DiagnosisError` unless the document validates."""
    problems = validate_report(document)
    if problems:
        shown = "\n  ".join(problems[:20])
        more = (
            f"\n  ... and {len(problems) - 20} more"
            if len(problems) > 20 else ""
        )
        raise DiagnosisError(
            f"document does not conform to {SCHEMA}:\n  {shown}{more}"
        )
