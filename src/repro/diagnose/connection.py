"""Per-connection and per-controller diagnosis state machines.

One :class:`ConnState` accumulates everything the classifier knows about
one socket pair (``redis.0.a``/``redis.0.b`` fold into stem ``redis.0``)
within one run segment; one :class:`TogglerState` does the same for one
controller src.  Both are strictly single-pass: every trace record is
examined once, updates O(1) state, and is dropped — the classifier never
buffers the stream, which is what lets the live ``--follow`` mode and
the supervisor hook run always-on.

All evidence accumulates into :class:`~repro.diagnose.rules.Clusters`
per finding class; :meth:`ConnState.findings` / :meth:`ConnState.verdict`
are pure snapshots so mid-stream reports don't perturb the final one.
"""

from __future__ import annotations

from collections import deque

from repro.diagnose.report import ConnectionVerdict, Finding
from repro.diagnose.rules import (
    CLASS_BLACKOUT,
    CLASS_ESTIMATOR_DIVERGENCE,
    CLASS_LOSS,
    CLASS_STALE_EXCHANGE,
    CLASS_STALL,
    CLASS_TOGGLER_FROZEN,
    CLASS_TOGGLER_OSCILLATING,
    Clusters,
    DiagnosisConfig,
    FROZEN_PHASES,
    LIMIT_IDLE,
    LIMIT_NETWORK,
    LIMIT_RECEIVER,
    LIMIT_SENDER,
    limit_label,
)
from repro.units import to_msecs, to_usecs

#: Verdict tie-break severity (higher wins on equal sample counts).
_SEVERITY = {
    LIMIT_NETWORK: 3,
    LIMIT_RECEIVER: 2,
    LIMIT_SENDER: 1,
    LIMIT_IDLE: 0,
}


def connection_stem(src: str) -> str | None:
    """Map a record src to its socket-pair stem, or ``None``.

    Connection endpoints are named ``{stem}.a`` (client side) and
    ``{stem}.b`` (server side) by :func:`repro.tcp.connect.connect_pair`,
    and every per-connection record type (queue/estimator/exchange/tcp)
    uses the endpoint name as its src.  Anything else — toggler, log,
    supervisor, fault hooks — is not a connection.
    """
    if src.endswith(".a") or src.endswith(".b"):
        return src[:-2]
    return None


class _SideState:
    """Adaptive baselines for one endpoint of a connection.

    The two endpoints of a pair are *different* streams — their own
    exchange cadence, their own candidate counter clock, their own
    benign queue-delay profile — so every EWMA and monotonicity check
    lives per side.  Folding them (the obvious per-stem shortcut) makes
    the interleaving itself look pathological: two clean 10 ms cadences
    offset by 5 ms read as a wildly erratic 5 ms one, and the peers'
    independent counter clocks read as constant replays.
    """

    __slots__ = (
        "unread_ewma", "latency_ewma", "latency_samples",
        "last_candidate_time", "sends_in_flight",
    )

    def __init__(self):
        self.unread_ewma: float | None = None
        self.latency_ewma: float | None = None
        self.latency_samples = 0
        self.last_candidate_time: int | None = None
        # Timestamps of exchange.sends not yet observed at the peer.
        self.sends_in_flight: deque[int] = deque()


class ConnState:
    """Single-pass diagnosis state for one socket pair in one run."""

    def __init__(self, stem: str, config: DiagnosisConfig):
        self.stem = stem
        self._config = config
        # Dapper triage.
        self._limits = {
            LIMIT_SENDER: 0, LIMIT_NETWORK: 0,
            LIMIT_RECEIVER: 0, LIMIT_IDLE: 0,
        }
        self._samples = 0
        self._timeline: list[list] = []  # [start, end, label], mutable tail
        # Traffic liveness (dead-air rule).
        self.first_seen: int | None = None  # any record for this stem
        self._last_traffic: int | None = None
        self._traffic_events = 0
        # Evidence clusters, one per finding class.
        self._loss = Clusters(config.merge_gap_ns)
        self._dead_air = Clusters(config.merge_gap_ns)
        self._stall = Clusters(config.merge_gap_ns)
        self._stale = Clusters(config.merge_gap_ns)
        self._divergence = Clusters(config.merge_gap_ns)
        # Per-endpoint adaptive baselines.
        self._sides: dict[str, _SideState] = {}
        # Peak evidence magnitudes, for finding detail strings.
        self._worst_stall_ns = 0
        self._worst_gap_ns = 0
        self._worst_latency_ns = 0.0

    def _side(self, src: str) -> _SideState:
        state = self._sides.get(src)
        if state is None:
            state = self._sides[src] = _SideState()
        return state

    # ------------------------------------------------------------------
    # Record intake (one method per relevant record type).
    # ------------------------------------------------------------------

    def saw(self, t: int) -> None:
        """Note any record for this stem; advance time-driven rules."""
        if self.first_seen is None:
            self.first_seen = t
        self._expire_sends(t)

    def on_traffic(self, t: int) -> None:
        """A wire-level event (``tcp.event`` or ``exchange.recv``).

        Traffic is proof the path delivers; a gap between consecutive
        proofs longer than ``dead_air_ns`` is a blackout interval, as is
        a silent tail (checked by :meth:`at_end`).
        """
        if (
            self._last_traffic is not None
            and t - self._last_traffic > self._config.dead_air_ns
        ):
            self._dead_air.add(self._last_traffic, t)
        self._last_traffic = t
        self._traffic_events += 1

    def on_tcp_event(self, t: int, record: dict) -> None:
        """A ``tcp.event``: traffic proof, plus the loss rule."""
        self.on_traffic(t)
        detail = record.get("detail")
        if (
            record.get("event") == "tx"
            and isinstance(detail, dict)
            and detail.get("retransmit")
        ):
            self._loss.add(t)

    def on_exchange_send(self, t: int, src: str) -> None:
        """An ``exchange.send``: a state is now in flight to the peer.

        A send is *not* traffic proof (it is an attempt; blackout
        detection depends on attempts failing silently) — it opens a
        delivery obligation that :meth:`_expire_sends` enforces.
        """
        self._side(src).sends_in_flight.append(t)

    def on_exchange_recv(self, t: int, src: str, record: dict) -> None:
        """An ``exchange.recv``: traffic proof, plus the staleness rules."""
        self.on_traffic(t)
        side = self._side(src)
        # The arrival satisfies the oldest in-flight send of the *peer*
        # endpoint (exchange delivery is FIFO on a TCP stream).  If an
        # older send was dropped, FIFO pairing retires the dropped one
        # here and leaves this one pending — the count of expiries
        # still equals the count of drops, just one cadence late.
        peer = self._side(self._peer_src(src))
        if peer.sends_in_flight:
            peer.sends_in_flight.popleft()
        if record.get("outcome") != "accepted":
            self._stale.add(t)
        else:
            candidate_time = record.get("unacked", {}).get("time")
            if (
                isinstance(candidate_time, int)
                and side.last_candidate_time is not None
                and candidate_time < side.last_candidate_time
            ):
                # Counter time ran backwards: a replayed stale state.
                self._stale.add(t)
            if isinstance(candidate_time, int):
                side.last_candidate_time = candidate_time

    @staticmethod
    def _peer_src(src: str) -> str:
        return src[:-2] + (".b" if src.endswith(".a") else ".a")

    def _expire_sends(self, now: int) -> None:
        """Turn overdue in-flight sends into stale-exchange evidence."""
        timeout = self._config.exchange_timeout_ns
        for side in self._sides.values():
            pending = side.sends_in_flight
            while pending and now - pending[0] > timeout:
                sent = pending.popleft()
                self._stale.add(sent, sent + timeout)
                self._worst_gap_ns = max(self._worst_gap_ns, now - sent)

    def on_estimator_reject(self, t: int) -> None:
        """An ``estimator.reject``: the remote view was unusable."""
        self._stale.add(t)

    def on_estimator_sample(self, t: int, src: str, record: dict) -> None:
        """An ``estimator.sample``: triage, stall, and divergence rules."""
        cfg = self._config
        side = self._side(src)
        local = record.get("local") or {}
        remote = record.get("remote") or {}
        unacked = local.get("unacked")
        unread = local.get("unread")
        ackdelay = local.get("ackdelay")
        label = limit_label(unacked, unread, ackdelay)
        self._limits[label] += 1
        self._samples += 1
        if self._timeline and self._timeline[-1][2] == label:
            self._timeline[-1][1] = t
        else:
            self._timeline.append([t, t, label])
        # Stalled receiver: an unread delay — ours, or the peer's as the
        # exchange reported it — spikes over this side's own baseline.
        # A stalled *remote* receiver is only visible in the remote
        # component, so both views feed the same rule.
        unread_signal = None
        for value in (unread, remote.get("unread")):
            if value is not None and (
                unread_signal is None or value > unread_signal
            ):
                unread_signal = value
        if unread_signal is not None:
            threshold = cfg.stall_floor_ns
            if side.unread_ewma is not None:
                threshold = max(threshold, cfg.stall_factor * side.unread_ewma)
            if unread_signal > threshold:
                self._stall.add(t)
                self._worst_stall_ns = max(self._worst_stall_ns, unread_signal)
            else:
                alpha = cfg.baseline_alpha
                side.unread_ewma = (
                    unread_signal if side.unread_ewma is None
                    else (1 - alpha) * side.unread_ewma + alpha * unread_signal
                )
        # Divergence: a clamped estimate, or one far beyond its EWMA.
        latency = record.get("latency_ns")
        if record.get("clamped") is not None:
            self._divergence.add(t)
        elif latency is not None:
            if (
                side.latency_samples >= cfg.divergence_min_samples
                and side.latency_ewma is not None
                and latency > cfg.divergence_floor_ns
                and latency > cfg.divergence_factor * side.latency_ewma
            ):
                self._divergence.add(t)
                self._worst_latency_ns = max(self._worst_latency_ns, latency)
            else:
                alpha = cfg.baseline_alpha
                side.latency_ewma = (
                    latency if side.latency_ewma is None
                    else (1 - alpha) * side.latency_ewma + alpha * latency
                )
                side.latency_samples += 1

    # ------------------------------------------------------------------
    # Snapshots (pure: no state mutated).
    # ------------------------------------------------------------------

    def _tail_gap(self, end_ns: int) -> tuple[int, int] | None:
        """The silent-tail blackout interval, if the rule fires."""
        cfg = self._config
        if (
            self._last_traffic is not None
            and end_ns - self._last_traffic > cfg.dead_air_ns
        ):
            return (self._last_traffic, end_ns)
        if (
            self._traffic_events == 0
            and self.first_seen is not None
            and end_ns - self.first_seen > cfg.dead_air_ns
        ):
            # Collected all run long, yet the wire never delivered once.
            return (self.first_seen, end_ns)
        return None

    def findings(self, end_ns: int) -> list[Finding]:
        """Every finding for this connection, class-grouped, time-ordered."""
        out: list[Finding] = []
        for start, end, events in self._loss.closed():
            out.append(Finding(
                CLASS_LOSS, self.stem, start, end, events,
                f"{events} retransmission(s) over "
                f"{to_msecs(end - start):.1f} ms",
            ))
        dead = [list(ep) for ep in self._dead_air.closed()]
        tail = self._tail_gap(end_ns)
        if tail is not None:
            if dead and tail[0] - dead[-1][1] <= self._config.merge_gap_ns:
                dead[-1][1] = tail[1]
                dead[-1][2] += 1
            else:
                dead.append([tail[0], tail[1], 1])
        for start, end, events in dead:
            out.append(Finding(
                CLASS_BLACKOUT, self.stem, start, end, events,
                f"no traffic for {to_msecs(end - start):.1f} ms "
                f"on a previously live path",
            ))
        for start, end, events in self._stall.closed():
            out.append(Finding(
                CLASS_STALL, self.stem, start, end, events,
                f"unread delay spiked to {to_usecs(self._worst_stall_ns):.0f} "
                f"µs ({events} sample(s))",
            ))
        stale = [list(ep) for ep in self._stale.closed()]
        timeout = self._config.exchange_timeout_ns
        overdue = sorted(
            sent
            for side in self._sides.values()
            for sent in side.sends_in_flight
            if end_ns - sent > timeout
        )
        for sent in overdue:
            end = sent + timeout
            if stale and sent - stale[-1][1] <= self._config.merge_gap_ns:
                stale[-1][1] = max(stale[-1][1], end)
                stale[-1][2] += 1
            else:
                stale.append([sent, end, 1])
        for start, end, events in stale:
            out.append(Finding(
                CLASS_STALE_EXCHANGE, self.stem, start, end, events,
                f"{events} stale-exchange sign(s): undelivered, rejected, "
                f"or replayed states",
            ))
        for start, end, events in self._divergence.closed():
            out.append(Finding(
                CLASS_ESTIMATOR_DIVERGENCE, self.stem, start, end, events,
                f"{events} clamped or runaway estimate(s)",
            ))
        return out

    def verdict(self, end_ns: int) -> ConnectionVerdict:
        """The connection's Dapper verdict plus attributed finding classes."""
        best_label = LIMIT_IDLE
        best = (0, 0)
        for label, count in self._limits.items():
            key = (count, _SEVERITY[label])
            if count > 0 and key > best:
                best = key
                best_label = label
        classes = sorted({f.cls for f in self.findings(end_ns)})
        return ConnectionVerdict(
            id=self.stem,
            verdict=best_label,
            samples=self._samples,
            limits={k: v for k, v in self._limits.items() if v},
            timeline=[tuple(seg) for seg in self._timeline],
            finding_classes=classes,
        )


class TogglerState:
    """Single-pass diagnosis state for one controller src in one run."""

    def __init__(self, src: str, config: DiagnosisConfig):
        self.src = src
        self._config = config
        self._frozen = Clusters(config.merge_gap_ns)
        self._oscillating = Clusters(config.merge_gap_ns)
        self._streak = 0
        self._streak_start: int | None = None
        self._toggle_ewma = 0.0
        self._decisions = 0
        self._longest_streak = 0
        self._peak_ewma = 0.0

    def on_decision(self, t: int, record: dict) -> None:
        """A ``toggler.decision``: freeze-streak and oscillation rules."""
        cfg = self._config
        self._decisions += 1
        phase = record.get("phase")
        if phase in FROZEN_PHASES:
            if self._streak == 0:
                self._streak_start = t
            self._streak += 1
            self._longest_streak = max(self._longest_streak, self._streak)
            if self._streak >= cfg.frozen_ticks:
                # The whole streak (so far) is one frozen episode; the
                # cluster merge folds successive ticks together.
                self._frozen.add(self._streak_start, t)
        else:
            self._streak = 0
            self._streak_start = None
        toggled = 1.0 if record.get("toggled") else 0.0
        self._toggle_ewma = (
            (1 - cfg.osc_alpha) * self._toggle_ewma + cfg.osc_alpha * toggled
        )
        self._peak_ewma = max(self._peak_ewma, self._toggle_ewma)
        if self._toggle_ewma > cfg.osc_threshold:
            self._oscillating.add(t)

    def findings(self) -> list[Finding]:
        """Controller findings (pure snapshot)."""
        out: list[Finding] = []
        for start, end, events in self._frozen.closed():
            out.append(Finding(
                CLASS_TOGGLER_FROZEN, self.src, start, end, events,
                f"frozen for {self._longest_streak} consecutive tick(s) "
                f"(threshold {self._config.frozen_ticks})",
            ))
        for start, end, events in self._oscillating.closed():
            out.append(Finding(
                CLASS_TOGGLER_OSCILLATING, self.src, start, end, events,
                f"toggle rate EWMA peaked at {self._peak_ewma:.2f} "
                f"(threshold {self._config.osc_threshold})",
            ))
        return out
