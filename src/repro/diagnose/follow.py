"""Live diagnosis: tail a growing JSONL trace and classify as it lands.

:func:`follow_trace` is the engine behind ``repro diagnose --follow``:
a poll loop over :class:`repro.obs.sinks.JsonlTail` feeding one
:class:`~repro.diagnose.classifier.StreamingClassifier`.  The tail
reader only surfaces whole newline-terminated lines, so a torn write by
the live producer is invisible here; and because the classifier is
single-pass and order-driven, the report produced after the stream goes
quiet is byte-identical to an offline pass over the finished file.

Time sources are injectable (``clock``/``sleep``) so tests drive the
loop deterministically; only the *pacing* ever touches the wall clock —
report content is pure simulated time.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.diagnose.classifier import StreamingClassifier
from repro.diagnose.report import DiagnosisReport
from repro.diagnose.rules import DiagnosisConfig
from repro.errors import DiagnosisError
from repro.obs.sinks import JsonlTail


def follow_trace(
    path,
    config: DiagnosisConfig | None = None,
    poll_s: float = 0.5,
    idle_timeout_s: float | None = 10.0,
    on_progress: Callable[[StreamingClassifier, int], None] | None = None,
    stop: Callable[[], bool] | None = None,
    clock: Callable[[], float] = time.monotonic,
    sleep: Callable[[float], None] = time.sleep,
) -> DiagnosisReport:
    """Tail ``path`` until the stream goes quiet; return the diagnosis.

    Polls every ``poll_s`` seconds.  After each poll that delivered new
    records, ``on_progress(classifier, new_records)`` is invoked (the
    CLI prints a snapshot line from it).  The loop ends when no new
    record has arrived for ``idle_timeout_s`` seconds (``None`` means
    wait forever), or when ``stop()`` returns true — whichever comes
    first — and the final report is returned.
    """
    if poll_s <= 0:
        raise DiagnosisError(f"poll_s must be positive, got {poll_s}")
    if idle_timeout_s is not None and idle_timeout_s <= 0:
        raise DiagnosisError(
            f"idle_timeout_s must be positive, got {idle_timeout_s}"
        )
    classifier = StreamingClassifier(config)
    tail = JsonlTail(path)
    last_news = clock()
    while True:
        records = tail.poll()
        if records:
            classifier.feed_many(records)
            last_news = clock()
            if on_progress is not None:
                on_progress(classifier, len(records))
        if stop is not None and stop():
            break
        if (
            not records
            and idle_timeout_s is not None
            and clock() - last_news >= idle_timeout_s
        ):
            break
        sleep(poll_s)
    # Drain anything that landed during the final sleep.
    records = tail.poll()
    if records:
        classifier.feed_many(records)
        if on_progress is not None:
            on_progress(classifier, len(records))
    return classifier.report()
