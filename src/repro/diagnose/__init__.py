"""repro.diagnose — always-on diagnosis over the trace stream.

The observability layer (PR: repro.obs) made every run narrate itself as
``repro-trace-v1`` records; this package closes the loop by *reading*
that narration back, always-on, and saying what is wrong — the
Dapper-style diagnosis service from ROADMAP.md:

- :mod:`~repro.diagnose.classifier` — :class:`StreamingClassifier`: one
  single-pass run over a trace stream (file, live tail, or in-memory
  sink); per-connection state machines label each socket pair
  sender-/network-/receiver-limited and detect misbehavior episodes
  (loss, blackout, stall, stale exchange, frozen/oscillating toggler,
  estimator divergence).  Same records in, byte-identical report out.
- :mod:`~repro.diagnose.rules` — the decision rules and their tunable
  thresholds (:class:`DiagnosisConfig`), golden-trace safe by default.
- :mod:`~repro.diagnose.report` / :mod:`~repro.diagnose.schema` — the
  typed ``repro-diagnosis-v1`` report, canonical serialization, and
  validation.
- :mod:`~repro.diagnose.follow` — deterministic live tailing of a
  growing JSONL sink (the ``repro diagnose --follow`` engine).
- :mod:`~repro.diagnose.hook` — :class:`DiagnosisHook`: scores each
  supervised job's trace segment as it completes, records ``diagnose.*``
  metrics and ``diagnosis.verdict`` records, and can escalate
  pathological verdicts into the supervisor's quarantine path.
- :mod:`~repro.diagnose.scoring` — detection recall/precision of a
  report against the injector's labeled fault episodes (the
  ``repro-robustness-v1`` ground truth).

Detection never reads ``fault.verdict`` records: those are the
injector's own narration — the ground truth the scoring compares
against — and consuming them would make every detection circular.
"""

from repro.diagnose.classifier import StreamingClassifier, diagnose_records
from repro.diagnose.follow import follow_trace
from repro.diagnose.hook import DiagnosisHook
from repro.diagnose.report import (
    ConnectionVerdict,
    DiagnosisReport,
    Finding,
    RunReport,
    SCHEMA,
    render_report,
)
from repro.diagnose.rules import DiagnosisConfig, FINDING_CLASSES
from repro.diagnose.schema import require_valid_report, validate_report
from repro.diagnose.scoring import score_report

__all__ = [
    "ConnectionVerdict",
    "DiagnosisConfig",
    "DiagnosisHook",
    "DiagnosisReport",
    "FINDING_CLASSES",
    "Finding",
    "RunReport",
    "SCHEMA",
    "StreamingClassifier",
    "diagnose_records",
    "follow_trace",
    "render_report",
    "require_valid_report",
    "score_report",
    "validate_report",
]
