"""Supervisor integration: diagnose each job's trace as it completes.

:class:`DiagnosisHook` turns the offline classifier into an always-on
service inside a supervised campaign.  It tees the campaign tracer's
sink — every record flows to the original sink *and* into one
:class:`~repro.diagnose.classifier.StreamingClassifier` — and when the
supervisor completes a job it asks the hook to score the segment that
job contributed (each traced job is its own run segment: its simulator
restarts the clock, which is exactly the classifier's run boundary).

The supervisor records the verdict as ``diagnose.*`` metrics and a
``diagnosis.verdict`` trace record; with ``quarantine=True`` a verdict
containing a *pathological* class (a misbehaving controller — see
:attr:`DiagnosisConfig.pathological_classes`) escalates into the
poison-quarantine path instead of completing, so a campaign cannot
silently accumulate results produced by a broken control loop.

Tee placement keeps the byte-identity contract: the hook only *reads*
the record stream; it never emits, reorders, or drops, so the sink's
file is byte-identical with and without diagnosis attached.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.diagnose.classifier import StreamingClassifier
from repro.diagnose.report import DiagnosisReport
from repro.diagnose.rules import DiagnosisConfig


@dataclass(frozen=True)
class JobDiagnosis:
    """The diagnosis verdict for one completed job's trace segment."""

    index: int
    key: str
    connections: int  # diagnosed so far, stream-wide
    findings: int     # attributed to this job's segment
    classes: tuple    # distinct finding classes in the segment, sorted
    pathological: bool

    def describe(self) -> str:
        if not self.findings:
            return "clean"
        flag = " PATHOLOGICAL" if self.pathological else ""
        return f"{self.findings} finding(s): {', '.join(self.classes)}{flag}"


class _TeeSink:
    """Forward every record to the wrapped sink and the classifier."""

    __slots__ = ("_inner", "_classifier")

    def __init__(self, inner, classifier: StreamingClassifier):
        self._inner = inner
        self._classifier = classifier

    def append(self, record: dict) -> None:
        self._classifier.feed(record)
        self._inner.append(record)

    def close(self) -> None:
        self._inner.close()

    @property
    def records(self):
        """Pass through retained records (memory sinks only)."""
        return getattr(self._inner, "records", [])


class DiagnosisHook:
    """Score each supervised job's trace segment on completion.

    Attach with :meth:`attach` (wraps the tracer's sink in a tee), hand
    the hook to :class:`repro.supervise.Supervisor` as ``diagnosis=``,
    and read the campaign-wide picture afterwards via :meth:`report`.
    ``quarantine=True`` makes pathological verdicts quarantine the job.
    """

    def __init__(
        self,
        config: DiagnosisConfig | None = None,
        quarantine: bool = False,
    ):
        self.classifier = StreamingClassifier(config)
        self.quarantine = quarantine
        self.verdicts: list[JobDiagnosis] = []
        self._counted: dict[int, int] = {}  # run index -> findings credited
        self._attached: list = []  # tracers already teed (idempotence)

    def attach(self, tracer) -> None:
        """Interpose the tee between ``tracer`` and its current sink.

        Idempotent per tracer, so a hook pre-attached by the caller is
        not teed twice when the campaign attaches it again.
        """
        if any(seen is tracer for seen in self._attached):
            return
        self._attached.append(tracer)
        tracer.sink = _TeeSink(tracer.sink, self.classifier)

    def job_completed(self, index: int, key: str) -> JobDiagnosis:
        """Score the segment(s) this job added since the previous call.

        A traced job contributes exactly one run segment, so the normal
        case credits that run's findings wholesale.  Attribution is
        per-run count deltas, so a run that straddles two calls (late
        records extending a previous segment) is never counted twice
        and never lost.
        """
        report = self.classifier.report()
        findings = 0
        classes: set[str] = set()
        for run in report.runs:
            credited = self._counted.get(run.index, 0)
            if len(run.findings) > credited:
                findings += len(run.findings) - credited
                classes.update(f.cls for f in run.findings)
            self._counted[run.index] = len(run.findings)
        pathological = bool(
            classes & set(self.classifier.config.pathological_classes)
        )
        verdict = JobDiagnosis(
            index=index,
            key=key,
            connections=report.summary()["connections"],
            findings=findings,
            classes=tuple(sorted(classes)),
            pathological=pathological,
        )
        self.verdicts.append(verdict)
        return verdict

    def report(self) -> DiagnosisReport:
        """The campaign-wide diagnosis so far (pure snapshot)."""
        return self.classifier.report()
