"""Score a diagnosis against the injector's labeled ground truth.

The fault injector (PR: repro.faults) now records every episode it
inflicts — class, interval, target — into the ``repro-robustness-v1``
document (``points[].fault_episodes``).  :func:`score_report` matches a
``repro-diagnosis-v1`` report against those labels and computes
per-class detection **recall** (did the classifier notice each inflicted
episode?) and overall **precision** (was anything flagged that nothing
explains?).

Matching is interval overlap with slack: detection inherently lags
injection (a drop is invisible until the retransmission ~RTO later; a
stalled receiver until the next estimator tick; a dead path until the
dead-air threshold), so a ground-truth interval is widened by
``slack_ns`` on both ends before testing overlap.  Classes match via
:data:`COMPATIBLE`: a blackout at full intensity manifests as loss
first (drops before the silence), a NIC overrun *is* loss at the ring,
so those pairs count as detections rather than misses.

Run alignment is positional: run segment *i* of the trace is point *i*
of the sweep — both are emitted in sweep order by construction.
"""

from __future__ import annotations

from repro.diagnose.report import DiagnosisReport
from repro.errors import DiagnosisError
from repro.units import msecs

#: Ground-truth class → finding classes that count as detecting it.
COMPATIBLE: dict[str, frozenset] = {
    "loss": frozenset({"loss"}),
    "blackout": frozenset({"blackout", "loss"}),
    "nic-overrun": frozenset({"loss", "blackout"}),
    "jitter": frozenset({"loss", "stale-exchange", "estimator-divergence"}),
    "stall": frozenset({"stall"}),
    "stale-exchange": frozenset({"stale-exchange"}),
}

#: Ground-truth class → finding classes it *explains* (for precision).
#: Wider than :data:`COMPATIBLE`: losing segments also loses the §3.2
#: metadata riding on them and a dark or stalled path starves the
#: exchange, so stale-exchange findings during those faults are honest
#: consequences — they just don't count as *detecting* the fault.
EXPLAINS: dict[str, frozenset] = {
    gt: accept | frozenset({"stale-exchange", "stall"})
    for gt, accept in COMPATIBLE.items()
}

#: Finding classes that ground truth can explain at all.  Control-plane
#: findings (frozen/oscillating toggler, divergence) are legitimate
#: *consequences* of injected faults, so they never count as false
#: positives in a faulted run — but they are still false positives in a
#: fault-free one.
_DATA_PLANE = frozenset({"loss", "blackout", "stall", "stale-exchange"})


def _overlaps(f_start, f_end, g_start, g_end, slack) -> bool:
    return f_start <= g_end + slack and f_end >= g_start - slack


def score_report(
    report,
    points: list,
    slack_ns: int = msecs(30),
) -> dict:
    """Match findings to labeled episodes; return the score document.

    ``report`` is a :class:`DiagnosisReport` or a parsed report JSON;
    ``points`` is the ``points`` list of a ``repro-robustness-v1``
    document whose entries carry ``fault_episodes``.  Returns::

        {"classes": {cls: {"episodes": N, "detected": M, "recall": r}},
         "episodes": N, "detected": M, "recall": r,      # micro-average
         "findings": F, "explained": E, "precision": p,
         "false_positives": [ ...unexplained findings... ],
         "clean_runs": C, "clean_run_findings": X}

    Raises :class:`DiagnosisError` when the report has more runs than
    the sweep has points (nothing to score against).
    """
    if isinstance(report, DiagnosisReport):
        document = report.to_json()
    else:
        document = report
    runs = document["runs"]
    if len(runs) > len(points):
        raise DiagnosisError(
            f"report has {len(runs)} run(s) but ground truth covers "
            f"{len(points)} point(s); cannot align"
        )
    per_class: dict[str, dict] = {}
    total_episodes = 0
    total_detected = 0
    findings_scored = 0
    explained = 0
    false_positives: list[dict] = []
    clean_runs = 0
    clean_run_findings = 0
    for run, point in zip(runs, points):
        episodes = point.get("fault_episodes") or []
        findings = run["findings"]
        if not episodes:
            clean_runs += 1
            clean_run_findings += len(findings)
            false_positives.extend(
                dict(f, run=run["index"]) for f in findings
            )
            continue
        for episode in episodes:
            cls = episode["class"]
            accept = COMPATIBLE.get(cls)
            if accept is None:
                raise DiagnosisError(
                    f"ground-truth episode has unknown class {cls!r}"
                )
            stats = per_class.setdefault(
                cls, {"episodes": 0, "detected": 0, "recall": 0.0}
            )
            stats["episodes"] += 1
            total_episodes += 1
            hit = any(
                f["class"] in accept
                and _overlaps(
                    f["start_ns"], f["end_ns"],
                    episode["start_ns"], episode["end_ns"], slack_ns,
                )
                for f in findings
            )
            if hit:
                stats["detected"] += 1
                total_detected += 1
        for f in findings:
            if f["class"] not in _DATA_PLANE:
                continue  # control-plane fallout of injected faults
            findings_scored += 1
            if any(
                f["class"] in EXPLAINS.get(ep["class"], frozenset())
                and _overlaps(
                    f["start_ns"], f["end_ns"],
                    ep["start_ns"], ep["end_ns"], slack_ns,
                )
                for ep in episodes
            ):
                explained += 1
            else:
                false_positives.append(dict(f, run=run["index"]))
    for stats in per_class.values():
        stats["recall"] = (
            stats["detected"] / stats["episodes"] if stats["episodes"] else 0.0
        )
    return {
        "classes": dict(sorted(per_class.items())),
        "episodes": total_episodes,
        "detected": total_detected,
        "recall": total_detected / total_episodes if total_episodes else 1.0,
        "findings": findings_scored,
        "explained": explained,
        "precision": explained / findings_scored if findings_scored else 1.0,
        "false_positives": false_positives,
        "clean_runs": clean_runs,
        "clean_run_findings": clean_run_findings,
    }


def render_score(score: dict) -> str:
    """Human-readable rendering of a :func:`score_report` result."""
    lines = [
        f"detection: {score['detected']}/{score['episodes']} episode(s) "
        f"(recall {score['recall']:.2f}), precision {score['precision']:.2f}"
    ]
    for cls, stats in score["classes"].items():
        lines.append(
            f"  {cls}: {stats['detected']}/{stats['episodes']} "
            f"(recall {stats['recall']:.2f})"
        )
    lines.append(
        f"  clean runs: {score['clean_runs']} with "
        f"{score['clean_run_findings']} finding(s)"
    )
    if score["false_positives"]:
        for f in score["false_positives"][:10]:
            lines.append(
                f"  unexplained: run {f['run']} {f['class']} @ "
                f"{f['connection']} [{f['start_ns']}..{f['end_ns']}]"
            )
    return "\n".join(lines)
