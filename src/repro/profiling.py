"""cProfile harness for benchmark runs: the ``repro-profile-v1`` schema.

``repro profile`` answers "where do the cycles go?" for the two
end-to-end bench regimes (see ``benchmarks/e2e_shapes.py``): it runs one
benchmark under :mod:`cProfile` and emits a JSON document ranking
functions by cumulative time.  The document is what guided this
codebase's hot-path pass (docs/PERFORMANCE.md), and CI validates its
schema so the profiling tooling cannot silently rot.

Document layout::

    {"schema": "repro-profile-v1",
     "shape": "fig2",
     "events_executed": N, "wall_seconds": S, "events_per_sec": R,
     "top": [{"function": "module:name:lineno",
              "ncalls": n, "tottime": t, "cumtime": c}, ...]}

``top`` is sorted by ``cumtime`` descending and capped at the requested
N.  Times are profiler-overhead-inclusive seconds; use them for
*ranking*, and ``benchmarks/e2e_shapes.py`` (no profiler) for absolute
events/sec numbers.
"""

from __future__ import annotations

import cProfile
import pstats
from dataclasses import replace

from repro.errors import WorkloadError
from repro.units import msecs

PROFILE_SCHEMA = "repro-profile-v1"

#: The profileable shapes, mirroring benchmarks/e2e_shapes.py (defined
#: here so the installed CLI does not depend on the benchmarks tree).
SHAPES = ("fig2", "faults")


def shape_config(shape: str, measure_ms: int = 80, seed: int | None = None):
    """The :class:`~repro.loadgen.lancet.BenchConfig` for one shape."""
    from repro.loadgen.lancet import BenchConfig

    if shape == "fig2":
        from repro.experiments.fig2 import fig2_config

        return replace(
            fig2_config(
                vm=True, nagle=True, seed=seed if seed is not None else 1,
                measure_ns=msecs(measure_ms),
            ),
            warmup_ns=msecs(20),
        )
    if shape == "faults":
        from repro.faults import named_plan

        return BenchConfig(
            rate_per_sec=15_000.0,
            fault_plan=named_plan("mixed"),
            min_rto_ns=msecs(5),
            warmup_ns=msecs(20),
            measure_ns=msecs(measure_ms),
            seed=seed if seed is not None else 3,
        )
    raise WorkloadError(f"unknown profile shape {shape!r}; pick from {SHAPES}")


def profile_run(
    config, shape: str = "custom", top_n: int = 25, backend=None
) -> dict:
    """Run one benchmark under cProfile; return a repro-profile-v1 dict.

    ``backend`` selects the batch pipeline (see :mod:`repro.config`) so
    each backend's cycle ranking can be captured without editing
    drivers — results are byte-identical across backends, profiles are
    not (that is the point).
    """
    from repro.loadgen.lancet import run_benchmark

    if top_n <= 0:
        raise WorkloadError(f"top_n must be positive, got {top_n}")
    holder: dict = {}

    def tweak(bed) -> None:
        holder["bed"] = bed

    profiler = cProfile.Profile()
    profiler.enable()
    run_benchmark(config, tweak=tweak, backend=backend)
    profiler.disable()

    stats = pstats.Stats(profiler)
    wall = stats.total_tt
    events = holder["bed"].sim.events_executed
    rows = []
    for (filename, lineno, name), (
        _primitive, ncalls, tottime, cumtime, _callers
    ) in stats.stats.items():
        rows.append({
            "function": f"{filename}:{name}:{lineno}",
            "ncalls": ncalls,
            "tottime": round(tottime, 6),
            "cumtime": round(cumtime, 6),
        })
    rows.sort(key=lambda row: (-row["cumtime"], row["function"]))
    return {
        "schema": PROFILE_SCHEMA,
        "shape": shape,
        "events_executed": events,
        "wall_seconds": round(wall, 6),
        "events_per_sec": round(events / wall) if wall > 0 else None,
        "top": rows[:top_n],
    }


def validate_profile(document) -> list[str]:
    """Schema problems in a repro-profile-v1 dict ([] = valid)."""
    problems: list[str] = []
    if not isinstance(document, dict):
        return [f"profile document must be an object, got {type(document).__name__}"]
    if document.get("schema") != PROFILE_SCHEMA:
        problems.append(
            f"schema must be {PROFILE_SCHEMA!r}, got {document.get('schema')!r}"
        )
    for field, kind in (
        ("shape", str),
        ("events_executed", int),
        ("wall_seconds", (int, float)),
        ("top", list),
    ):
        if not isinstance(document.get(field), kind):
            problems.append(f"missing or mistyped field {field!r}")
    rows = document.get("top")
    if not isinstance(rows, list):
        return problems
    previous = None
    for position, row in enumerate(rows):
        if not isinstance(row, dict):
            problems.append(f"top[{position}] is not an object")
            continue
        for field, kind in (
            ("function", str),
            ("ncalls", int),
            ("tottime", (int, float)),
            ("cumtime", (int, float)),
        ):
            if not isinstance(row.get(field), kind):
                problems.append(
                    f"top[{position}] missing or mistyped field {field!r}"
                )
        cumtime = row.get("cumtime")
        if isinstance(cumtime, (int, float)):
            if previous is not None and cumtime > previous + 1e-9:
                problems.append(
                    f"top[{position}] breaks the cumtime descending order"
                )
            previous = cumtime
    return problems
