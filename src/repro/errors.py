"""Exception hierarchy for the repro package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors like ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """The discrete-event engine was used incorrectly (e.g. scheduling in
    the past, running a finished simulation)."""


class ProcessError(SimulationError):
    """A simulation process yielded something the scheduler cannot
    interpret, or was resumed after termination."""


class NetworkError(ReproError):
    """Invalid network configuration or packet handling (e.g. oversized
    frame for the link MTU without TSO)."""


class TcpError(ReproError):
    """TCP socket misuse: sending on a closed socket, malformed segment,
    option-encoding failures, and similar."""


class ProtocolError(ReproError):
    """Application-level protocol violation (malformed RESP data)."""


class EstimationError(ReproError):
    """Queue-state or estimator misuse, e.g. computing averages over an
    empty or negative interval."""


class WorkloadError(ReproError):
    """Invalid workload or load-generator configuration."""


class ObservabilityError(ReproError):
    """Observability-layer misuse: malformed trace files, records that
    violate the ``repro-trace-v1`` schema, invalid sink configuration."""


class DiagnosisError(ReproError):
    """Diagnosis-service misuse: out-of-range decision thresholds, a
    malformed ``repro-diagnosis-v1`` report, or scoring a report against
    ground truth it does not cover."""


class FaultError(ReproError):
    """Invalid fault plan or fault-injector misuse (e.g. out-of-range
    probabilities, a blackout longer than its flap period, or attaching
    two fault hooks to one link)."""


class WatchdogError(SimulationError):
    """A run exceeded its watchdog budget (event count or simulated
    time) — the typed fail-fast signal for runaway configurations, so a
    campaign supervisor can quarantine the config instead of spinning."""


class SuperviseError(ReproError):
    """Campaign-supervision misuse: invalid retry/timeout policy, a
    corrupt or incompatible checkpoint store, and similar."""


class CampaignError(SuperviseError):
    """A supervised campaign finished with quarantined jobs.

    Raised by the strict campaign entry points; :attr:`outcomes` holds
    the full index-aligned outcome list (successes included), so a
    caller can still salvage the completed runs.
    """

    def __init__(self, message: str, outcomes=None):
        super().__init__(message)
        self.outcomes = outcomes if outcomes is not None else []


class CampaignSpecError(ReproError):
    """A declarative campaign spec is malformed: unknown schema,
    invalid field, unresolvable override, or a matrix/metric selection
    the spec's scenario cannot satisfy."""


class RemedyError(ReproError):
    """Remediation-layer misuse: an unknown playbook name, a malformed
    playbook config, an invalid budget, or a malformed
    ``repro-remediation-v1`` report."""


class ServiceError(ReproError):
    """Service-mode misuse: an unusable spool/state directory, a corrupt
    ``repro-service-v1`` journal, or an invalid daemon configuration."""
