"""A minimal request/response RPC framework with built-in hints.

The paper argues (§3.3) that its ``create``/``complete`` hint API "can
easily be integrated into C runtime libraries, making little or no
assumptions about application-specific semantics ... suitable for
adoption by popular request-response frameworks like gRPC and Thrift."
This package demonstrates exactly that integration: a small RPC layer
over the simulated TCP substrate whose *channel* drives a
:class:`~repro.core.hints.HintSession` transparently — applications get
accurate end-to-end estimation on both endpoints without touching a
single counter.

- :mod:`~repro.rpc.framing` — length-prefixed wire framing (method id,
  call id, payload length) with exact byte accounting;
- :mod:`~repro.rpc.channel` — the client side: ``call()`` issues a
  request and returns a waitable reply future; hints fire on issue and
  completion;
- :mod:`~repro.rpc.server` — the server side: a method registry plus
  the standard event-loop process.
"""

from repro.rpc.channel import RpcCallFuture, RpcChannel
from repro.rpc.framing import FRAME_HEADER_BYTES, frame_bytes
from repro.rpc.server import RpcMethod, RpcServer

__all__ = [
    "FRAME_HEADER_BYTES",
    "RpcCallFuture",
    "RpcChannel",
    "RpcMethod",
    "RpcServer",
    "frame_bytes",
]
