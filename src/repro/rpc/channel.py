"""The RPC client channel: calls, reply futures, and transparent hints.

The channel owns a :class:`~repro.core.hints.HintSession` and drives it
from inside ``call()`` (create) and the reply path (complete) — the
application never sees a counter, which is the paper's §3.3 adoption
argument.  Attaching the session to the socket's metadata exchange
ships the queue state to the server automatically.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.hints import HintSession
from repro.errors import ProtocolError
from repro.rpc.messages import RpcReply, RpcRequest
from repro.sim.events import Event


class RpcCallFuture:
    """A waitable reply handle.

    Processes ``yield future`` to block until the reply arrives; the
    yield resumes with the :class:`~repro.rpc.messages.RpcReply`.
    """

    def __init__(self, sim, request: RpcRequest):
        self.request = request
        self._event = Event(sim, name=f"rpc.call.{request.call_id}")

    @property
    def done(self) -> bool:
        """Whether the reply arrived."""
        return self._event.triggered

    @property
    def reply(self) -> RpcReply | None:
        """The reply, once arrived."""
        return self._event.value

    def _complete(self, reply: RpcReply) -> None:
        self._event.trigger(reply)

    def _subscribe(self, resume: Callable[[Any], None]) -> None:
        self._event.add_callback(resume)


class RpcChannel:
    """One client's connection to an RPC server."""

    def __init__(self, sim, host, socket, exchange=None, name: str = "rpc"):
        self._sim = sim
        self.host = host
        self.socket = socket
        self.name = name
        self.hints = HintSession(host.clock)
        if exchange is not None:
            if exchange.hint_session is None:
                exchange.hint_session = self.hints
        self._pending: dict[int, RpcCallFuture] = {}
        self.calls_issued = 0
        self.replies_received = 0
        self.errors_received = 0
        self._drainer = sim.spawn(self._drain(), name=f"{name}.drain")

    # ------------------------------------------------------------------
    # Client API.
    # ------------------------------------------------------------------

    def call(self, method_id: int, payload_bytes: int) -> RpcCallFuture:
        """Issue one call; returns a waitable reply future.

        Charges nothing by itself — the caller's process pays its own
        CPU costs (the channel cannot know the caller's context).
        """
        if payload_bytes < 0:
            raise ProtocolError(f"negative payload {payload_bytes}")
        request = RpcRequest(
            method_id=method_id,
            payload_bytes=payload_bytes,
            issued_at=self._sim.now,
        )
        future = RpcCallFuture(self._sim, request)
        self._pending[request.call_id] = future
        self.hints.create(1)          # §3.3: transparent to the caller
        self.calls_issued += 1
        self.socket.send(request, request.wire_bytes)
        return future

    @property
    def outstanding(self) -> int:
        """Calls without replies yet."""
        return len(self._pending)

    # ------------------------------------------------------------------
    # Reply path.
    # ------------------------------------------------------------------

    def _drain(self):
        sock = self.socket
        host = self.host
        while True:
            if sock.readable_bytes == 0:
                yield sock.wait_readable()
            yield host.app_core.submit(host.costs.wakeup_ns)
            _, messages = sock.read()
            for message in messages:
                self._dispatch(message)

    def _dispatch(self, reply: RpcReply) -> None:
        future = self._pending.pop(reply.call_id, None)
        if future is None:
            raise ProtocolError(
                f"reply for unknown call {reply.call_id} on {self.name!r}"
            )
        self.hints.complete(1)        # §3.3: transparent to the caller
        self.replies_received += 1
        if reply.is_error:
            self.errors_received += 1
        future._complete(reply)
