"""The RPC server: a method registry plus the standard event loop.

Handlers are registered per method id with a cost model (fixed CPU cost
plus per-request-byte cost) and a reply-size function — the simulation
analogue of business logic.  The loop mirrors the Redis-like server:
wakeup cost per iteration, handler cost per call, one corked flush per
iteration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ProtocolError
from repro.rpc.messages import RpcReply, RpcRequest


@dataclass(frozen=True)
class RpcMethod:
    """One registered method.

    ``reply_bytes_fn`` maps the request payload size to the reply
    payload size; ``cost_ns`` is the handler's fixed CPU cost and
    ``byte_cost_ns`` its per-request-byte cost.
    """

    method_id: int
    name: str
    reply_bytes_fn: Callable[[int], int]
    cost_ns: int = 5_000
    byte_cost_ns: float = 0.02


class RpcServer:
    """Serves registered methods over one or more connections."""

    def __init__(self, sim, host, sockets, name: str = "rpc-server"):
        if not sockets:
            raise ProtocolError("an RPC server needs at least one socket")
        self._sim = sim
        self.host = host
        self.sockets = list(sockets)
        self.name = name
        self._methods: dict[int, RpcMethod] = {}
        self.process = None
        self.calls_served = 0
        self.errors_returned = 0
        self.iterations = 0

    def register(self, method: RpcMethod) -> None:
        """Add a method to the registry."""
        if method.method_id in self._methods:
            raise ProtocolError(f"method id {method.method_id} already bound")
        self._methods[method.method_id] = method

    def start(self) -> None:
        """Spawn the event loop."""
        if not self._methods:
            raise ProtocolError("no methods registered")
        self.process = self._sim.spawn(self._run(), name=self.name)

    # ------------------------------------------------------------------
    # Event loop.
    # ------------------------------------------------------------------

    def _run(self):
        host = self.host
        while True:
            if all(sock.readable_bytes == 0 for sock in self.sockets):
                yield self._wait_any_readable()
            yield host.app_core.submit(host.costs.wakeup_ns)
            self.iterations += 1
            for sock in self.sockets:
                if sock.readable_bytes == 0:
                    continue
                _, requests = sock.read()
                if not requests:
                    continue
                replies = []
                for request in requests:
                    reply, cost = self._serve(request)
                    yield host.app_core.submit(cost)
                    replies.append(reply)
                flush_bytes = sum(reply.wire_bytes for reply in replies)
                yield host.app_core.submit(host.send_cost_ns(flush_bytes))
                sock.cork()
                try:
                    for reply in replies:
                        sock.send(reply, reply.wire_bytes)
                finally:
                    sock.uncork()

    def _serve(self, request: RpcRequest) -> tuple[RpcReply, int]:
        method = self._methods.get(request.method_id)
        self.calls_served += 1
        if method is None:
            self.errors_returned += 1
            reply = RpcReply(
                request=request, payload_bytes=0,
                served_at=self._sim.now, is_error=True,
            )
            return reply, 1_000  # cheap rejection
        cost = method.cost_ns + round(method.byte_cost_ns * request.payload_bytes)
        reply = RpcReply(
            request=request,
            payload_bytes=method.reply_bytes_fn(request.payload_bytes),
            served_at=self._sim.now,
        )
        return reply, cost

    def _wait_any_readable(self):
        from repro.sim.events import Event

        combined = Event(self._sim, name=f"{self.name}.any_readable")

        def forward(_value):
            if not combined.triggered:
                combined.trigger()

        for sock in self.sockets:
            sock.wait_readable().add_callback(forward)
        return combined
