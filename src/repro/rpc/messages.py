"""RPC message descriptors flowing through the simulated sockets."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.rpc.framing import frame_bytes

_call_ids = itertools.count(1)


def next_call_id() -> int:
    """Allocate a fresh call identifier."""
    return next(_call_ids)


@dataclass
class RpcRequest:
    """One outbound call."""

    method_id: int
    payload_bytes: int
    issued_at: int
    call_id: int = field(default_factory=next_call_id)

    @property
    def wire_bytes(self) -> int:
        """Stream bytes of this request frame."""
        return frame_bytes(self.payload_bytes)


@dataclass
class RpcReply:
    """One reply, matched to its request by call id."""

    request: RpcRequest
    payload_bytes: int
    served_at: int
    is_error: bool = False

    @property
    def call_id(self) -> int:
        """The originating call's id."""
        return self.request.call_id

    @property
    def wire_bytes(self) -> int:
        """Stream bytes of this reply frame."""
        return frame_bytes(self.payload_bytes)
