"""RPC wire framing.

Each message — request or reply — travels as one length-prefixed frame:

=========  =====
field      bytes
=========  =====
length     4
call id    8
method id  2
flags      2
payload    n
=========  =====

so a frame carrying ``n`` payload bytes occupies ``16 + n`` bytes of
TCP stream.  As elsewhere in the simulation, payloads are carried by
*size*; the framing module provides exact byte accounting plus real
header encode/decode used by the protocol tests.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import ProtocolError

_HEADER = struct.Struct("<IQHH")
FRAME_HEADER_BYTES = _HEADER.size  # 16


def frame_bytes(payload_bytes: int) -> int:
    """Total stream bytes for one frame with the given payload."""
    if payload_bytes < 0:
        raise ProtocolError(f"negative payload size {payload_bytes}")
    return FRAME_HEADER_BYTES + payload_bytes


@dataclass(frozen=True)
class FrameHeader:
    """Decoded frame header."""

    payload_bytes: int
    call_id: int
    method_id: int
    flags: int = 0

    REPLY_FLAG = 0x1
    ERROR_FLAG = 0x2

    @property
    def is_reply(self) -> bool:
        """Whether this frame is a reply (vs. a request)."""
        return bool(self.flags & self.REPLY_FLAG)

    @property
    def is_error(self) -> bool:
        """Whether this reply carries an application error."""
        return bool(self.flags & self.ERROR_FLAG)

    def encode(self) -> bytes:
        """Serialize the 16-byte header."""
        return _HEADER.pack(
            self.payload_bytes, self.call_id, self.method_id, self.flags
        )

    @classmethod
    def decode(cls, data: bytes) -> "FrameHeader":
        """Parse a 16-byte header."""
        if len(data) != FRAME_HEADER_BYTES:
            raise ProtocolError(
                f"frame header must be {FRAME_HEADER_BYTES} bytes, "
                f"got {len(data)}"
            )
        payload_bytes, call_id, method_id, flags = _HEADER.unpack(data)
        return cls(
            payload_bytes=payload_bytes,
            call_id=call_id,
            method_id=method_id,
            flags=flags,
        )
