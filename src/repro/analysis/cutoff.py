"""Figure 4 curve analytics: cutoffs, SLO ranges, headline factors.

The paper reads three things off its latency-vs-load curves:

- the **cutoff**: the load beyond which batching (Nagle on) beats the
  no-batching default — where dynamic toggling should flip;
- the **sustainable range** under a latency SLO (500 µs) for each
  configuration, and the extension factor batching buys (1.93× in the
  paper);
- the **latency improvement** batching delivers at a reference load
  inside the overlap (2.80× at 37.5 kRPS in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EstimationError


@dataclass(frozen=True)
class CurvePoint:
    """One latency-vs-load point."""

    rate_per_sec: float
    latency_ns: float


def _sorted(points: list[CurvePoint]) -> list[CurvePoint]:
    if not points:
        raise EstimationError("empty curve")
    return sorted(points, key=lambda p: p.rate_per_sec)


def max_sustainable_rate(points: list[CurvePoint], slo_ns: float) -> float:
    """Highest measured load whose latency meets the SLO (0 if none).

    Scans up to the first SLO violation: loads beyond a violation are
    not 'sustainable' even if a later point dips back under (that would
    be measurement noise past saturation).
    """
    best = 0.0
    for point in _sorted(points):
        if point.latency_ns <= slo_ns:
            best = point.rate_per_sec
        else:
            break
    return best


def crossover_rate(
    baseline: list[CurvePoint], batched: list[CurvePoint]
) -> float | None:
    """The cutoff: lowest common rate where batching wins.

    Uses linear interpolation between the bracketing common rates;
    returns None when one configuration dominates everywhere.
    """
    base = {p.rate_per_sec: p.latency_ns for p in baseline}
    batch = {p.rate_per_sec: p.latency_ns for p in batched}
    rates = sorted(set(base) & set(batch))
    if not rates:
        raise EstimationError("curves share no rates")
    previous = None
    for rate in rates:
        diff = base[rate] - batch[rate]  # positive = batching better
        if diff > 0:
            if previous is None:
                return rate  # batching wins from the start
            prev_rate, prev_diff = previous
            # Interpolate where the difference crossed zero.
            span = diff - prev_diff
            if span <= 0:
                return rate
            fraction = -prev_diff / span
            return prev_rate + fraction * (rate - prev_rate)
        previous = (rate, diff)
    return None


def range_extension(
    baseline: list[CurvePoint], batched: list[CurvePoint], slo_ns: float
) -> tuple[float, float, float]:
    """(baseline max rate, batched max rate, extension factor) at an SLO."""
    base_max = max_sustainable_rate(baseline, slo_ns)
    batch_max = max_sustainable_rate(batched, slo_ns)
    if base_max <= 0:
        raise EstimationError("baseline sustains no load under the SLO")
    return base_max, batch_max, batch_max / base_max


def improvement_at(
    baseline: list[CurvePoint], batched: list[CurvePoint], rate_per_sec: float
) -> float:
    """baseline/batched latency ratio at one common rate (>1 = batching
    better)."""
    base = {p.rate_per_sec: p.latency_ns for p in baseline}
    batch = {p.rate_per_sec: p.latency_ns for p in batched}
    if rate_per_sec not in base or rate_per_sec not in batch:
        raise EstimationError(f"rate {rate_per_sec} missing from a curve")
    if batch[rate_per_sec] <= 0:
        raise EstimationError("non-positive batched latency")
    return base[rate_per_sec] / batch[rate_per_sec]
