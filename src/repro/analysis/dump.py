"""The ethtool analogue: dump every counter a testbed maintains.

The paper's prototype exports its queue states as ethtool counters; this
module generalizes that to the whole simulated machine — socket, NIC,
softirq and CPU statistics — as a plain nested dict (easy to diff, log,
or assert on) plus a rendered table for humans.
"""

from __future__ import annotations

from typing import Any

from repro.analysis.report import format_table


def socket_stats(sock) -> dict[str, Any]:
    """One socket's protocol and queue-state counters."""
    return {
        "segments_sent": sock.segments_sent,
        "pure_acks_sent": sock.pure_acks_sent,
        "retransmits": sock.retransmits,
        "bytes_sent": sock.bytes_sent,
        "snd_una": sock.snd_una,
        "snd_nxt": sock.snd_nxt,
        "rcv_nxt": sock.rcv_nxt,
        "cwnd": sock.cc.cwnd,
        "srtt_ns": sock.rtt.srtt_ns,
        "delack_timer_fires": sock.delack.timer_fires,
        "delack_quick_acks": sock.delack.quick_acks,
        "qs_unacked": _queue_stats(sock.qs_unacked),
        "qs_unread": _queue_stats(sock.qs_unread),
        "qs_ackdelay": _queue_stats(sock.qs_ackdelay),
    }


def _queue_stats(qs) -> dict[str, int]:
    return {"size": qs.size, "total": qs.total, "integral": qs.integral}


def nic_stats(nic) -> dict[str, Any]:
    """One NIC's transmit/receive counters."""
    return {
        "doorbells": nic.doorbells,
        "tx_descriptors": nic.tx_descriptors,
        "tx_wire_packets": nic.tx_wire_packets,
        "rx_wire_packets": nic.rx_wire_packets,
        "rx_deliveries": nic.rx_deliveries,
        "rx_interrupts": nic.rx_interrupts,
    }


def host_stats(host) -> dict[str, Any]:
    """One host's NIC, softirq and core counters."""
    return {
        "nic": nic_stats(host.nic),
        "softirq": {
            "interrupts": host.softirq.interrupts,
            "deliveries": host.softirq.deliveries,
            "wire_packets": host.softirq.wire_packets,
        },
        "app_core": {
            "busy_ns": host.app_core.busy_ns,
            "work_items": host.app_core.work_items,
            "utilization": host.app_core.utilization(),
        },
        "net_core": {
            "busy_ns": host.net_core.busy_ns,
            "work_items": host.net_core.work_items,
            "utilization": host.net_core.utilization(),
        },
    }


def exchange_stats(exchange) -> dict[str, Any]:
    """One metadata exchange's traffic counters."""
    return {
        "states_sent": exchange.states_sent,
        "states_received": exchange.states_received,
        "option_bytes_sent": exchange.option_bytes_sent,
    }


def dump_testbed(bed) -> dict[str, Any]:
    """Every counter of a :class:`~repro.loadgen.lancet.Testbed`."""
    stats: dict[str, Any] = {
        "client_host": host_stats(bed.client_host),
        "server_host": host_stats(bed.server_host),
        "connections": [],
    }
    for conn in bed.conns:
        stats["connections"].append({
            "client_sock": socket_stats(conn.client_sock),
            "server_sock": socket_stats(conn.server_sock),
            "client_exchange": exchange_stats(conn.client_exchange),
            "server_exchange": exchange_stats(conn.server_exchange),
        })
    return stats


def _flatten(prefix: str, value: Any, rows: list) -> None:
    if isinstance(value, dict):
        for key, nested in value.items():
            _flatten(f"{prefix}.{key}" if prefix else key, nested, rows)
    elif isinstance(value, list):
        for index, nested in enumerate(value):
            _flatten(f"{prefix}[{index}]", nested, rows)
    else:
        rows.append((prefix, value if value is not None else "-"))


def render_stats(stats: dict[str, Any], title: str = "counters") -> str:
    """Flatten a stats dict into an aligned two-column table."""
    rows: list = []
    _flatten("", stats, rows)
    return format_table(["counter", "value"], rows, title=title)
