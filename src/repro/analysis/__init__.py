"""Offline counter analysis — the paper's prototype methodology (§3.4).

The paper's prototype exports queue states as ethtool counters from both
machines and analyses them offline.  This package mirrors that:

- :mod:`~repro.analysis.counters` — periodic snapshots of both
  endpoints' three queue states during a run;
- :mod:`~repro.analysis.offline` — GETAVGS over snapshot intervals and
  the §3.2 combination into end-to-end estimates;
- :mod:`~repro.analysis.cutoff` — Figure 4 curve analytics: SLO-
  sustainable load, batching cutoff points, extension/improvement
  factors (the paper's 1.93× and 2.80× headlines);
- :mod:`~repro.analysis.report` — plain-text tables for the benchmark
  harness output.
"""

from repro.analysis.counters import CounterCollector, CounterSample, TripleSnapshot
from repro.analysis.cutoff import (
    CurvePoint,
    crossover_rate,
    improvement_at,
    max_sustainable_rate,
    range_extension,
)
from repro.analysis.offline import (
    OfflineEstimate,
    estimate_between,
    interval_series,
    window_estimate,
)
from repro.analysis.plot import ascii_plot, curve_points
from repro.analysis.report import format_table

__all__ = [
    "CounterCollector",
    "CounterSample",
    "CurvePoint",
    "OfflineEstimate",
    "TripleSnapshot",
    "ascii_plot",
    "crossover_rate",
    "curve_points",
    "estimate_between",
    "format_table",
    "improvement_at",
    "interval_series",
    "max_sustainable_rate",
    "range_extension",
    "window_estimate",
]
