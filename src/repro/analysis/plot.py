"""Terminal plots: render latency-vs-load curves as ASCII.

The repository is terminal-first (no matplotlib dependency); the
examples and CLI render the paper's figures as character grids — enough
to *see* the knees, crossovers and estimate tracking without leaving
the shell.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.errors import EstimationError

MARKERS = "ox+*#@%&"


def _nice_number(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    if abs(value) >= 10:
        return f"{value:.0f}"
    return f"{value:.2f}"


def ascii_plot(
    series: dict[str, Sequence[tuple[float, float]]],
    width: int = 64,
    height: int = 18,
    log_y: bool = False,
    title: str | None = None,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render named (x, y) series on one character grid.

    Each series gets a marker from :data:`MARKERS` (legend appended).
    ``log_y`` plots the y axis logarithmically — the right view for
    latency curves whose knees span orders of magnitude.
    """
    if not series or all(not points for points in series.values()):
        raise EstimationError("nothing to plot")
    if width < 16 or height < 4:
        raise EstimationError(f"grid too small: {width}x{height}")

    def transform(y: float) -> float:
        if not log_y:
            return y
        if y <= 0:
            raise EstimationError(f"log plot requires positive y, got {y}")
        return math.log10(y)

    all_points = [p for points in series.values() for p in points]
    xs = [x for x, _ in all_points]
    ys = [transform(y) for _, y in all_points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, points) in enumerate(series.items()):
        marker = MARKERS[index % len(MARKERS)]
        for x, y in points:
            col = round((x - x_lo) / x_span * (width - 1))
            row = height - 1 - round((transform(y) - y_lo) / y_span * (height - 1))
            grid[row][col] = marker

    lines = []
    if title:
        lines.append(title)
    top_label = _nice_number(10 ** y_hi if log_y else y_hi)
    bottom_label = _nice_number(10 ** y_lo if log_y else y_lo)
    label_width = max(len(top_label), len(bottom_label))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label.rjust(label_width)
        elif row_index == height - 1:
            prefix = bottom_label.rjust(label_width)
        else:
            prefix = " " * label_width
        lines.append(f"{prefix} |{''.join(row)}")
    axis = " " * label_width + " +" + "-" * width
    lines.append(axis)
    x_axis = (
        " " * label_width
        + "  "
        + _nice_number(x_lo)
        + _nice_number(x_hi).rjust(width - len(_nice_number(x_lo)))
    )
    lines.append(x_axis)
    footer = []
    if x_label or y_label or log_y:
        footer.append(f"x: {x_label}   y: {y_label}"
                      + ("  [log y]" if log_y else ""))
    legend = "   ".join(
        f"{MARKERS[index % len(MARKERS)]} = {name}"
        for index, name in enumerate(series)
    )
    footer.append(legend)
    lines.extend(footer)
    return "\n".join(lines)


def curve_points(points: Iterable) -> list[tuple[float, float]]:
    """Convert :class:`~repro.analysis.cutoff.CurvePoint` lists to
    (x, y) pairs with latency in microseconds."""
    return [(p.rate_per_sec, p.latency_ns / 1000.0) for p in points]
