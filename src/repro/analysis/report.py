"""Plain-text tables for benchmark output."""

from __future__ import annotations

from typing import Any, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 title: str | None = None) -> str:
    """Render an aligned ASCII table.

    Floats render with three significant decimals; everything else via
    ``str``.
    """
    def render(cell: Any) -> str:
        if isinstance(cell, float):
            return f"{cell:.3f}"
        return str(cell)

    rendered = [[render(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))

    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append(line(["-" * width for width in widths]))
    parts.extend(line(row) for row in rendered)
    return "\n".join(parts)
