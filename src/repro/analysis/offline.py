"""Offline end-to-end estimation from counter snapshots (paper §3.4).

Given two :class:`~repro.analysis.counters.CounterSample` instances
bracketing an interval, apply GETAVGS per queue and combine per §3.2:

    L_client_view = d(unacked,client) − d(ackdelay,server)
                    + d(unread,server) + d(unread,client)
    L_server_view = the symmetric expression
    L = max(both views)                       (the paper's hedge)

The client view covers request-send → response-read as perceived at the
client; the server view the converse.  Throughput is λ of the client's
unacked queue (units acknowledged per second) — "trivial to measure"
per the paper, reported for completeness.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.counters import CounterSample, TripleSnapshot
from repro.core.littles_law import get_avgs
from repro.core.qstate import QueueSnapshot
from repro.errors import EstimationError
from repro.units import SEC


def _delay(prev: QueueSnapshot, cur: QueueSnapshot) -> float | None:
    if cur.time <= prev.time:
        return None
    return get_avgs(prev, cur).latency_ns


def _view(
    local_prev: TripleSnapshot,
    local_cur: TripleSnapshot,
    remote_prev: TripleSnapshot,
    remote_cur: TripleSnapshot,
) -> float | None:
    unacked = _delay(local_prev.unacked, local_cur.unacked)
    local_unread = _delay(local_prev.unread, local_cur.unread)
    remote_unread = _delay(remote_prev.unread, remote_cur.unread)
    if unacked is None or local_unread is None or remote_unread is None:
        return None
    ackdelay = _delay(remote_prev.ackdelay, remote_cur.ackdelay) or 0.0
    return unacked - ackdelay + local_unread + remote_unread


@dataclass(frozen=True)
class OfflineEstimate:
    """End-to-end estimate for one snapshot interval."""

    start: int
    end: int
    client_view_ns: float | None
    server_view_ns: float | None
    latency_ns: float | None          # max of the views (paper §3.2)
    throughput_per_sec: float         # client unacked λ, units/s

    @property
    def defined(self) -> bool:
        """Whether any view produced an estimate."""
        return self.latency_ns is not None


def estimate_between(prev: CounterSample, cur: CounterSample) -> OfflineEstimate:
    """Combine one snapshot interval into an end-to-end estimate."""
    if cur.time <= prev.time:
        raise EstimationError(
            f"snapshots out of order: {prev.time} -> {cur.time}"
        )
    client_view = _view(prev.client, cur.client, prev.server, cur.server)
    server_view = _view(prev.server, cur.server, prev.client, cur.client)
    views = [v for v in (client_view, server_view) if v is not None]
    interval = cur.client.unacked.time - prev.client.unacked.time
    throughput = 0.0
    if interval > 0:
        throughput = (
            (cur.client.unacked.total - prev.client.unacked.total) * SEC / interval
        )
    return OfflineEstimate(
        start=prev.time,
        end=cur.time,
        client_view_ns=client_view,
        server_view_ns=server_view,
        latency_ns=max(views) if views else None,
        throughput_per_sec=throughput,
    )


def interval_series(samples: list[CounterSample]) -> list[OfflineEstimate]:
    """Per-interval estimates over a whole snapshot series."""
    return [
        estimate_between(prev, cur)
        for prev, cur in zip(samples, samples[1:])
    ]


def window_estimate(
    samples: list[CounterSample], start_ns: int, end_ns: int
) -> OfflineEstimate:
    """One estimate over [start, end]: first sample at/after start vs.
    last sample at/before end (the measurement-window aggregate)."""
    inside = [s for s in samples if start_ns <= s.time <= end_ns]
    if len(inside) < 2:
        raise EstimationError(
            f"need at least two samples in [{start_ns}, {end_ns}], "
            f"have {len(inside)}"
        )
    return estimate_between(inside[0], inside[-1])
