"""Periodic queue-state snapshots from both endpoints.

The simulated ethtool: a timer samples the three queue states of the
client and server sockets (or of attached unit adapters) at a fixed
period, producing a time series the offline analysis consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.qstate import QueueSnapshot
from repro.errors import EstimationError


@dataclass(frozen=True)
class TripleSnapshot:
    """One endpoint's three queue snapshots, taken together."""

    unacked: QueueSnapshot
    unread: QueueSnapshot
    ackdelay: QueueSnapshot

    @classmethod
    def capture(cls, states) -> "TripleSnapshot":
        """Snapshot an object exposing qs_unacked/qs_unread/qs_ackdelay."""
        return cls(
            unacked=states.qs_unacked.snapshot(),
            unread=states.qs_unread.snapshot(),
            ackdelay=states.qs_ackdelay.snapshot(),
        )


@dataclass(frozen=True)
class CounterSample:
    """Both endpoints' counters at one sampling instant."""

    time: int
    client: TripleSnapshot
    server: TripleSnapshot


class CounterCollector:
    """Samples both endpoints at a fixed period.

    ``client_states`` / ``server_states`` are any objects exposing the
    three queue states — sockets (byte units) or
    :class:`~repro.core.semantic.MessageUnits` adapters.

    With ``batch`` (a :class:`repro.sim.batch.SampleBatch`), each tick
    lands as a flat row in the batch instead of a
    :class:`CounterSample` object — the vectorized collection mode of
    the ``python``/``numpy`` backends.  The :attr:`samples` surface is
    preserved (materialized lazily from the batch), and
    :meth:`window_estimate`/:attr:`sample_count` answer the summarize
    path's queries without materializing anything.  Sample values are
    identical either way: both paths bring every queue state forward
    with a ``track(0)`` and record the same three ints per queue.
    """

    def __init__(self, sim, client_states, server_states, period_ns: int,
                 tracer=None, batch=None):
        from repro.obs.tracer import NULL_TRACER

        if period_ns <= 0:
            raise EstimationError(f"period must be positive, got {period_ns}")
        self._sim = sim
        self._client = client_states
        self._server = server_states
        self.period_ns = period_ns
        self.batch = batch
        self._samples: list[CounterSample] = []
        self._timer = None
        # Observability: each sample is also emitted as two
        # ``queue.sample`` trace records (one per endpoint), named after
        # the sampled sockets where they carry names.
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._client_src = getattr(client_states, "name", "client")
        self._server_src = getattr(server_states, "name", "server")

    @property
    def samples(self) -> list[CounterSample]:
        """The recorded series as :class:`CounterSample` objects.

        In batch mode this materializes (and caches) the whole series —
        a compatibility surface for offline analysis; hot-path consumers
        should prefer :meth:`window_estimate`/:attr:`sample_count`.
        """
        if self.batch is not None:
            return self.batch.samples()
        return self._samples

    @property
    def sample_count(self) -> int:
        """Number of samples recorded, without materializing any."""
        if self.batch is not None:
            return self.batch.sample_count
        return len(self._samples)

    def window_estimate(self, start_ns: int, end_ns: int):
        """:func:`~repro.analysis.offline.window_estimate` over the
        recorded series, bulk-selected in batch mode."""
        if self.batch is not None:
            return self.batch.window_estimate(start_ns, end_ns)
        from repro.analysis.offline import window_estimate

        return window_estimate(self._samples, start_ns, end_ns)

    def start(self) -> None:
        """Take an immediate sample and begin periodic sampling."""
        self.sample_now()
        self._timer = self._sim.call_after(self.period_ns, self._tick)

    def stop(self) -> None:
        """Stop sampling (takes one final sample; flushes the batch)."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self.sample_now()
        if self.batch is not None:
            self.batch.flush()

    def sample_now(self):
        """Record one sample immediately.

        Returns the :class:`CounterSample` in legacy mode; batch mode
        returns ``None`` (materializing one would defeat the point —
        use :meth:`samples` afterwards if objects are needed).
        """
        batch = self.batch
        if batch is not None:
            batch.append(self._sim.now, self._client, self._server)
            if self._tracer.enabled:
                sample = batch.materialize(batch.sample_count - 1)
                self._emit(sample)
            return None
        sample = CounterSample(
            time=self._sim.now,
            client=TripleSnapshot.capture(self._client),
            server=TripleSnapshot.capture(self._server),
        )
        self._samples.append(sample)
        if self._tracer.enabled:
            self._emit(sample)
        return sample

    def _emit(self, sample: CounterSample) -> None:
        tracer = self._tracer
        for src, triple in (
            (self._client_src, sample.client),
            (self._server_src, sample.server),
        ):
            tracer.queue_sample(
                src, triple.unacked, triple.unread, triple.ackdelay
            )

    def _tick(self) -> None:
        self.sample_now()
        self._timer = self._sim.call_after(self.period_ns, self._tick)
