"""Periodic queue-state snapshots from both endpoints.

The simulated ethtool: a timer samples the three queue states of the
client and server sockets (or of attached unit adapters) at a fixed
period, producing a time series the offline analysis consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.qstate import QueueSnapshot
from repro.errors import EstimationError


@dataclass(frozen=True)
class TripleSnapshot:
    """One endpoint's three queue snapshots, taken together."""

    unacked: QueueSnapshot
    unread: QueueSnapshot
    ackdelay: QueueSnapshot

    @classmethod
    def capture(cls, states) -> "TripleSnapshot":
        """Snapshot an object exposing qs_unacked/qs_unread/qs_ackdelay."""
        return cls(
            unacked=states.qs_unacked.snapshot(),
            unread=states.qs_unread.snapshot(),
            ackdelay=states.qs_ackdelay.snapshot(),
        )


@dataclass(frozen=True)
class CounterSample:
    """Both endpoints' counters at one sampling instant."""

    time: int
    client: TripleSnapshot
    server: TripleSnapshot


class CounterCollector:
    """Samples both endpoints at a fixed period.

    ``client_states`` / ``server_states`` are any objects exposing the
    three queue states — sockets (byte units) or
    :class:`~repro.core.semantic.MessageUnits` adapters.
    """

    def __init__(self, sim, client_states, server_states, period_ns: int,
                 tracer=None):
        from repro.obs.tracer import NULL_TRACER

        if period_ns <= 0:
            raise EstimationError(f"period must be positive, got {period_ns}")
        self._sim = sim
        self._client = client_states
        self._server = server_states
        self.period_ns = period_ns
        self.samples: list[CounterSample] = []
        self._timer = None
        # Observability: each sample is also emitted as two
        # ``queue.sample`` trace records (one per endpoint), named after
        # the sampled sockets where they carry names.
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._client_src = getattr(client_states, "name", "client")
        self._server_src = getattr(server_states, "name", "server")

    def start(self) -> None:
        """Take an immediate sample and begin periodic sampling."""
        self.sample_now()
        self._timer = self._sim.call_after(self.period_ns, self._tick)

    def stop(self) -> None:
        """Stop sampling (takes one final sample)."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self.sample_now()

    def sample_now(self) -> CounterSample:
        """Record one sample immediately."""
        sample = CounterSample(
            time=self._sim.now,
            client=TripleSnapshot.capture(self._client),
            server=TripleSnapshot.capture(self._server),
        )
        self.samples.append(sample)
        tracer = self._tracer
        if tracer.enabled:
            for src, triple in (
                (self._client_src, sample.client),
                (self._server_src, sample.server),
            ):
                tracer.queue_sample(
                    src, triple.unacked, triple.unread, triple.ackdelay
                )
        return sample

    def _tick(self) -> None:
        self.sample_now()
        self._timer = self._sim.call_after(self.period_ns, self._tick)
