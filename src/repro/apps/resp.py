"""RESP — the REdis Serialization Protocol (v2 subset).

A genuine encoder and incremental parser for the protocol Redis speaks.
The simulation's data plane carries message *descriptors* whose wire
sizes come from :func:`command_bytes` / :func:`bulk_reply_bytes`, so
every simulated byte count is exactly what Redis would put on the wire;
the parser exists for protocol-level tests and the runnable examples.

Covered types: simple strings (``+OK``), errors (``-ERR``), integers
(``:N``), bulk strings (``$N``, including null ``$-1``), and arrays
(``*N``) — enough for SET/GET traffic.
"""

from __future__ import annotations

from repro.errors import ProtocolError

CRLF = b"\r\n"


# ---------------------------------------------------------------------------
# Encoding.
# ---------------------------------------------------------------------------


def encode_command(*args: bytes) -> bytes:
    """Encode a command as a RESP array of bulk strings."""
    if not args:
        raise ProtocolError("a command needs at least one argument")
    parts = [b"*%d\r\n" % len(args)]
    for arg in args:
        parts.append(b"$%d\r\n" % len(arg))
        parts.append(arg)
        parts.append(CRLF)
    return b"".join(parts)


def encode_simple_string(text: bytes) -> bytes:
    """Encode ``+text\\r\\n``."""
    if CRLF in text:
        raise ProtocolError("simple strings cannot contain CRLF")
    return b"+" + text + CRLF


def encode_error(text: bytes) -> bytes:
    """Encode ``-text\\r\\n``."""
    return b"-" + text + CRLF


def encode_integer(value: int) -> bytes:
    """Encode ``:value\\r\\n``."""
    return b":%d\r\n" % value


def encode_bulk_reply(value: bytes | None) -> bytes:
    """Encode a bulk string reply; None encodes the null bulk ``$-1``."""
    if value is None:
        return b"$-1\r\n"
    return b"$%d\r\n" % len(value) + value + CRLF


# ---------------------------------------------------------------------------
# Exact wire sizes (used by the simulation's descriptors).
# ---------------------------------------------------------------------------


def _bulk_bytes(payload_len: int) -> int:
    # $<len>\r\n<payload>\r\n
    return 1 + len(str(payload_len)) + 2 + payload_len + 2


def command_bytes(*arg_lens: int) -> int:
    """Exact RESP size of a command with arguments of the given lengths."""
    if not arg_lens:
        raise ProtocolError("a command needs at least one argument")
    size = 1 + len(str(len(arg_lens))) + 2  # *N\r\n
    for arg_len in arg_lens:
        size += _bulk_bytes(arg_len)
    return size


def set_command_bytes(key_len: int, value_len: int) -> int:
    """Exact size of ``SET key value``."""
    return command_bytes(3, key_len, value_len)


def get_command_bytes(key_len: int) -> int:
    """Exact size of ``GET key``."""
    return command_bytes(3, key_len)


def simple_reply_bytes(text_len: int = 2) -> int:
    """Exact size of a simple-string reply (default ``+OK``)."""
    return 1 + text_len + 2


def bulk_reply_bytes(value_len: int | None) -> int:
    """Exact size of a bulk reply; None = null bulk."""
    if value_len is None:
        return 5  # $-1\r\n
    return _bulk_bytes(value_len)


# ---------------------------------------------------------------------------
# Incremental parsing.
# ---------------------------------------------------------------------------


class RespParser:
    """Incremental RESP parser: feed bytes, pop complete values.

    Values are returned as Python types: bytes for strings/bulk, int for
    integers, list for arrays, None for null bulk, and
    ``(b"error", message)`` tuples for errors.
    """

    def __init__(self):
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list:
        """Append bytes; return every value completed by them."""
        self._buffer.extend(data)
        values = []
        while True:
            result = self._try_parse(0)
            if result is None:
                return values
            value, consumed = result
            del self._buffer[:consumed]
            values.append(value)

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet forming a complete value."""
        return len(self._buffer)

    def _try_parse(self, pos: int):
        if pos >= len(self._buffer):
            return None
        marker = self._buffer[pos : pos + 1]
        line = self._read_line(pos + 1)
        if line is None:
            return None
        text, after = line
        if marker == b"+":
            return bytes(text), after
        if marker == b"-":
            return (b"error", bytes(text)), after
        if marker == b":":
            return self._parse_int(text), after
        if marker == b"$":
            return self._parse_bulk(text, after)
        if marker == b"*":
            return self._parse_array(text, after)
        raise ProtocolError(f"unknown RESP type marker {marker!r}")

    def _read_line(self, pos: int):
        end = self._buffer.find(CRLF, pos)
        if end < 0:
            return None
        return self._buffer[pos:end], end + 2

    @staticmethod
    def _parse_int(text: bytearray) -> int:
        try:
            return int(text)
        except ValueError as exc:
            raise ProtocolError(f"bad RESP integer {bytes(text)!r}") from exc

    def _parse_bulk(self, header: bytearray, after: int):
        length = self._parse_int(header)
        if length == -1:
            return None, after
        if length < 0:
            raise ProtocolError(f"bad bulk length {length}")
        end = after + length
        if len(self._buffer) < end + 2:
            return None
        if self._buffer[end : end + 2] != CRLF:
            raise ProtocolError("bulk string not CRLF-terminated")
        return bytes(self._buffer[after:end]), end + 2

    def _parse_array(self, header: bytearray, after: int):
        count = self._parse_int(header)
        if count == -1:
            return None, after
        if count < 0:
            raise ProtocolError(f"bad array length {count}")
        items = []
        pos = after
        for _ in range(count):
            result = self._try_parse(pos)
            if result is None:
                return None
            value, pos = result
            items.append(value)
        return items, pos
