"""Request/response descriptors flowing through simulated sockets.

A descriptor stands for the RESP bytes a real client/server would put on
the wire; its ``wire_bytes`` is the exact RESP encoding size (computed by
:mod:`repro.apps.resp`).  Timestamps accumulate along the journey so the
load generator can compute latencies without global lookup tables.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.apps import resp
from repro.errors import WorkloadError

_request_ids = itertools.count()


@dataclass
class Request:
    """One client command (SET or GET).

    ``created_at`` is the scheduled issue time (open-loop arrival);
    ``sent_at`` is when the send syscall actually ran.  The difference is
    client-side queueing — it grows when the client itself saturates
    (the Figure 2 VM scenario).
    """

    kind: str
    key: str
    value_bytes: int
    created_at: int
    request_id: int = field(default_factory=lambda: next(_request_ids))
    sent_at: int | None = None

    def __post_init__(self):
        if self.kind not in ("SET", "GET"):
            raise WorkloadError(f"unsupported command {self.kind!r}")
        if not self.key:
            raise WorkloadError("key must be non-empty")
        if self.kind == "SET" and self.value_bytes < 0:
            raise WorkloadError(f"negative value size {self.value_bytes}")

    @property
    def key_bytes(self) -> int:
        """Key length on the wire."""
        return len(self.key)

    @property
    def wire_bytes(self) -> int:
        """Exact RESP size of this command on the wire."""
        if self.kind == "SET":
            return resp.set_command_bytes(self.key_bytes, self.value_bytes)
        return resp.get_command_bytes(self.key_bytes)


@dataclass
class Response:
    """The server's reply descriptor for one request.

    ``value_bytes`` is what the store actually returned for a GET (None
    for a miss); SETs reply ``+OK`` regardless.
    """

    request: Request
    served_at: int
    value_bytes: int | None = None

    @property
    def wire_bytes(self) -> int:
        """Exact RESP size of the reply."""
        if self.request.kind == "SET":
            return resp.simple_reply_bytes()  # +OK
        return resp.bulk_reply_bytes(self.value_bytes)
