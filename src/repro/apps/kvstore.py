"""The dictionary-backed key-value store behind the Redis-like server.

Values are stored by *size*, not content (the simulation never fabricates
16 KiB of bytes per request), but the store behaves like a real one:
SET overwrites, GET returns the last stored size or a miss, DEL removes.
Memory accounting mirrors what a real store would report.
"""

from __future__ import annotations

from repro.errors import WorkloadError


class KVStore:
    """A size-tracking key-value store."""

    def __init__(self):
        self._data: dict[str, int] = {}
        self.bytes_stored = 0
        self.sets = 0
        self.gets = 0
        self.hits = 0
        self.deletes = 0

    def __len__(self) -> int:
        return len(self._data)

    def set(self, key: str, value_bytes: int) -> None:
        """Store (or overwrite) a value of the given size."""
        if value_bytes < 0:
            raise WorkloadError(f"negative value size {value_bytes}")
        self.sets += 1
        previous = self._data.get(key)
        if previous is not None:
            self.bytes_stored -= previous
        self._data[key] = value_bytes
        self.bytes_stored += value_bytes

    def get(self, key: str) -> int | None:
        """Return the stored value size, or None on a miss."""
        self.gets += 1
        value = self._data.get(key)
        if value is not None:
            self.hits += 1
        return value

    def delete(self, key: str) -> bool:
        """Remove a key; returns whether it existed."""
        value = self._data.pop(key, None)
        if value is None:
            return False
        self.deletes += 1
        self.bytes_stored -= value
        return True
