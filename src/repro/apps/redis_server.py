"""The Redis-like server: an event-loop process with Figure 1's costs.

Each event-loop iteration mirrors a real single-threaded server:

1. sleep until the socket is readable (epoll_wait);
2. pay the per-iteration overhead β (``HostCosts.wakeup_ns``): syscall
   return, read, bookkeeping, output flush;
3. read available bytes (optionally chunk-bounded like Redis's 16 KiB
   query buffer) and pay a per-byte parse cost;
4. execute each complete request at cost α (``ServerConfig.alpha_ns``),
   writing replies to the output buffer;
5. flush all replies with one (corked) write.

The batch size per iteration is whatever arrived together — IX-style
adaptive batching "under congestion" (paper §2) emerges naturally, and
sender-side batching (Nagle at the client) grows it further by making
arrivals burstier.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.kvstore import KVStore
from repro.apps.messages import Request, Response
from repro.errors import WorkloadError


@dataclass(frozen=True)
class ServerConfig:
    """Application-level server costs (the α of Figure 1 and friends).

    ``alpha_ns`` — per-request execution (command dispatch, hashing,
    store access).  ``request_byte_ns`` — per received byte of parsing /
    copying.  ``response_byte_ns`` — per response byte built.
    ``read_chunk_bytes`` — per-iteration read bound (None = drain).
    """

    alpha_ns: int = 4_000
    request_byte_ns: float = 0.03
    response_byte_ns: float = 0.02
    read_chunk_bytes: int | None = None
    # IX-style bounded adaptive batching: process at most this many
    # requests per event-loop iteration (None = whatever arrived).
    # Bounding trades peak amortization for fairness across connections
    # and finer-grained output flushing.
    max_batch_requests: int | None = None

    def validate(self) -> None:
        """Raise on nonsensical parameters."""
        if self.alpha_ns < 0:
            raise WorkloadError(f"negative alpha {self.alpha_ns}")
        if self.read_chunk_bytes is not None and self.read_chunk_bytes <= 0:
            raise WorkloadError(
                f"read chunk must be positive, got {self.read_chunk_bytes}"
            )
        if self.max_batch_requests is not None and self.max_batch_requests <= 0:
            raise WorkloadError(
                f"batch bound must be positive, got {self.max_batch_requests}"
            )


class RedisServer:
    """The server process: one event loop driving one or more
    connections (as a real single-threaded server multiplexes clients
    over epoll)."""

    def __init__(self, sim, host, socket, store: KVStore | None = None,
                 config: ServerConfig | None = None, name: str = "redis",
                 extra_sockets: list | None = None):
        self._sim = sim
        self.host = host
        self.socket = socket
        self.sockets = [socket] + list(extra_sockets or [])
        self.store = store or KVStore()
        self.config = config or ServerConfig()
        self.config.validate()
        self.name = name
        self.process = None
        self._backlog: dict[int, list[Request]] = {}
        # Statistics.
        self.iterations = 0
        self.requests_served = 0
        self.batch_sizes: list[int] = []

    def start(self) -> None:
        """Spawn the event-loop process."""
        self.process = self._sim.spawn(self._run(), name=self.name)

    @property
    def mean_batch_size(self) -> float:
        """Average requests processed per event-loop iteration."""
        served = sum(self.batch_sizes)
        if not self.batch_sizes or served == 0:
            return 0.0
        busy_iterations = sum(1 for b in self.batch_sizes if b > 0)
        return served / busy_iterations

    # ------------------------------------------------------------------
    # Event loop.
    # ------------------------------------------------------------------

    def _run(self):
        host = self.host
        config = self.config
        while True:
            if not self._backlog and all(
                sock.readable_bytes == 0 for sock in self.sockets
            ):
                yield self._wait_any_readable()
            yield host.app_core.submit(host.costs.wakeup_ns)
            served_this_iteration = 0
            self.iterations += 1
            for sock in self.sockets:
                pending = self._backlog.pop(sock.conn_id, [])
                if sock.readable_bytes > 0:
                    nbytes, parsed = sock.read(config.read_chunk_bytes)
                    pending.extend(parsed)
                    if nbytes > 0:
                        yield host.app_core.submit(
                            round(config.request_byte_ns * nbytes)
                        )
                if not pending:
                    continue
                bound = config.max_batch_requests
                if bound is not None and len(pending) > bound:
                    requests, leftover = pending[:bound], pending[bound:]
                    self._backlog[sock.conn_id] = leftover
                else:
                    requests = pending
                served_this_iteration += len(requests)
                responses = []
                for request in requests:
                    yield host.app_core.submit(config.alpha_ns)
                    responses.append(self._execute(request))
                flush_bytes = sum(response.wire_bytes for response in responses)
                yield host.app_core.submit(
                    host.send_cost_ns(flush_bytes)
                    + round(config.response_byte_ns * flush_bytes)
                )
                self._flush(sock, responses)
            self.batch_sizes.append(served_this_iteration)

    def _wait_any_readable(self):
        """Waitable firing when any connection becomes readable (epoll)."""
        from repro.sim.events import Event

        combined = Event(self._sim, name=f"{self.name}.any_readable")

        def forward(_value):
            if not combined.triggered:
                combined.trigger()

        for sock in self.sockets:
            sock.wait_readable().add_callback(forward)
        return combined

    def _execute(self, request: Request) -> Response:
        if request.kind == "SET":
            self.store.set(request.key, request.value_bytes)
            response = Response(request, served_at=self._sim.now)
        else:
            value = self.store.get(request.key)
            response = Response(request, served_at=self._sim.now, value_bytes=value)
        self.requests_served += 1
        return response

    def _flush(self, sock, responses: list[Response]) -> None:
        """One corked write per connection's output buffer."""
        sock.cork()
        try:
            for response in responses:
                sock.send(response, response.wire_bytes)
        finally:
            sock.uncork()
