"""Applications: a Redis-like key-value store over the simulated stack.

- :mod:`~repro.apps.resp` — a real RESP (REdis Serialization Protocol)
  encoder/parser; the simulation carries message descriptors whose wire
  sizes are computed by this encoder, and the parser is exercised by the
  protocol test suite.
- :mod:`~repro.apps.kvstore` — the dictionary-backed store.
- :mod:`~repro.apps.messages` — request/response descriptors flowing
  through the simulated sockets.
- :mod:`~repro.apps.redis_server` — the event-loop server process with
  the Figure 1 cost model (β per iteration, α per request).
- :mod:`~repro.apps.redis_client` — the client: open- or closed-loop
  issue process plus a response-draining process (cost c per response).
"""

from repro.apps.kvstore import KVStore
from repro.apps.messages import Request, Response
from repro.apps.redis_client import ClientConfig, RedisClient
from repro.apps.redis_server import RedisServer, ServerConfig
from repro.apps.resp import (
    RespParser,
    bulk_reply_bytes,
    command_bytes,
    encode_bulk_reply,
    encode_command,
    encode_simple_string,
    simple_reply_bytes,
)

__all__ = [
    "ClientConfig",
    "KVStore",
    "RedisClient",
    "RedisServer",
    "Request",
    "RespParser",
    "Response",
    "ServerConfig",
    "bulk_reply_bytes",
    "command_bytes",
    "encode_bulk_reply",
    "encode_command",
    "encode_simple_string",
    "simple_reply_bytes",
]
