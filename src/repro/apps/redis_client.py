"""The Redis-like client: request issue + response drain processes.

Two cooperating processes share the client's app core:

- the **issuer** walks an arrival schedule (open loop) or waits for the
  previous response (closed loop), pays the send-syscall cost, stamps
  ``sent_at``, and writes the request to the socket;
- the **drainer** is an event loop like the server's: wakeup cost per
  iteration, then cost *c* (``ClientConfig.c_ns``) per response
  processed — the client-side processing cost whose magnitude flips the
  value of batching (Figure 1 / Figure 2).

Latencies are recorded per response: end-to-end from ``created_at``
(scheduled arrival — includes client-side queueing) and from ``sent_at``
(what the in-kernel estimator can see).  The optional
:class:`~repro.core.hints.HintSession` is driven exactly as §3.3
prescribes: ``create`` on issue, ``complete`` on response.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.apps.messages import Request, Response
from repro.errors import WorkloadError


@dataclass(frozen=True)
class ClientConfig:
    """Client-side costs and mode.

    ``c_ns`` is Figure 1's per-response client processing cost:
    latency timestamping, stats insertion, validation — work a load
    generator (or any response consumer) does per reply.
    ``iteration_extra_ns`` is the drain loop's per-wakeup overhead on
    top of the host's generic wakeup cost (receive-path bookkeeping a
    measurement client performs per epoll round).  Response batching
    amortizes it — this is the client-side β of Figure 1.
    ``closed_loop`` issues the next request only after the previous
    response; otherwise the schedule is open loop.
    """

    c_ns: int = 2_000
    iteration_extra_ns: int = 2_000
    response_byte_ns: float = 0.02
    closed_loop: bool = False


@dataclass
class CompletionRecord:
    """One completed request/response pair."""

    request_id: int
    kind: str
    completed_at: int
    latency_ns: int          # from scheduled creation (user-perceived)
    send_latency_ns: int     # from the send syscall (stack-visible)


class RedisClient:
    """Drives one connection against the server."""

    def __init__(
        self,
        sim,
        host,
        socket,
        config: ClientConfig | None = None,
        hint_session=None,
        name: str = "lancet",
    ):
        self._sim = sim
        self.host = host
        self.socket = socket
        self.config = config or ClientConfig()
        self.hint_session = hint_session
        self.name = name
        self.records: list[CompletionRecord] = []
        self.requests_sent = 0
        self.responses_received = 0
        self._issuer = None
        self._drainer = None
        self._closed_loop_gate = None

    def start(self, schedule: Iterable[tuple[int, Request]]) -> None:
        """Spawn issuer and drainer over an arrival schedule.

        ``schedule`` yields ``(time_ns, request)`` pairs in time order;
        in closed-loop mode the times act as minimum issue times.
        """
        self._issuer = self._sim.spawn(
            self._issue(iter(schedule)), name=f"{self.name}.issue"
        )
        self._drainer = self._sim.spawn(self._drain(), name=f"{self.name}.drain")

    # ------------------------------------------------------------------
    # Issue side.
    # ------------------------------------------------------------------

    def _issue(self, schedule):
        from repro.sim.process import Timeout

        for when, request in schedule:
            if when < self._sim.now and not self.config.closed_loop:
                # The schedule is behind the clock only if the app core
                # backlog delayed us; issue immediately (open loop never
                # skips requests).
                pass
            elif when > self._sim.now:
                yield Timeout(when - self._sim.now)
            if self.config.closed_loop and self.requests_sent > self.responses_received:
                gate = self._sim_event()
                self._closed_loop_gate = gate
                yield gate
            yield self.host.app_core.submit(
                self.host.send_cost_ns(request.wire_bytes)
            )
            request.sent_at = self._sim.now
            if self.hint_session is not None:
                self.hint_session.create(1)
            self.requests_sent += 1
            self.socket.send(request, request.wire_bytes)

    def _sim_event(self):
        from repro.sim.events import Event

        return Event(self._sim, name=f"{self.name}.gate")

    # ------------------------------------------------------------------
    # Drain side.
    # ------------------------------------------------------------------

    def _drain(self):
        sock = self.socket
        host = self.host
        while True:
            if sock.readable_bytes == 0:
                yield sock.wait_readable()
            yield host.app_core.submit(
                host.costs.wakeup_ns + self.config.iteration_extra_ns
            )
            nbytes, responses = sock.read()
            if nbytes > 0:
                yield host.app_core.submit(
                    round(self.config.response_byte_ns * nbytes)
                )
            for response in responses:
                yield host.app_core.submit(self.config.c_ns)
                self._complete(response)

    def _complete(self, response: Response) -> None:
        request = response.request
        if request.sent_at is None:
            raise WorkloadError(
                f"response for request {request.request_id} that was never sent"
            )
        now = self._sim.now
        if self.hint_session is not None:
            self.hint_session.complete(1)
        self.responses_received += 1
        self.records.append(
            CompletionRecord(
                request_id=request.request_id,
                kind=request.kind,
                completed_at=now,
                latency_ns=now - request.created_at,
                send_latency_ns=now - request.sent_at,
            )
        )
        if self._closed_loop_gate is not None:
            gate, self._closed_loop_gate = self._closed_loop_gate, None
            gate.trigger()
