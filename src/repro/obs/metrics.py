"""A lightweight metrics registry: counters, gauges, histograms.

The paper's machinery is measurement, so the reproduction measures
itself: components and post-run collectors feed a
:class:`MetricsRegistry`, and :meth:`MetricsRegistry.snapshot` produces
the ``repro-metrics-v1`` dict that experiment JSON embeds (``repro run
--metrics``, ``repro faults --metrics``) and traced runs append as a
``metrics.snapshot`` record.

Design constraints, in order:

- **deterministic** — snapshots depend only on the run (no wall clock,
  no sampling); histograms use fixed power-of-two buckets rather than
  reservoirs;
- **cheap** — counters are a single attribute add; nothing allocates on
  the hot path;
- **flat** — metric names are dotted strings (``exchange.rejected``),
  snapshots are plain JSON-serializable dicts.

:func:`collect_run_metrics` is the standard harvest: it walks a
finished testbed (sockets, exchanges, NICs, fault injector, optional
toggler) and fills a registry with the catalog documented in
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

from repro.errors import ObservabilityError

METRICS_SCHEMA = "repro-metrics-v1"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ObservabilityError(
                f"counters only go up; inc({amount}) is not allowed"
            )
        self.value += amount


class Gauge:
    """A point-in-time value (the last ``set`` wins)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = None

    def set(self, value) -> None:
        """Record the current value."""
        self.value = value


class Histogram:
    """A fixed-bucket distribution: count/sum/min/max + log₂ buckets.

    ``observe(v)`` files ``v`` under bucket ``ceil(log2(v))`` (bucket 0
    holds everything ≤ 1).  Power-of-two buckets keep the histogram
    deterministic, allocation-free, and wide enough to span nanoseconds
    to seconds without configuration.
    """

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None
        self.buckets: dict[int, int] = {}

    def observe(self, value) -> None:
        """Record one observation (must be non-negative)."""
        if value < 0:
            raise ObservabilityError(
                f"histogram values must be non-negative, got {value}"
            )
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        bucket = 0 if value <= 1 else (int(value) - 1).bit_length()
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean(self):
        """Mean observation, or None before any."""
        return self.total / self.count if self.count else None

    def to_dict(self) -> dict:
        """JSON-serializable summary (buckets keyed by str exponent)."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }


class MetricsRegistry:
    """Named metrics, get-or-create by kind.

    Asking for an existing name with a different kind is an error — a
    metric's identity includes its type.
    """

    def __init__(self):
        self._metrics: dict[str, object] = {}

    def _get_or_create(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls()
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise ObservabilityError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        """Get or create a counter."""
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """Get or create a gauge."""
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        """Get or create a histogram."""
        return self._get_or_create(name, Histogram)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def snapshot(self) -> dict:
        """The full registry as a ``repro-metrics-v1`` dict."""
        counters = {}
        gauges = {}
        histograms = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                counters[name] = metric.value
            elif isinstance(metric, Gauge):
                gauges[name] = metric.value
            else:
                histograms[name] = metric.to_dict()
        return {
            "schema": METRICS_SCHEMA,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }


def collect_run_metrics(bed, result=None, toggler=None) -> MetricsRegistry:
    """Harvest the standard metrics catalog from a finished testbed.

    ``bed`` is a :class:`~repro.loadgen.lancet.Testbed`; ``result`` (a
    :class:`~repro.loadgen.lancet.RunResult`) adds the rate/latency
    gauges; ``toggler`` (a :class:`~repro.core.toggler.NagleToggler`)
    adds controller counters and the toggle dwell-time histogram.  The
    catalog is documented field-by-field in ``docs/OBSERVABILITY.md``.
    """
    registry = MetricsRegistry()

    for side in ("client", "server"):
        sock = getattr(bed, f"{side}_sock")
        registry.counter(f"tcp.{side}.retransmits").inc(sock.retransmits)
        registry.counter(f"tcp.{side}.sack_retransmits").inc(
            getattr(sock, "sack_retransmits", 0)
        )
        exchange = getattr(bed, f"{side}_exchange")
        prefix = f"exchange.{side}"
        registry.counter(f"{prefix}.states_sent").inc(exchange.states_sent)
        registry.counter(f"{prefix}.states_received").inc(
            exchange.states_received
        )
        registry.counter(f"{prefix}.states_rejected").inc(
            exchange.states_rejected
        )
        registry.counter(f"{prefix}.rebaselines").inc(exchange.rebaselines)
        registry.counter(f"{prefix}.option_bytes_sent").inc(
            exchange.option_bytes_sent
        )
        registry.counter(f"{prefix}.carrier_acks_sent").inc(
            exchange.carrier_acks_sent
        )

    registry.counter("nic.client.tx_wire_packets").inc(
        bed.client_host.nic.tx_wire_packets
    )
    registry.counter("nic.server.rx_deliveries").inc(
        bed.server_host.nic.rx_deliveries
    )

    # Batch pipeline (python/numpy backends only): pending-row -> column
    # conversions across the run's counter collectors.  Absent on the
    # legacy backend, where no batch exists.
    batches = [
        conn.collector.batch
        for conn in getattr(bed, "conns", [])
        if conn.collector.batch is not None
    ]
    if batches:
        registry.counter("sim.batch.flushes").inc(
            sum(batch.flushes for batch in batches)
        )

    if bed.faults is not None:
        summary = bed.faults.summary()
        for direction, hooks in summary["link"].items():
            for key, value in hooks.items():
                registry.counter(f"faults.link.{direction}.{key}").inc(value)
        for direction, hooks in summary["nic"].items():
            for key, value in hooks.items():
                registry.counter(f"faults.nic.{direction}.{key}").inc(value)
        for name, hooks in summary["exchange"].items():
            for key, value in hooks.items():
                registry.counter(f"faults.exchange.{name}.{key}").inc(value)
        registry.counter("faults.stall_windows").inc(summary["stall_windows"])

    if toggler is not None:
        registry.counter("toggler.toggles").inc(toggler.toggles)
        registry.counter("toggler.loss_episodes").inc(toggler.loss_episodes)
        registry.counter("toggler.frozen_ticks").inc(toggler.frozen_ticks)
        registry.counter("toggler.freeze_holds").inc(toggler.freeze_holds)
        registry.gauge("toggler.final_mode").set(toggler.mode)
        dwell = registry.histogram("toggler.dwell_ticks")
        last_change = 0
        previous = None
        for index, record in enumerate(toggler.history):
            if previous is not None and record.mode != previous:
                dwell.observe(index - last_change)
                last_change = index
            previous = record.mode

    if result is not None:
        registry.gauge("run.offered_rate").set(result.offered_rate)
        registry.gauge("run.achieved_rate").set(result.achieved_rate)
        registry.gauge("run.latency_mean_ns").set(result.latency.mean_ns)
        registry.gauge("run.latency_p99_ns").set(result.latency.p99_ns)
        registry.gauge("run.client_cpu").set(result.client_cpu)
        registry.gauge("run.server_cpu").set(result.server_cpu)

    return registry
