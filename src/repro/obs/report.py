"""Trace post-processing: summarize and filter recorded streams.

These are the read-side helpers behind ``repro trace summarize`` and
``repro trace filter`` — pure functions over record iterables, so tests
and notebooks can use them on in-memory sinks just as the CLI uses them
on JSONL files.
"""

from __future__ import annotations

from repro.obs.sinks import iter_records


def filter_records(
    source,
    type_: str | None = None,
    src: str | None = None,
    since_ns: int | None = None,
    until_ns: int | None = None,
):
    """Yield records matching every given criterion (None = wildcard)."""
    for record in iter_records(source):
        if type_ is not None and record.get("type") != type_:
            continue
        if src is not None and record.get("src") != src:
            continue
        t = record.get("t", 0)
        if since_ns is not None and t < since_ns:
            continue
        if until_ns is not None and t > until_ns:
            continue
        yield record


def summarize_records(source) -> dict:
    """Aggregate a stream: counts by type and by source, time span.

    Returns ``{"records", "start_ns", "end_ns", "span_ns", "by_type",
    "by_src"}`` with the count maps sorted by descending count then
    name, so the summary itself is deterministic.
    """
    total = 0
    start = None
    end = None
    by_type: dict[str, int] = {}
    by_src: dict[str, int] = {}
    for record in iter_records(source):
        total += 1
        t = record.get("t", 0)
        if start is None or t < start:
            start = t
        if end is None or t > end:
            end = t
        rtype = record.get("type", "?")
        by_type[rtype] = by_type.get(rtype, 0) + 1
        src = record.get("src", "?")
        by_src[src] = by_src.get(src, 0) + 1

    def _ordered(counts: dict[str, int]) -> dict[str, int]:
        return dict(sorted(counts.items(), key=lambda kv: (-kv[1], kv[0])))

    return {
        "records": total,
        "start_ns": start,
        "end_ns": end,
        "span_ns": (end - start) if total else None,
        "by_type": _ordered(by_type),
        "by_src": _ordered(by_src),
    }


def render_summary(summary: dict) -> str:
    """Human-readable form of :func:`summarize_records`."""
    lines = [f"records: {summary['records']}"]
    if summary["records"]:
        lines.append(
            f"span: {summary['start_ns']} .. {summary['end_ns']} ns "
            f"({summary['span_ns'] / 1e6:.3f} ms)"
        )
        lines.append("by type:")
        for name, count in summary["by_type"].items():
            lines.append(f"  {name:<20} {count}")
        lines.append("by source:")
        for name, count in summary["by_src"].items():
            lines.append(f"  {name:<20} {count}")
    return "\n".join(lines)
