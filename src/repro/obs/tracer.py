"""The structured tracer: typed ``repro-trace-v1`` record emission.

One :class:`Tracer` serves a whole run.  Components hold a reference
(defaulting to the shared disabled :data:`NULL_TRACER`) and guard every
emit site with ``if tracer.enabled:`` — when tracing is off the entire
cost is that one attribute read, no record is built, and simulation
results are byte-identical to a build without the instrumentation
(tracing never draws randomness and never schedules events).

The tracer stamps records with a *clock* — any zero-argument callable
returning integer nanoseconds.  Testbed assembly binds the run's
simulator clock (:meth:`bind_clock`), so a tracer can be constructed
before the simulation exists (the CLI does) and still stamp simulated
time.

Typed emit helpers (:meth:`queue_sample`, :meth:`exchange_send`, …)
build records that conform to :mod:`repro.obs.schema` by construction;
the generic :meth:`emit` is the escape hatch the legacy per-host taps
forward through.
"""

from __future__ import annotations

from typing import Callable

from repro.obs.schema import SCHEMA
from repro.obs.sinks import ListSink


def _snapshot_dict(snapshot) -> dict:
    """A ``QueueSnapshot`` (or similar) as schema {time,total,integral}."""
    return {
        "time": snapshot.time,
        "total": snapshot.total,
        "integral": snapshot.integral,
    }


class Tracer:
    """Emits typed trace records to a sink when enabled.

    ``sink`` is anything with ``append(record)``/``close()`` (see
    :mod:`repro.obs.sinks`); default is an in-memory :class:`ListSink`.
    ``clock`` may be deferred and bound later with :meth:`bind_clock`.
    """

    def __init__(
        self,
        sink=None,
        clock: Callable[[], int] | None = None,
        enabled: bool = True,
        label: str | None = None,
    ):
        self.sink = sink if sink is not None else ListSink()
        self._clock = clock
        self.enabled = enabled
        self.label = label
        self.emitted = 0
        self._header_written = False

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    def bind_clock(self, clock_or_sim) -> None:
        """Bind the time source: a callable, or anything with ``.now``."""
        if callable(clock_or_sim):
            self._clock = clock_or_sim
        else:
            self._clock = lambda: clock_or_sim.now

    def close(self) -> None:
        """Close the sink (flushes file-backed sinks)."""
        self.sink.close()

    @property
    def records(self):
        """The sink's retained records (memory sinks only)."""
        return getattr(self.sink, "records", [])

    # ------------------------------------------------------------------
    # Generic emission.
    # ------------------------------------------------------------------

    def emit(self, type_: str, src: str, **fields) -> None:
        """Append one record (no-op when disabled).

        The stream header is written lazily before the first record, so
        every non-empty trace starts with a ``trace.header``.
        """
        if not self.enabled:
            return
        if not self._header_written:
            self._header_written = True
            self.sink.append({
                "t": self._now(),
                "type": "trace.header",
                "src": "tracer",
                "schema": SCHEMA,
                "label": self.label,
            })
            self.emitted += 1
        record = {"t": self._now(), "type": type_, "src": src}
        record.update(fields)
        self.sink.append(record)
        self.emitted += 1

    def _now(self) -> int:
        return self._clock() if self._clock is not None else 0

    # ------------------------------------------------------------------
    # Typed emit helpers — one per schema record type.  Callers still
    # guard with ``if tracer.enabled:`` so arguments are never built
    # when tracing is off; the checks here are a second line of defense
    # for direct library use.
    # ------------------------------------------------------------------

    def queue_sample(self, src: str, unacked, unread, ackdelay) -> None:
        """A ``queue.sample``: one endpoint's three queue snapshots."""
        if self.enabled:
            self.emit(
                "queue.sample", src,
                unacked=_snapshot_dict(unacked),
                unread=_snapshot_dict(unread),
                ackdelay=_snapshot_dict(ackdelay),
            )

    def exchange_send(self, src: str, nbytes: int, demand: bool, hint: bool) -> None:
        """An ``exchange.send``: a metadata state left this endpoint."""
        if self.enabled:
            self.emit("exchange.send", src, bytes=nbytes, demand=demand, hint=hint)

    def exchange_recv(self, src: str, outcome: str, candidate) -> None:
        """An ``exchange.recv``: a peer state arrived; its fate."""
        if self.enabled:
            self.emit(
                "exchange.recv", src,
                outcome=outcome,
                unacked=_snapshot_dict(candidate.unacked),
                unread=_snapshot_dict(candidate.unread),
                ackdelay=_snapshot_dict(candidate.ackdelay),
            )

    def estimator_sample(self, src: str, sample, clamped: str | None) -> None:
        """An ``estimator.sample``: §3.2 inputs and combined output."""
        if self.enabled:
            def _delays(delays):
                return {
                    "unacked": delays.unacked,
                    "unread": delays.unread,
                    "ackdelay": delays.ackdelay,
                }

            self.emit(
                "estimator.sample", src,
                interval_ns=sample.interval_ns,
                local=_delays(sample.local),
                remote=(
                    _delays(sample.remote) if sample.remote is not None else None
                ),
                latency_ns=sample.latency_ns,
                throughput_per_sec=sample.throughput_per_sec,
                complete=sample.complete,
                clamped=clamped,
            )

    def estimator_reject(
        self, src: str, reason: str, staleness_ns: int | None = None
    ) -> None:
        """An ``estimator.reject``: the remote view was discarded."""
        if self.enabled:
            self.emit(
                "estimator.reject", src,
                reason=reason, staleness_ns=staleness_ns,
            )

    def toggler_decision(
        self,
        src: str,
        tick: int,
        mode: bool,
        prev_mode: bool,
        explored: bool,
        phase: str,
        sample_latency_ns,
        ewma: dict,
    ) -> None:
        """A ``toggler.decision``: one controller tick, fully justified."""
        if self.enabled:
            self.emit(
                "toggler.decision", src,
                tick=tick,
                mode=mode,
                prev_mode=prev_mode,
                toggled=mode != prev_mode,
                explored=explored,
                phase=phase,
                sample_latency_ns=sample_latency_ns,
                ewma=ewma,
            )

    def fault_verdict(
        self, src: str, layer: str, verdict: str, delay_ns: int | None = None
    ) -> None:
        """A ``fault.verdict``: an injection hook acted on traffic."""
        if self.enabled:
            self.emit(
                "fault.verdict", src,
                layer=layer, verdict=verdict, delay_ns=delay_ns,
            )

    def tcp_event(self, src: str, event: str, detail=None) -> None:
        """A ``tcp.event``: a legacy protocol tap, unified."""
        if self.enabled:
            self.emit("tcp.event", src, event=event, detail=detail)

    def shard_window(
        self, window: int, end_ns: int, shards: int, exchanged: int
    ) -> None:
        """A ``shard.window``: the windowed engine crossed a barrier."""
        if self.enabled:
            self.emit(
                "shard.window", "sync",
                window=window, end_ns=end_ns,
                shards=shards, exchanged=exchanged,
            )

    def job_retry(
        self, key: str, index: int, attempts: int, kind: str, backoff_s: float
    ) -> None:
        """A ``job.retry``: the supervisor embargoed a failed job."""
        if self.enabled:
            self.emit(
                "job.retry", "supervisor",
                key=key, index=index, attempts=attempts,
                kind=kind, backoff_s=backoff_s,
            )

    def job_timeout(
        self, key: str, index: int, attempts: int, timeout_s: float
    ) -> None:
        """A ``job.timeout``: a job blew its wall-clock budget."""
        if self.enabled:
            self.emit(
                "job.timeout", "supervisor",
                key=key, index=index, attempts=attempts, timeout_s=timeout_s,
            )

    def job_quarantine(
        self,
        key: str,
        index: int,
        attempts: int,
        kind: str,
        error: str | None = None,
        message: str = "",
    ) -> None:
        """A ``job.quarantine``: a job's retry budget is exhausted."""
        if self.enabled:
            self.emit(
                "job.quarantine", "supervisor",
                key=key, index=index, attempts=attempts,
                kind=kind, error=error, message=message,
            )

    def diagnosis_verdict(
        self,
        index: int,
        key: str,
        connections: int,
        findings: int,
        classes: list,
        pathological: bool,
    ) -> None:
        """A ``diagnosis.verdict``: one job's trace segment was scored."""
        if self.enabled:
            self.emit(
                "diagnosis.verdict", "diagnosis",
                index=index, key=key, connections=connections,
                findings=findings, classes=classes,
                pathological=pathological,
            )

    def remedy_action(
        self, playbook: str, index: int, key: str, trigger: str
    ) -> None:
        """A ``remedy.action``: a remediation playbook fired on a job."""
        if self.enabled:
            self.emit(
                "remedy.action", "remedy",
                playbook=playbook, index=index, key=key, trigger=trigger,
            )

    def remedy_verdict(
        self,
        playbook: str,
        index: int,
        key: str,
        verdict: str,
        probes: int,
        detail: str,
    ) -> None:
        """A ``remedy.verdict``: a playbook classified the root cause."""
        if self.enabled:
            self.emit(
                "remedy.verdict", "remedy",
                playbook=playbook, index=index, key=key,
                verdict=verdict, probes=probes, detail=detail,
            )

    def log_message(self, message: str) -> None:
        """A ``log.message``: a progress line mirrored into the trace."""
        if self.enabled:
            self.emit("log.message", "log", message=message)

    def metrics_snapshot(self, snapshot: dict) -> None:
        """A ``metrics.snapshot``: a metrics-registry dump."""
        if self.enabled:
            self.emit("metrics.snapshot", "metrics", metrics=snapshot)

    def campaign_plan(
        self,
        campaign: str,
        scenario: str,
        spec_digest: str,
        cells: int,
        components: list,
        tweaks: list,
        metrics: list,
    ) -> None:
        """A ``campaign.plan``: a spec expanded and is about to run."""
        if self.enabled:
            self.emit(
                "campaign.plan", "campaign",
                campaign=campaign, scenario=scenario,
                spec_digest=spec_digest, cells=cells,
                components=components, tweaks=tweaks, metrics=metrics,
            )

    def campaign_importance(
        self, campaign: str, ranking: list, scores: dict
    ) -> None:
        """A ``campaign.importance``: the final component ranking."""
        if self.enabled:
            self.emit(
                "campaign.importance", "campaign",
                campaign=campaign, ranking=ranking, scores=scores,
            )


#: Shared always-disabled tracer: the default every instrumented
#: component holds, so "no tracing" costs one attribute read per site.
NULL_TRACER = Tracer(sink=ListSink(), enabled=False)
