"""Deep socket tracing through the :class:`SocketInstrument` hooks.

The socket's instrument interface (:mod:`repro.tcp.instrumentation`)
exists for message-unit adapters; :class:`TraceInstrument` reuses it as
an observability tap: registered on ``socket.instruments`` it turns
every stream transition — send syscalls, segment departures, ack/read
frontier advances — into ``tcp.event`` trace records.

This is the *deep* (per-syscall, per-segment) level of detail; it is
opt-in (``repro trace record --deep``) because a loaded run emits tens
of records per request at this level, where the default emit points
(queue samples, exchanges, estimates, decisions) stay at tens per
millisecond for the whole run.
"""

from __future__ import annotations

from repro.obs.tracer import NULL_TRACER
from repro.tcp.instrumentation import SocketInstrument


class TraceInstrument(SocketInstrument):
    """Emits a ``tcp.event`` record per socket progress callback."""

    def __init__(self, socket, tracer=None):
        self._socket = socket
        self._tracer = tracer if tracer is not None else NULL_TRACER

    def _emit(self, event: str, detail) -> None:
        tracer = self._tracer
        if tracer.enabled:
            tracer.tcp_event(self._socket.name, event, detail)

    def on_send(self, nbytes: int) -> None:
        self._emit("send", nbytes)

    def on_segment_sent(self, seq: int, nbytes: int) -> None:
        self._emit("segment_sent", {"seq": seq, "len": nbytes})

    def on_acked(self, new_snd_una: int) -> None:
        self._emit("acked", new_snd_una)

    def on_arrived(self, new_rcv_nxt: int) -> None:
        self._emit("arrived", new_rcv_nxt)

    def on_read(self, new_read_seq: int) -> None:
        self._emit("read", new_read_seq)

    def on_ack_sent(self, acked_upto: int) -> None:
        self._emit("ack_sent", acked_upto)


def attach_deep_tracing(bed, tracer) -> list[TraceInstrument]:
    """Register a :class:`TraceInstrument` on every testbed socket."""
    instruments = []
    for conn in bed.conns:
        for sock in (conn.client_sock, conn.server_sock):
            instrument = TraceInstrument(sock, tracer)
            sock.instruments.append(instrument)
            instruments.append(instrument)
    return instruments
