"""repro.obs — the unified observability layer.

The paper's whole mechanism is measurement (TRACK/GETAVGS counters, the
§3.2 estimate, the §4–§5 toggling decisions built on it); this package
makes that machinery inspectable without perturbing it:

- :mod:`~repro.obs.tracer` — :class:`Tracer`: typed trace records under
  the versioned ``repro-trace-v1`` schema, zero-overhead when disabled
  (the shared :data:`NULL_TRACER` is what instrumented components hold
  by default).
- :mod:`~repro.obs.schema` — the schema itself (:data:`RECORD_TYPES`)
  plus stream validation; ``docs/OBSERVABILITY.md`` is generated from
  it, so docs and code cannot drift.
- :mod:`~repro.obs.sinks` — in-memory list/ring sinks and the JSONL
  file sink the ``repro trace`` CLI reads back.
- :mod:`~repro.obs.metrics` — counters/gauges/histograms in a
  :class:`MetricsRegistry`, snapshotted as ``repro-metrics-v1`` into
  experiment JSON; :func:`collect_run_metrics` harvests the standard
  catalog from a finished testbed.
- :mod:`~repro.obs.log` — :class:`ProgressLog`: experiment progress on
  stderr, silenced by ``--quiet``, mirrored into the trace.
- :mod:`~repro.obs.instrument` — deep per-syscall socket tracing via
  the :class:`~repro.tcp.instrumentation.SocketInstrument` hooks.

Invariant: with tracing and metrics disabled (the default), every
experiment output is byte-identical to a build without this package —
emit sites cost one attribute read, draw no randomness, and schedule no
events.
"""

from repro.obs.instrument import TraceInstrument, attach_deep_tracing
from repro.obs.log import NULL_LOG, ProgressLog
from repro.obs.metrics import (
    METRICS_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    collect_run_metrics,
)
from repro.obs.schema import (
    RECORD_TYPES,
    SCHEMA,
    require_valid_stream,
    validate_record,
    validate_stream,
)
from repro.obs.report import filter_records, render_summary, summarize_records
from repro.obs.sinks import (
    JsonlSink,
    JsonlTail,
    ListSink,
    RingSink,
    iter_records,
    read_jsonl,
)
from repro.obs.tracer import NULL_TRACER, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "JsonlTail",
    "ListSink",
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "NULL_LOG",
    "NULL_TRACER",
    "ProgressLog",
    "RECORD_TYPES",
    "RingSink",
    "SCHEMA",
    "TraceInstrument",
    "Tracer",
    "attach_deep_tracing",
    "collect_run_metrics",
    "filter_records",
    "iter_records",
    "render_summary",
    "summarize_records",
    "read_jsonl",
    "require_valid_stream",
    "validate_record",
    "validate_stream",
]
