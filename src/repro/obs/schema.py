"""The ``repro-trace-v1`` record schema: definition and validation.

A trace is a stream of JSON objects (one per line in the JSONL form).
Every record carries three common fields:

- ``t``    — simulated time in integer nanoseconds;
- ``type`` — the record type, one of :data:`RECORD_TYPES`;
- ``src``  — the emitting component instance (e.g. ``redis.0.client``).

The stream's first record must be a ``trace.header`` naming the schema
version, so a reader can reject a file from a different layout before
interpreting anything else.

This module is the *single source of truth* for the schema:
:func:`validate_record` checks records against :data:`RECORD_TYPES`, and
``tools/check_docs.py`` regenerates the schema table embedded in
``docs/OBSERVABILITY.md`` from the same structure, so the documentation
cannot drift from the code.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import ObservabilityError

SCHEMA = "repro-trace-v1"

#: Common fields present on every record.
COMMON_FIELDS = {
    "t": (int, "simulated time, integer nanoseconds"),
    "type": (str, "record type (see the table below)"),
    "src": (str, "emitting component instance"),
}

#: A ``(time, total, integral)`` queue snapshot as carried in records.
_SNAPSHOT = dict

#: Field specs are ``name -> (python type(s), description)``.  A tuple of
#: types means "any of"; ``type(None)`` in the tuple marks the field
#: nullable.  Every field listed is required — emitters always write the
#: full record, with ``null`` where no value exists.
RECORD_TYPES: dict[str, dict] = {
    "trace.header": {
        "doc": "Stream header; always the first record.",
        "fields": {
            "schema": (str, f"schema version; always {SCHEMA!r}"),
            "label": ((str, type(None)), "free-form run label"),
        },
    },
    "queue.sample": {
        "doc": (
            "Periodic snapshot of one endpoint's three §3.1 queue "
            "states, from the counter collector (the ethtool analogue)."
        ),
        "fields": {
            "unacked": (_SNAPSHOT, "{time,total,integral} of qs_unacked"),
            "unread": (_SNAPSHOT, "{time,total,integral} of qs_unread"),
            "ackdelay": (_SNAPSHOT, "{time,total,integral} of qs_ackdelay"),
        },
    },
    "exchange.send": {
        "doc": "A 36-byte §3.2 metadata state left this endpoint.",
        "fields": {
            "bytes": (int, "option bytes attached to the segment"),
            "demand": (bool, "sent on demand (vs the periodic cadence)"),
            "hint": (bool, "a §3.3 hint state rode along"),
        },
    },
    "exchange.recv": {
        "doc": (
            "A peer state arrived; outcome of the plausibility check "
            "with the unwrapped candidate counters."
        ),
        "fields": {
            "outcome": (str, "'accepted' | 'rejected' | 'rebaselined'"),
            "unacked": (_SNAPSHOT, "unwrapped candidate qs_unacked"),
            "unread": (_SNAPSHOT, "unwrapped candidate qs_unread"),
            "ackdelay": (_SNAPSHOT, "unwrapped candidate qs_ackdelay"),
        },
    },
    "estimator.sample": {
        "doc": (
            "One §3.2 estimate: the four queue-delay inputs and the "
            "combined end-to-end output, with any clamping applied."
        ),
        "fields": {
            "interval_ns": (int, "interval the estimate covers"),
            "local": (dict, "{unacked,unread,ackdelay} delays (ns|null)"),
            "remote": (
                (dict, type(None)),
                "peer delays, null when no remote view existed",
            ),
            "latency_ns": (
                (int, float, type(None)),
                "combined estimate; null when a required input was undefined",
            ),
            "throughput_per_sec": ((int, float), "λ of the local unacked queue"),
            "complete": (bool, "every §3.2 component was defined"),
            "clamped": (
                (str, type(None)),
                "null | 'negative' | 'absurd' — clamp applied to the output",
            ),
        },
    },
    "estimator.reject": {
        "doc": "The estimator discarded its remote view for one sample.",
        "fields": {
            "reason": (str, "'stale' | 'nonmonotonic'"),
            "staleness_ns": (
                (int, type(None)),
                "age of the freshest accepted exchange (stale rejections)",
            ),
        },
    },
    "toggler.decision": {
        "doc": (
            "One §4–§5 controller tick: the sample it observed, the "
            "EWMA state that justified the choice, and the choice."
        ),
        "fields": {
            "tick": (int, "tick index (1-based)"),
            "mode": (bool, "mode after the decision (true = batching on)"),
            "prev_mode": (bool, "mode before the decision"),
            "toggled": (bool, "the mode changed this tick"),
            "explored": (bool, "ε-exploration (vs greedy) pick"),
            "phase": (
                str,
                "'measure' | 'settle' | 'loss-freeze' | 'freeze-hold'",
            ),
            "sample_latency_ns": (
                (int, float, type(None)),
                "this tick's estimate, null when undefined",
            ),
            "ewma": (
                dict,
                "per-arm state: {'nagle_off'|'nagle_on': {latency_ns, "
                "throughput_per_sec, samples}}",
            ),
        },
    },
    "fault.verdict": {
        "doc": (
            "A fault hook acted (verdicts that deliver untouched are "
            "not recorded)."
        ),
        "fields": {
            "layer": (str, "'link' | 'nic' | 'exchange' | 'socket'"),
            "verdict": (
                str,
                "'loss-drop' | 'blackout-drop' | 'jitter' | 'ring-drop' "
                "| 'irq-defer' | 'drop-option' | 'stale-replay' | "
                "'corrupt' | 'stall-on' | 'stall-off'",
            ),
            "delay_ns": (
                (int, type(None)),
                "extra delay for 'jitter'/'irq-defer' verdicts, else null",
            ),
        },
    },
    "tcp.event": {
        "doc": (
            "A protocol tap from the TCP layer (the legacy per-host "
            "TraceRecorder taps, unified onto this stream)."
        ),
        "fields": {
            "event": (
                str,
                "'tx' | 'rx' | 'batching_hold' | 'window_probe' | ...",
            ),
            "detail": (object, "event-specific payload (may be null)"),
        },
    },
    "log.message": {
        "doc": "A progress-log line mirrored into the trace.",
        "fields": {
            "message": (str, "the logged text"),
        },
    },
    "shard.window": {
        "doc": (
            "The windowed cross-shard engine crossed one lock-step "
            "barrier (see docs/PERFORMANCE.md, 'Cross-shard "
            "synchronization')."
        ),
        "fields": {
            "window": (int, "window index (1-based)"),
            "end_ns": (int, "simulated time the window closed at"),
            "shards": (int, "shards advancing in lock-step"),
            "exchanged": (
                int,
                "cross-component messages collected at this barrier",
            ),
        },
    },
    "job.retry": {
        "doc": (
            "The campaign supervisor scheduled a failed job for another "
            "attempt after its deterministic backoff."
        ),
        "fields": {
            "key": (str, "content digest of the job's config"),
            "index": (int, "job position in the submitted campaign"),
            "attempts": (int, "attempts consumed so far"),
            "kind": (str, "'error' | 'timeout' | 'crash' — what failed"),
            "backoff_s": ((int, float), "embargo before the retry, seconds"),
        },
    },
    "job.timeout": {
        "doc": (
            "A supervised job exceeded its wall-clock budget; its worker "
            "pool was killed."
        ),
        "fields": {
            "key": (str, "content digest of the job's config"),
            "index": (int, "job position in the submitted campaign"),
            "attempts": (int, "attempts consumed so far"),
            "timeout_s": ((int, float), "the per-job wall-clock budget"),
        },
    },
    "job.quarantine": {
        "doc": (
            "A supervised job exhausted its retry budget (or failed a "
            "poison-typed check) and was quarantined as a JobFailure."
        ),
        "fields": {
            "key": (str, "content digest of the job's config"),
            "index": (int, "job position in the submitted campaign"),
            "attempts": (int, "attempts consumed before quarantine"),
            "kind": (str, "'error' | 'timeout' | 'crash'"),
            "error": ((str, type(None)), "exception class name, if any"),
            "message": (str, "the final failure message"),
        },
    },
    "diagnosis.verdict": {
        "doc": (
            "The streaming diagnosis service scored one supervised "
            "job's trace segment (see docs/OBSERVABILITY.md, "
            "'Always-on diagnosis')."
        ),
        "fields": {
            "index": (int, "job position in the submitted campaign"),
            "key": (str, "content digest of the job's config"),
            "connections": (int, "connections diagnosed so far, stream-wide"),
            "findings": (int, "findings attributed to this job's segment"),
            "classes": (list, "distinct finding classes in the segment, sorted"),
            "pathological": (
                bool,
                "a finding class configured as pathological was present",
            ),
        },
    },
    "remedy.action": {
        "doc": (
            "A remediation playbook fired on a supervised job (see "
            "docs/SERVICE.md, 'Remediation playbooks')."
        ),
        "fields": {
            "playbook": (str, "playbook name, e.g. 'confirm-environment'"),
            "index": (int, "job position in the submitted campaign"),
            "key": (str, "content digest of the job's config"),
            "trigger": (str, "'finding' | 'quarantine' — what fired it"),
        },
    },
    "remedy.verdict": {
        "doc": (
            "A remediation playbook finished its probe and classified "
            "the episode's root cause."
        ),
        "fields": {
            "playbook": (str, "playbook name, e.g. 'confirm-environment'"),
            "index": (int, "job position in the submitted campaign"),
            "key": (str, "content digest of the job's config"),
            "verdict": (
                str,
                "'environment' | 'config' | 'recovered-with-slack' | "
                "'persistent' | 'transient' | 'skipped'",
            ),
            "probes": (int, "probe re-executions the playbook performed"),
            "detail": (str, "human-readable justification"),
        },
    },
    "metrics.snapshot": {
        "doc": (
            "A repro-metrics-v1 registry snapshot, typically appended "
            "once at the end of a traced run."
        ),
        "fields": {
            "metrics": (dict, "the snapshot (see the metrics catalog)"),
        },
    },
    "campaign.plan": {
        "doc": (
            "A campaign spec was expanded and is about to execute "
            "(see docs/CAMPAIGNS.md)."
        ),
        "fields": {
            "campaign": (str, "the spec's campaign name"),
            "scenario": (str, "the scenario the cells run through"),
            "spec_digest": (str, "sha256 of the spec's canonical JSON"),
            "cells": (int, "expanded matrix size"),
            "components": (list, "component names, spec order"),
            "tweaks": (list, "tweak names, spec order"),
            "metrics": (list, "metric names the campaign harvests"),
        },
    },
    "campaign.importance": {
        "doc": (
            "A campaign finished scoring: the repro-importance-v1 "
            "ranking, one record per campaign."
        ),
        "fields": {
            "campaign": (str, "the spec's campaign name"),
            "ranking": (list, "component names, most important first"),
            "scores": (
                dict,
                "component name -> importance score (null when "
                "uncomputable)",
            ),
        },
    },
}


def _check_type(value, expected) -> bool:
    if expected is object:
        return True
    if isinstance(expected, tuple):
        return isinstance(value, expected)
    if expected is int:
        # bool is an int subclass; an int field must not accept True.
        return isinstance(value, int) and not isinstance(value, bool)
    if expected is bool:
        return isinstance(value, bool)
    return isinstance(value, expected)


def _type_name(expected) -> str:
    if isinstance(expected, tuple):
        return " | ".join(_type_name(e) for e in expected)
    if expected is type(None):
        return "null"
    if expected is object:
        return "any"
    return expected.__name__

def validate_record(record: dict) -> list[str]:
    """Check one record against the schema; return a list of problems.

    An empty list means the record is valid.  Problems name the field,
    so a failing record can be fixed (or its emitter debugged) without
    re-reading the schema.
    """
    problems: list[str] = []
    if not isinstance(record, dict):
        return [f"record must be an object, got {type(record).__name__}"]
    for name, (expected, _) in COMMON_FIELDS.items():
        if name not in record:
            problems.append(f"missing common field {name!r}")
        elif not _check_type(record[name], expected):
            problems.append(
                f"field {name!r} must be {_type_name(expected)}, "
                f"got {type(record[name]).__name__}"
            )
    rtype = record.get("type")
    if rtype is None or not isinstance(rtype, str):
        return problems
    spec = RECORD_TYPES.get(rtype)
    if spec is None:
        problems.append(f"unknown record type {rtype!r}")
        return problems
    fields = spec["fields"]
    for name, (expected, _) in fields.items():
        if name not in record:
            problems.append(f"{rtype}: missing field {name!r}")
        elif not _check_type(record[name], expected):
            problems.append(
                f"{rtype}: field {name!r} must be {_type_name(expected)}, "
                f"got {type(record[name]).__name__}"
            )
    extras = set(record) - set(fields) - set(COMMON_FIELDS)
    if extras:
        problems.append(f"{rtype}: unexpected fields {sorted(extras)}")
    return problems


def validate_stream(records: Iterable[dict]) -> list[str]:
    """Validate a whole record stream (header first, every record valid).

    Returns a list of problems prefixed with the record index; empty
    when the stream is a valid ``repro-trace-v1`` trace.
    """
    problems: list[str] = []
    empty = True
    for index, record in enumerate(records):
        empty = False
        if index == 0:
            if record.get("type") != "trace.header":
                problems.append(
                    "record 0: stream must start with a trace.header"
                )
            elif record.get("schema") != SCHEMA:
                problems.append(
                    f"record 0: header schema is {record.get('schema')!r}, "
                    f"expected {SCHEMA!r}"
                )
        problems.extend(
            f"record {index}: {problem}"
            for problem in validate_record(record)
        )
    if empty:
        problems.append("stream is empty (no header)")
    return problems


def require_valid_stream(records: Iterable[dict]) -> None:
    """Raise :class:`ObservabilityError` unless the stream validates."""
    problems = validate_stream(records)
    if problems:
        shown = "\n  ".join(problems[:20])
        more = f"\n  ... and {len(problems) - 20} more" if len(problems) > 20 else ""
        raise ObservabilityError(
            f"trace does not conform to {SCHEMA}:\n  {shown}{more}"
        )
