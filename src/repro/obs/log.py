"""Progress logging for experiment drivers.

Long sweeps (the chaos driver, campaign runs) used to be silent or to
print ad hoc; :class:`ProgressLog` gives them one spine: lines go to
stderr (never stdout, so rendered tables and JSON stay byte-identical
and pipeable), ``quiet`` silences them, and when a tracer is attached
each line is also recorded as a ``log.message`` trace record — the
run's narrative ends up in the same stream as its measurements.

Library entry points default to :data:`NULL_LOG` (fully silent), so
importing code sees no behavior change; the CLI passes a real log and
wires ``--quiet`` to it.
"""

from __future__ import annotations

import sys

from repro.obs.tracer import NULL_TRACER


class ProgressLog:
    """Progress lines: stderr unless quiet, mirrored into a tracer."""

    def __init__(self, quiet: bool = False, stream=None, tracer=None):
        self.quiet = quiet
        self._stream = stream
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self.messages: list[str] = []

    def info(self, message: str) -> None:
        """Log one progress line."""
        self.messages.append(message)
        if not self.quiet:
            print(message, file=self._stream or sys.stderr, flush=True)
        if self._tracer.enabled:
            self._tracer.log_message(message)


class _NullLog(ProgressLog):
    """Shared no-op log (retains nothing, so it can be a singleton)."""

    def info(self, message: str) -> None:
        pass


#: Shared silent log: the default for library use, so drivers emit
#: progress only when a caller asks for it.
NULL_LOG = _NullLog(quiet=True)
