"""Trace sinks: where emitted records go.

A sink is anything with ``append(record)`` and ``close()``.  Records are
plain dicts of JSON-serializable values (the :mod:`repro.obs.schema`
contract), so every sink can serialize without knowing record types.

- :class:`ListSink` — keep everything in memory, in order.  The default
  for tests and short interactive runs.
- :class:`RingSink` — keep only the most recent ``capacity`` records.
  For long always-on runs where only the tail matters (the flight
  recorder idiom).
- :class:`JsonlSink` — stream records to a JSON-lines file as they are
  emitted; this is the on-disk ``repro-trace-v1`` format the
  ``repro trace`` CLI reads back.
"""

from __future__ import annotations

import json
import os
from collections import deque
from pathlib import Path
from typing import Iterable, Iterator

from repro.errors import ObservabilityError


class ListSink:
    """Accumulate records in an in-memory list."""

    def __init__(self):
        self.records: list[dict] = []

    def append(self, record: dict) -> None:
        """Store one record."""
        self.records.append(record)

    def close(self) -> None:
        """No-op (memory sinks hold no resources)."""

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[dict]:
        return iter(self.records)


class RingSink:
    """Keep only the newest ``capacity`` records (a flight recorder)."""

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ObservabilityError(
                f"ring capacity must be positive, got {capacity}"
            )
        self.capacity = capacity
        self._ring: deque[dict] = deque(maxlen=capacity)
        self.dropped = 0  # records pushed out of the ring

    @property
    def records(self) -> list[dict]:
        """The retained records, oldest first."""
        return list(self._ring)

    def append(self, record: dict) -> None:
        """Store one record, evicting the oldest when full."""
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(record)

    def close(self) -> None:
        """No-op (memory sinks hold no resources)."""

    def __len__(self) -> int:
        return len(self._ring)

    def __iter__(self) -> Iterator[dict]:
        return iter(self._ring)


class JsonlSink:
    """Stream records to a JSON-lines file.

    The file is opened lazily on the first record (so constructing a
    tracer that never fires creates no file) and parent directories are
    created.  One JSON object per line, compact separators — the
    ``repro-trace-v1`` on-disk format.
    """

    def __init__(self, path):
        self.path = Path(path)
        self._file = None
        self.written = 0

    def append(self, record: dict) -> None:
        """Serialize and write one record."""
        if self._file is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._file = self.path.open("w", encoding="utf-8")
        self._file.write(json.dumps(record, separators=(",", ":")) + "\n")
        self.written += 1

    def close(self) -> None:
        """Flush and close the file (safe to call twice)."""
        if self._file is not None:
            self._file.close()
            self._file = None


def read_jsonl(path, tolerate_truncated_tail: bool = True) -> list[dict]:
    """Load a JSONL trace written by :class:`JsonlSink`.

    Raises :class:`ObservabilityError` on a line that is not a JSON
    object, with the offending line number — with one exception: a
    *final* line that does not end in a newline and fails to parse is a
    record a live (or killed) writer had not finished flushing, not
    corruption, and is silently dropped.  That is exactly the state a
    JSONL sink is left in by a SIGKILL mid-write, and what a reader
    tailing a running campaign sees between flushes; pass
    ``tolerate_truncated_tail=False`` to fault on it instead.
    """
    records: list[dict] = []
    text = Path(path).read_text(encoding="utf-8")
    ends_complete = text.endswith("\n")
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    last = len(lines)
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            if (
                tolerate_truncated_tail
                and lineno == last
                and not ends_complete
            ):
                break
            raise ObservabilityError(
                f"{path}:{lineno}: not valid JSON: {exc}"
            ) from exc
        if not isinstance(record, dict):
            raise ObservabilityError(
                f"{path}:{lineno}: trace records must be JSON objects, "
                f"got {type(record).__name__}"
            )
        records.append(record)
    return records


class JsonlTail:
    """Incremental reader of a (possibly still growing) JSONL file.

    Each :meth:`poll` returns the records completed since the last
    poll.  Only whole lines — terminated by a newline — are parsed; a
    partial trailing line (the writer mid-record) is buffered until its
    newline arrives, so a live reader never crashes on a torn write and
    never yields a record twice.  The file may not exist yet (poll
    returns nothing); a *rotated* file — truncated in place, or
    unlinked and recreated (the service's log-rotation pattern) — is a
    fresh stream at the same path and is re-read from the start.
    Rotation is detected three ways: a size below the read offset (a
    truncate), an inode change (a recreate), and a changed *content
    fingerprint* — the first bytes already consumed no longer match
    what was read before.  The fingerprint is the authoritative check:
    it catches a replacement file that has already grown past the old
    offset by the time the follower polls again, even when the
    filesystem reused the inode number or the file was rewritten in
    place.
    """

    #: Bytes of file head remembered as the rotation fingerprint.
    _PREFIX_LEN = 256

    def __init__(self, path):
        self.path = Path(path)
        self._offset = 0
        self._carry = b""
        self._ino: int | None = None
        self._prefix = b""  # first bytes consumed from this incarnation
        self.records_read = 0

    def poll(self) -> list[dict]:
        """Parse and return every newly completed record."""
        try:
            with self.path.open("rb") as handle:
                stat = os.fstat(handle.fileno())
                size = stat.st_size
                rotated = (
                    (self._ino is not None and stat.st_ino != self._ino)
                    or size < self._offset
                )
                if not rotated and self._prefix:
                    # Same inode, size >= offset — still possibly a
                    # rewritten file.  The head bytes settle it.
                    if handle.read(len(self._prefix)) != self._prefix:
                        rotated = True
                if rotated:
                    # A fresh stream lives at this path: start over and
                    # forget any partial line from the old incarnation.
                    self._offset = 0
                    self._carry = b""
                    self._prefix = b""
                self._ino = stat.st_ino
                handle.seek(self._offset)
                chunk = handle.read()
                self._offset = handle.tell()
                if len(self._prefix) < self._PREFIX_LEN:
                    head = (self._prefix + chunk if self._offset == len(chunk)
                            else self._prefix)
                    self._prefix = head[:self._PREFIX_LEN]
        except FileNotFoundError:
            return []
        data = self._carry + chunk
        lines = data.split(b"\n")
        self._carry = lines.pop()  # b"" when data ended on a newline
        records: list[dict] = []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line.decode("utf-8"))
            if not isinstance(record, dict):
                raise ObservabilityError(
                    f"{self.path}: trace records must be JSON objects, "
                    f"got {type(record).__name__}"
                )
            records.append(record)
        self.records_read += len(records)
        return records


def iter_records(source) -> Iterable[dict]:
    """Normalize a sink, list, or path into an iterable of records."""
    if hasattr(source, "records"):
        return source.records
    if isinstance(source, (str, Path)):
        return read_jsonl(source)
    return source
