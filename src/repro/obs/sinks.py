"""Trace sinks: where emitted records go.

A sink is anything with ``append(record)`` and ``close()``.  Records are
plain dicts of JSON-serializable values (the :mod:`repro.obs.schema`
contract), so every sink can serialize without knowing record types.

- :class:`ListSink` — keep everything in memory, in order.  The default
  for tests and short interactive runs.
- :class:`RingSink` — keep only the most recent ``capacity`` records.
  For long always-on runs where only the tail matters (the flight
  recorder idiom).
- :class:`JsonlSink` — stream records to a JSON-lines file as they are
  emitted; this is the on-disk ``repro-trace-v1`` format the
  ``repro trace`` CLI reads back.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import Iterable, Iterator

from repro.errors import ObservabilityError


class ListSink:
    """Accumulate records in an in-memory list."""

    def __init__(self):
        self.records: list[dict] = []

    def append(self, record: dict) -> None:
        """Store one record."""
        self.records.append(record)

    def close(self) -> None:
        """No-op (memory sinks hold no resources)."""

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[dict]:
        return iter(self.records)


class RingSink:
    """Keep only the newest ``capacity`` records (a flight recorder)."""

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ObservabilityError(
                f"ring capacity must be positive, got {capacity}"
            )
        self.capacity = capacity
        self._ring: deque[dict] = deque(maxlen=capacity)
        self.dropped = 0  # records pushed out of the ring

    @property
    def records(self) -> list[dict]:
        """The retained records, oldest first."""
        return list(self._ring)

    def append(self, record: dict) -> None:
        """Store one record, evicting the oldest when full."""
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(record)

    def close(self) -> None:
        """No-op (memory sinks hold no resources)."""

    def __len__(self) -> int:
        return len(self._ring)

    def __iter__(self) -> Iterator[dict]:
        return iter(self._ring)


class JsonlSink:
    """Stream records to a JSON-lines file.

    The file is opened lazily on the first record (so constructing a
    tracer that never fires creates no file) and parent directories are
    created.  One JSON object per line, compact separators — the
    ``repro-trace-v1`` on-disk format.
    """

    def __init__(self, path):
        self.path = Path(path)
        self._file = None
        self.written = 0

    def append(self, record: dict) -> None:
        """Serialize and write one record."""
        if self._file is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._file = self.path.open("w", encoding="utf-8")
        self._file.write(json.dumps(record, separators=(",", ":")) + "\n")
        self.written += 1

    def close(self) -> None:
        """Flush and close the file (safe to call twice)."""
        if self._file is not None:
            self._file.close()
            self._file = None


def read_jsonl(path) -> list[dict]:
    """Load a JSONL trace written by :class:`JsonlSink`.

    Raises :class:`ObservabilityError` on a line that is not a JSON
    object, with the offending line number.
    """
    records: list[dict] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ObservabilityError(
                    f"{path}:{lineno}: not valid JSON: {exc}"
                ) from exc
            if not isinstance(record, dict):
                raise ObservabilityError(
                    f"{path}:{lineno}: trace records must be JSON objects, "
                    f"got {type(record).__name__}"
                )
            records.append(record)
    return records


def iter_records(source) -> Iterable[dict]:
    """Normalize a sink, list, or path into an iterable of records."""
    if hasattr(source, "records"):
        return source.records
    if isinstance(source, (str, Path)):
        return read_jsonl(source)
    return source
