"""Campaign-level parallelism: fan independent runs over worker processes.

Every figure in the reproduction is a sweep of independent deterministic
simulations — rates x seeds x configurations — yet each simulation is
single-threaded.  :class:`ParallelRunner` fans a campaign of
:class:`~repro.loadgen.lancet.BenchConfig` runs (or any picklable
function over picklable items) across a ``multiprocessing`` pool and
merges the results back **in submission order**, so a parallel campaign
is byte-identical to the serial one: each run's output depends only on
its config (all randomness flows through the config's seed), and the
merge order is deterministic regardless of which worker finishes first.

Spawn-safety: the worker entry points are module-level functions and
everything shipped to workers (configs, tweaks, results) must pickle, so
the runner works under the ``fork``, ``spawn``, and ``forkserver`` start
methods alike.  ``tweak`` hooks that smuggle state back through closures
(the ``holder`` pattern the ablations use) cannot cross a process
boundary — an unpicklable tweak therefore falls back to serial in-process
execution with a warning, and even a picklable tweak's side effects stay
in the worker.  Campaigns that need to *inspect* testbed state should run
with ``workers=1``.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import warnings
from typing import Callable, Sequence, TypeVar

from repro.errors import WorkloadError
from repro.loadgen.lancet import BenchConfig, RunResult, run_benchmark

_T = TypeVar("_T")
_R = TypeVar("_R")


def resolve_workers(workers: int | None) -> int:
    """Normalize a worker count: ``None``/``0`` means one per CPU."""
    if workers is None or workers == 0:
        return os.cpu_count() or 1
    if workers < 0:
        raise WorkloadError(f"workers must be >= 0, got {workers}")
    return workers


def _picklable(obj) -> bool:
    try:
        pickle.dumps(obj)
    except Exception:
        return False
    return True


def _run_config(job: tuple[int, BenchConfig, Callable | None]):
    """Worker entry point for benchmark campaigns (must be top-level)."""
    index, config, tweak = job
    return index, run_benchmark(config, tweak=tweak)


def _apply(job: tuple[int, Callable, tuple]):
    """Worker entry point for generic campaigns (must be top-level)."""
    index, fn, args = job
    return index, fn(*args)


class ParallelRunner:
    """Run independent jobs over a worker pool, results in input order.

    ``workers=1`` (the default) executes serially in-process — no pool,
    no pickling, tweak closures fully functional.  ``workers=0`` uses
    one worker per CPU.  ``start_method`` selects the multiprocessing
    start method (``None`` uses the platform default; everything shipped
    is spawn-safe, so ``"spawn"`` works where ``fork`` is unavailable).
    """

    def __init__(self, workers: int = 1, start_method: str | None = None):
        self.workers = resolve_workers(workers)
        self.start_method = start_method

    # ------------------------------------------------------------------
    # Benchmark campaigns.
    # ------------------------------------------------------------------

    def run_many(
        self,
        configs: Sequence[BenchConfig],
        tweak: Callable | None = None,
        tracer=None,
    ) -> list[RunResult]:
        """Run every config; results align index-for-index with ``configs``.

        Output is identical to ``[run_benchmark(c, tweak=tweak) for c in
        configs]`` — runs are deterministic given their config, and the
        merge preserves input order.

        ``tracer`` (a :class:`repro.obs.Tracer`) forces serial in-process
        execution: the trace is one ordered stream, and a tracer cannot
        cross a process boundary.  Each run is preceded by a
        ``log.message`` boundary record naming its position and config,
        so a campaign trace can be split back into runs.
        """
        if tracer is not None:
            results = []
            for index, config in enumerate(configs):
                if tracer.enabled:
                    tracer.log_message(
                        f"campaign run {index + 1}/{len(configs)}: "
                        f"rate={config.rate_per_sec:.0f} "
                        f"nagle={config.nagle} seed={config.seed}"
                    )
                results.append(
                    run_benchmark(config, tweak=tweak, tracer=tracer)
                )
            return results
        if tweak is not None and self.workers > 1 and not _picklable(tweak):
            warnings.warn(
                "tweak is not picklable; running the campaign serially "
                "(use a module-level tweak function, or workers=1)",
                stacklevel=2,
            )
            return [run_benchmark(c, tweak=tweak) for c in configs]
        jobs = [(i, config, tweak) for i, config in enumerate(configs)]
        return self._collect(_run_config, jobs, len(configs))

    # ------------------------------------------------------------------
    # Generic campaigns (e.g. fan-in scenarios, custom drivers).
    # ------------------------------------------------------------------

    def map(self, fn: Callable[..., _R], items: Sequence) -> list[_R]:
        """Apply a module-level function to each item, in input order.

        Each item is passed as positional arguments if it is a tuple,
        else as a single argument.
        """
        jobs = [
            (i, fn, item if isinstance(item, tuple) else (item,))
            for i, item in enumerate(items)
        ]
        return self._collect(_apply, jobs, len(items))

    # ------------------------------------------------------------------
    # Internals.
    # ------------------------------------------------------------------

    def _collect(self, worker: Callable, jobs: list, n: int) -> list:
        workers = min(self.workers, n)
        if workers <= 1:
            return [worker(job)[1] for job in jobs]
        ctx = multiprocessing.get_context(self.start_method)
        results: list = [None] * n
        with ctx.Pool(processes=workers) as pool:
            for index, result in pool.imap_unordered(worker, jobs):
                results[index] = result
        return results


def run_campaign(
    configs: Sequence[BenchConfig],
    tweak: Callable | None = None,
    workers: int = 1,
    start_method: str | None = None,
    tracer=None,
) -> list[RunResult]:
    """One-shot convenience: ``ParallelRunner(workers).run_many(configs)``."""
    return ParallelRunner(workers, start_method=start_method).run_many(
        configs, tweak=tweak, tracer=tracer
    )
