"""Campaign-level parallelism: supervised fan-out over worker processes.

Every figure in the reproduction is a sweep of independent deterministic
simulations — rates x seeds x configurations — yet each simulation is
single-threaded.  :class:`ParallelRunner` fans a campaign of
:class:`~repro.loadgen.lancet.BenchConfig` runs (or any picklable
function over picklable items) across a worker pool and merges the
results back **in submission order**, so a parallel campaign is
byte-identical to the serial one: each run's output depends only on its
config (all randomness flows through the config's seed), and the merge
order is deterministic regardless of which worker finishes first.

Execution is *supervised* (see :mod:`repro.supervise`): a crashed
worker, a hung job, or a raising config no longer sinks the campaign.
Each entry point comes in two flavors:

- ``*_outcomes`` returns an index-aligned list of typed
  :class:`~repro.supervise.outcome.JobOutcome` records — never ``None``
  holes — so drivers can salvage partial results;
- the strict classics (:meth:`ParallelRunner.run_many`,
  :meth:`ParallelRunner.map`, :func:`run_campaign`) raise
  :class:`~repro.errors.CampaignError` *after* the whole campaign has
  run if any job was quarantined, with the full outcome list attached.

Passing a checkpoint store (or directory) makes the campaign durable:
completed jobs are flushed to ``repro-checkpoint-v1`` shards as they
land, keyed by a content digest of ``(config, tweak, watchdog)``, and a
later campaign over the same directory skips them — resume produces
output byte-identical to an uninterrupted run.

Spawn-safety: the worker entry points are module-level functions and
everything shipped to workers (configs, tweaks, results) must pickle, so
the runner works under the ``fork``, ``spawn``, and ``forkserver`` start
methods alike.  ``tweak`` hooks that smuggle state back through closures
(the ``holder`` pattern the ablations use) cannot cross a process
boundary — an unpicklable tweak therefore falls back to serial in-process
execution with a warning, and even a picklable tweak's side effects stay
in the worker.  Campaigns that need to *inspect* testbed state should run
with ``workers=1``.
"""

from __future__ import annotations

import os
import pickle
import warnings
from typing import Callable, Sequence, TypeVar

from repro.errors import CampaignError, WorkloadError

# NOTE: repro.loadgen imports this module (sweep/replications build on
# run_campaign), so lancet must be imported lazily inside the functions
# that need it — a module-level import here is a circular-import trap
# that only stays hidden while repro.loadgen happens to be imported
# first.
from repro.supervise import (
    CheckpointStore,
    JobOutcome,
    PoolLease,
    SupervisePolicy,
    Supervisor,
    Watchdog,
    derive_keys,
)

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Warn when a requested pool oversubscribes the machine this much.
_OVERSUBSCRIBE_FACTOR = 4
#: Worker counts already warned about (warn once per distinct mistake,
#: not once per runner instantiation).
_warned_oversubscribed: set[int] = set()
_cpu_count: int | None = None


def _cpus() -> int:
    """``os.cpu_count()``, memoized (it takes a syscall on some
    platforms and every campaign construction calls through here)."""
    global _cpu_count
    if _cpu_count is None:
        _cpu_count = os.cpu_count() or 1
    return _cpu_count


def resolve_workers(workers: int | None) -> int:
    """Normalize a worker count: ``None``/``0`` means one per CPU.

    A request that oversubscribes the machine more than
    :data:`_OVERSUBSCRIBE_FACTOR`× draws one warning per distinct count
    — the pool is still created (tests legitimately oversubscribe tiny
    jobs), but a campaign-sized mistake should not pass silently, and
    repeating the same warning for every runner a sweep constructs
    would drown the log.
    """
    if workers is None or workers == 0:
        return _cpus()
    if workers < 0:
        raise WorkloadError(f"workers must be >= 0, got {workers}")
    cpus = _cpus()
    if (
        workers > _OVERSUBSCRIBE_FACTOR * cpus
        and workers not in _warned_oversubscribed
    ):
        _warned_oversubscribed.add(workers)
        warnings.warn(
            f"workers={workers} oversubscribes {cpus} CPU(s) more than "
            f"{_OVERSUBSCRIBE_FACTOR}x; the extra processes only add "
            f"scheduling overhead",
            stacklevel=3,
        )
    return workers


def _picklable(obj) -> bool:
    try:
        pickle.dumps(obj)
    except Exception:
        return False
    return True


def _check_diagnosis(diagnosis, tracer) -> None:
    """Diagnosis reads the trace stream, so it demands a tracer."""
    if diagnosis is None:
        return
    if tracer is None:
        from repro.errors import DiagnosisError

        raise DiagnosisError(
            "a DiagnosisHook needs the campaign's trace stream; "
            "pass tracer= alongside diagnosis="
        )
    diagnosis.attach(tracer)


def _as_store(checkpoint) -> CheckpointStore | None:
    """Accept a :class:`CheckpointStore`, a directory path, or None."""
    if checkpoint is None or isinstance(checkpoint, CheckpointStore):
        return checkpoint
    return CheckpointStore(checkpoint)


def _require_all_ok(outcomes: list[JobOutcome]) -> list:
    """Results of an all-green campaign, or :class:`CampaignError`."""
    failures = [o for o in outcomes if not o.ok]
    if failures:
        lines = "\n  ".join(f.describe() for f in failures)
        raise CampaignError(
            f"{len(failures)}/{len(outcomes)} campaign jobs quarantined:"
            f"\n  {lines}",
            outcomes=outcomes,
        )
    return [o.result for o in outcomes]


def _run_config(payload):
    """Worker entry point for benchmark campaigns (must be top-level)."""
    from repro.loadgen.lancet import run_benchmark

    config, tweak, watchdog = payload
    return run_benchmark(config, tweak=tweak, watchdog=watchdog)


def _apply(payload):
    """Worker entry point for generic campaigns (must be top-level)."""
    fn, args = payload
    return fn(*args)


def _config_label(config: BenchConfig) -> str:
    return (
        f"rate={config.rate_per_sec:.0f} nagle={config.nagle} "
        f"seed={config.seed}"
    )


class ParallelRunner:
    """Run independent jobs over a supervised pool, results in input order.

    ``workers=1`` (the default) executes serially in-process — no pool,
    no pickling, tweak closures fully functional (but no wall-clock
    timeout enforcement: there is no second process to do the killing).
    ``workers=0`` uses one worker per CPU.  ``start_method`` selects the
    multiprocessing start method (``None`` uses the platform default;
    everything shipped is spawn-safe, so ``"spawn"`` works where
    ``fork`` is unavailable).  ``policy`` is the
    :class:`~repro.supervise.policy.SupervisePolicy` applied to every
    campaign this runner executes (default policy when ``None``).
    """

    def __init__(
        self,
        workers: int = 1,
        start_method: str | None = None,
        policy: SupervisePolicy | None = None,
    ):
        self.workers = resolve_workers(workers)
        self.start_method = start_method
        self.policy = policy
        #: Metrics registry of the most recent campaign (supervise.*).
        self.last_metrics = None

    def _supervisor(
        self, n: int, checkpoint, tracer, diagnosis=None, remedy=None,
        session: PoolLease | None = None,
    ) -> Supervisor:
        supervisor = Supervisor(
            workers=min(self.workers, n),
            start_method=self.start_method,
            policy=self.policy,
            checkpoint=_as_store(checkpoint),
            tracer=tracer,
            diagnosis=diagnosis,
            remedy=remedy,
            pool=session,
        )
        self.last_metrics = supervisor.metrics
        return supervisor

    def session(self) -> PoolLease:
        """A :class:`~repro.supervise.PoolLease` for lock-step protocols.

        Pass the lease as ``session=`` to consecutive
        :meth:`map_outcomes` calls to reuse one worker pool (and the
        warm per-process state it holds) across them, then ``close()``
        it — or use it as a context manager.  Supervision semantics are
        unchanged: a crashed or hung pool is discarded and rebuilt.
        """
        return PoolLease()

    # ------------------------------------------------------------------
    # Benchmark campaigns.
    # ------------------------------------------------------------------

    def run_many_outcomes(
        self,
        configs: Sequence[BenchConfig],
        tweak: Callable | None = None,
        tracer=None,
        checkpoint=None,
        watchdog: Watchdog | None = None,
        diagnosis=None,
        remedy=None,
    ) -> list[JobOutcome]:
        """Supervised campaign; outcomes align index-for-index.

        ``checkpoint`` (a store or directory path) records completed
        runs and skips ones already recorded.  ``watchdog`` bounds each
        run in events and simulated time (see
        :class:`~repro.supervise.watchdog.Watchdog`).

        ``tracer`` (a :class:`repro.obs.Tracer`) forces serial
        in-process execution: the trace is one ordered stream, and a
        tracer cannot cross a process boundary.  Each fresh run is
        preceded by a ``log.message`` boundary record naming its
        position and config, so a campaign trace can be split back into
        runs (checkpoint-skipped runs emit nothing).

        ``diagnosis`` (a :class:`repro.diagnose.DiagnosisHook`) scores
        each completed run's trace segment; it requires ``tracer`` (the
        hook reads the trace stream) and is attached to it here if not
        already.  Raises :class:`~repro.errors.DiagnosisError` when
        given without a tracer.

        ``remedy`` (a :class:`repro.remedy.RemedyEngine`) receives
        flagged completions and quarantines; it observes only and never
        changes an outcome.
        """
        from repro.loadgen.lancet import run_benchmark

        n = len(configs)
        if watchdog is not None:
            watchdog.validate()
        _check_diagnosis(diagnosis, tracer)
        keys = derive_keys(
            [(config, tweak, watchdog) for config in configs],
            durable=checkpoint is not None,
        )
        labels = [_config_label(config) for config in configs]

        if tracer is not None:
            def traced(payload):
                index, config = payload
                if tracer.enabled:
                    tracer.log_message(
                        f"campaign run {index + 1}/{n}: "
                        + _config_label(config)
                    )
                return run_benchmark(
                    config, tweak=tweak, tracer=tracer, watchdog=watchdog
                )

            supervisor = self._supervisor(
                1, checkpoint, tracer, diagnosis, remedy
            )
            return supervisor.run(
                traced, list(enumerate(configs)), keys=keys, labels=labels
            )

        if tweak is not None and min(self.workers, n) > 1 and not _picklable(tweak):
            warnings.warn(
                "tweak is not picklable; running the campaign serially "
                "(use a module-level tweak function, or workers=1)",
                stacklevel=2,
            )
            supervisor = self._supervisor(
                1, checkpoint, tracer, remedy=remedy
            )
            return supervisor.run(
                lambda config: run_benchmark(
                    config, tweak=tweak, watchdog=watchdog
                ),
                list(configs), keys=keys, labels=labels,
            )

        supervisor = self._supervisor(n, checkpoint, tracer, remedy=remedy)
        payloads = [(config, tweak, watchdog) for config in configs]
        return supervisor.run(_run_config, payloads, keys=keys, labels=labels)

    def run_many(
        self,
        configs: Sequence[BenchConfig],
        tweak: Callable | None = None,
        tracer=None,
        checkpoint=None,
        watchdog: Watchdog | None = None,
        diagnosis=None,
        remedy=None,
    ) -> list[RunResult]:
        """Run every config; results align index-for-index with ``configs``.

        Output is identical to ``[run_benchmark(c, tweak=tweak) for c in
        configs]`` — runs are deterministic given their config, and the
        merge preserves input order.  Raises
        :class:`~repro.errors.CampaignError` (with the full outcome list
        attached) if any job was quarantined after retries.
        """
        return _require_all_ok(
            self.run_many_outcomes(
                configs, tweak=tweak, tracer=tracer,
                checkpoint=checkpoint, watchdog=watchdog,
                diagnosis=diagnosis, remedy=remedy,
            )
        )

    # ------------------------------------------------------------------
    # Generic campaigns (e.g. fan-in scenarios, custom drivers).
    # ------------------------------------------------------------------

    def map_outcomes(
        self,
        fn: Callable[..., _R],
        items: Sequence,
        checkpoint=None,
        labels: Sequence[str] | None = None,
        keys: Sequence[str] | None = None,
        tracer=None,
        diagnosis=None,
        remedy=None,
        session: PoolLease | None = None,
    ) -> list[JobOutcome]:
        """Supervised :meth:`map`: typed outcomes instead of raising.

        ``labels`` name the jobs in failure reports and supervision
        traces; ``keys`` override the checkpoint/dedupe keys (default:
        content digests of the payloads).  ``tracer`` forces serial
        in-process execution — one ordered stream — with a
        ``log.message`` boundary record before each fresh job, exactly
        like :meth:`run_many_outcomes`; ``diagnosis`` (requires a
        tracer) scores each job's segment exactly as there.
        ``session`` (see :meth:`session`) reuses one worker pool across
        consecutive calls instead of building a fresh one per call.
        """
        n = len(items)
        _check_diagnosis(diagnosis, tracer)
        payloads = [
            (fn, item if isinstance(item, tuple) else (item,))
            for item in items
        ]
        if tracer is not None:
            def traced(payload):
                index, inner = payload
                if tracer.enabled:
                    name = (
                        labels[index]
                        if labels is not None
                        else f"job {index + 1}/{n}"
                    )
                    tracer.log_message(f"campaign run {index + 1}/{n}: {name}")
                return _apply(inner)

            supervisor = self._supervisor(
                1, checkpoint, tracer, diagnosis, remedy
            )
            return supervisor.run(
                traced, list(enumerate(payloads)), keys=keys, labels=labels
            )
        if min(self.workers, n) > 1 and not _picklable(fn):
            warnings.warn(
                "function is not picklable; running the campaign serially "
                "(use a module-level function, or workers=1)",
                stacklevel=2,
            )
            supervisor = self._supervisor(1, checkpoint, None, remedy=remedy)
        else:
            supervisor = self._supervisor(
                n, checkpoint, None, remedy=remedy, session=session
            )
        return supervisor.run(_apply, payloads, keys=keys, labels=labels)

    def map(self, fn: Callable[..., _R], items: Sequence) -> list[_R]:
        """Apply a module-level function to each item, in input order.

        Each item is passed as positional arguments if it is a tuple,
        else as a single argument.  Raises
        :class:`~repro.errors.CampaignError` if any job was quarantined.
        """
        return _require_all_ok(self.map_outcomes(fn, items))


def run_campaign(
    configs: Sequence[BenchConfig],
    tweak: Callable | None = None,
    workers: int = 1,
    start_method: str | None = None,
    tracer=None,
    policy: SupervisePolicy | None = None,
    checkpoint=None,
    watchdog: Watchdog | None = None,
    diagnosis=None,
    remedy=None,
) -> list[RunResult]:
    """One-shot convenience: ``ParallelRunner(workers).run_many(configs)``."""
    runner = ParallelRunner(workers, start_method=start_method, policy=policy)
    return runner.run_many(
        configs, tweak=tweak, tracer=tracer,
        checkpoint=checkpoint, watchdog=watchdog, diagnosis=diagnosis,
        remedy=remedy,
    )


def run_campaign_outcomes(
    configs: Sequence[BenchConfig],
    tweak: Callable | None = None,
    workers: int = 1,
    start_method: str | None = None,
    tracer=None,
    policy: SupervisePolicy | None = None,
    checkpoint=None,
    watchdog: Watchdog | None = None,
    diagnosis=None,
    remedy=None,
) -> list[JobOutcome]:
    """Salvage-friendly :func:`run_campaign`: typed outcomes, no raise."""
    runner = ParallelRunner(workers, start_method=start_method, policy=policy)
    return runner.run_many_outcomes(
        configs, tweak=tweak, tracer=tracer,
        checkpoint=checkpoint, watchdog=watchdog, diagnosis=diagnosis,
        remedy=remedy,
    )
