"""Cross-experiment result cache: share completed runs between campaigns.

The fig2/fig4a/tail sweeps overlap heavily — the same ``(config, tweak,
watchdog)`` job shows up in several experiments, and a parameter sweep
rerun with one extra point repeats every old point.  Because campaign
jobs are pure (all randomness flows through the config's seed), a
completed result is reusable anywhere the same content digest appears.

:class:`ResultCache` is a
:class:`~repro.supervise.checkpoint.CheckpointStore` — same
``repro-checkpoint-v1`` shards, same content keys from
:func:`~repro.supervise.checkpoint.job_key` — with hit/miss accounting
layered on :meth:`get`.  Where ``--resume DIR`` scopes a store to one
interrupted campaign, ``--cache-dir DIR`` points *every* experiment at
one shared directory: fig2 populates it, a later fig4a or single-run
replay of the same config is served from disk, byte-identical to a
fresh run because the stored result *is* the run's pickled result.

Counters land in the standard ``repro-metrics-v1`` registry
(:class:`~repro.obs.metrics.MetricsRegistry`):

- ``cache.hits`` — lookups answered from the store;
- ``cache.misses`` — lookups that fell through to a fresh run;
- ``cache.stores`` — results written back.

Within-campaign duplicates never reach the cache twice: the supervisor
dedupes identical content keys before submission (see
``supervise.deduped`` in :meth:`repro.supervise.Supervisor.run`).
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry
from repro.supervise.checkpoint import CheckpointStore


class ResultCache(CheckpointStore):
    """A checkpoint store with cross-experiment hit/miss accounting."""

    def __init__(self, directory, label: str | None = None, metrics=None):
        super().__init__(directory, label=label)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._hits = self.metrics.counter("cache.hits")
        self._misses = self.metrics.counter("cache.misses")
        self._stores = self.metrics.counter("cache.stores")

    # -- accounting views ----------------------------------------------

    @property
    def hits(self) -> int:
        """Lookups served from the cache so far."""
        return self._hits.value

    @property
    def misses(self) -> int:
        """Lookups that required a fresh run so far."""
        return self._misses.value

    @property
    def stores(self) -> int:
        """Results written into the cache so far."""
        return self._stores.value

    # -- instrumented store operations ---------------------------------

    def get(self, key: str):
        """The stored ``(result, attempts)`` for ``key``, counting the
        lookup as a hit or miss."""
        stored = super().get(key)
        if stored is None:
            self._misses.inc()
        else:
            self._hits.inc()
        return stored

    def record_success(
        self, key: str, result, attempts: int = 1, label: str | None = None
    ) -> None:
        """Persist one completed job, counting the write."""
        super().record_success(key, result, attempts=attempts, label=label)
        self._stores.inc()

    def describe(self) -> str:
        """One human line for CLI summaries."""
        return (
            f"cache {self.directory}: {self.hits} hit(s), "
            f"{self.misses} miss(es), {self.stores} store(s), "
            f"{len(self)} result(s) on disk"
        )
