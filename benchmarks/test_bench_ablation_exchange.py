"""A3 — metadata exchange cadence: accuracy vs overhead (§5)."""

from __future__ import annotations

from repro.experiments.ablations import run_exchange_ablation
from repro.units import msecs


def test_bench_ablation_exchange(benchmark, record_artifact):
    result = benchmark.pedantic(
        lambda: run_exchange_ablation(
            periods_ns=(msecs(1), msecs(5), msecs(20), msecs(60)),
            rate=35_000.0,
            measure_ns=msecs(240),
        ),
        rounds=1,
        iterations=1,
    )
    record_artifact("ablation_exchange", result.render())

    # Overhead scales down with the period...
    states = [row.states_sent for row in result.rows]
    assert states == sorted(states, reverse=True)
    # ...while Little's-law accuracy survives even sparse exchanges
    # ("estimates remain accurate regardless", §5).
    for row in result.rows:
        assert row.error_fraction is not None
        assert row.error_fraction < 0.6
    # 36 bytes per state on the wire.
    for row in result.rows:
        assert row.option_bytes >= 36 * row.states_sent
