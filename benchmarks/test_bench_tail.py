"""A9 — tail-latency extension of the Figure 4a analysis."""

from __future__ import annotations

from repro.experiments.tail import run_tail


def test_bench_tail(benchmark, record_artifact):
    result = benchmark.pedantic(run_tail, rounds=1, iterations=1)
    record_artifact("tail", result.render())

    # The finding: at the 99th percentile *neither* static mode serves
    # the SLO across the load range — static-on blows the tail at low
    # load (responses held behind their own acks), static-off past its
    # knee — so only per-load dynamic toggling extends the range.
    assert result.on_low_load_p99_violates
    assert result.p99_off_max > 0
    assert result.p99_oracle_extension > 1.3
    # p99 is never below the mean anywhere.
    for point in result.off_points + result.on_points:
        assert point.result.latency.p99_ns >= point.result.latency.mean_ns
