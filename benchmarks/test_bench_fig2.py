"""E2 — regenerate Figure 2: bare-metal vs VM client at fixed 20 kRPS."""

from __future__ import annotations

from repro.experiments.fig2 import run_fig2
from repro.units import msecs


def test_bench_fig2(benchmark, record_artifact):
    result = benchmark.pedantic(
        lambda: run_fig2(seeds=(1, 2, 3), measure_ns=msecs(150)),
        rounds=1,
        iterations=1,
    )
    record_artifact("fig2", result.render())

    # (a) the VM client burns much more CPU for the same workload;
    assert result.client_cpu_ratio > 2.0
    # (b) the server's CPU stays roughly the same;
    assert 0.7 < result.server_cpu_ratio < 1.3
    # (c) the client change flips the Nagle outcome.
    assert result.nagle_helps_bare
    assert not result.nagle_helps_vm
