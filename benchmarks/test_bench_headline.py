"""E5 — the paper's §4 headline numbers, from a fine grid near the knees.

Paper: batching extends the sustainable range at a 500 us SLO by 1.93x
(37.5 -> 72.5 kRPS) and improves latency at 37.5 kRPS by 2.80x
(468 -> 168 us).  We assert the same *shape*: extension well above 1.5x
and a multi-x latency win at the baseline's edge.
"""

from __future__ import annotations

from repro.analysis.cutoff import improvement_at, range_extension
from repro.analysis.report import format_table
from repro.experiments.fig4a import SLO_NS, default_config
from repro.loadgen.sweep import measured_curve, sweep_rates
from repro.units import msecs, to_usecs

# A fine grid around both knees.
RATES = [34_000.0, 36_000.0, 38_000.0, 40_000.0, 42_000.0,
         55_000.0, 60_000.0, 65_000.0, 70_000.0, 75_000.0]


def _run():
    from dataclasses import replace

    base = default_config(measure_ns=msecs(100))
    off = sweep_rates(replace(base, nagle=False), RATES)
    on = sweep_rates(replace(base, nagle=True), RATES)
    return off, on


def test_bench_headline(benchmark, record_artifact):
    off_points, on_points = benchmark.pedantic(_run, rounds=1, iterations=1)
    off = measured_curve(off_points)
    on = measured_curve(on_points)
    base_max, batch_max, extension = range_extension(off, on, SLO_NS)
    improvement = improvement_at(off, on, base_max)

    table = format_table(
        ["metric", "paper", "reproduced"],
        [
            ("max load, Nagle off (SLO 500us)", "37.5 kRPS", f"{base_max/1000:.1f} kRPS"),
            ("max load, Nagle on  (SLO 500us)", "72.5 kRPS", f"{batch_max/1000:.1f} kRPS"),
            ("range extension", "1.93x", f"{extension:.2f}x"),
            (f"latency improvement at {base_max/1000:.1f} kRPS",
             "2.80x (at 37.5)", f"{improvement:.2f}x"),
        ],
        title="E5: headline numbers (paper vs reproduction)",
    )
    record_artifact("headline", table)

    assert extension > 1.5
    assert improvement > 1.3
    # Off-curve latency at its own edge approaches the SLO the way the
    # paper's 468us does.
    edge_latency = {p.rate_per_sec: p.latency_ns for p in off}[base_max]
    assert to_usecs(edge_latency) > 100
