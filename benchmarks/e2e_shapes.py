"""End-to-end pipeline bench shapes: whole-run events/sec.

The kernel microbenches in ``test_bench_perf.py`` time the bare
schedule/run loop; these shapes time the *pipeline* — packet/TCP/qstate
work per event included — by running a real benchmark config and
dividing the simulator's executed-callback count by wall-clock time.
Two regimes bracket the workload:

- ``fig2_point`` — one Figure 2 VM cell: Nagle on, exchange + hints +
  counter sampling active, the configuration the paper's estimator
  lives in;
- ``faults_on`` — the mixed chaos plan at intensity 1: loss episodes,
  jitter, receiver stalls and exchange corruption keep the retransmit /
  SACK / plausibility paths hot.

Events/sec is wall-clock (machine-dependent); ``kernel_reference()``
measures the pure event-kernel chained-timer shape on the same machine
so stored baselines can be compared as *ratios* (pipeline events/sec ÷
kernel events/sec), which is stable across machines of different speeds.

``PYTHONPATH=src python -m benchmarks.e2e_shapes`` prints one JSON
measurement (used to refresh ``benchmarks/perf_baseline.json`` — see
docs/PERFORMANCE.md).
"""

from __future__ import annotations

import json
import time
from dataclasses import replace

from repro.experiments.fig2 import fig2_config
from repro.faults import named_plan
from repro.loadgen.lancet import BenchConfig, run_benchmark
from repro.units import msecs


def _fig2_point() -> BenchConfig:
    return replace(
        fig2_config(vm=True, nagle=True, seed=1, measure_ns=msecs(80)),
        warmup_ns=msecs(20),
    )


def _faults_on() -> BenchConfig:
    return BenchConfig(
        rate_per_sec=15_000.0,
        fault_plan=named_plan("mixed"),
        min_rto_ns=msecs(5),
        warmup_ns=msecs(20),
        measure_ns=msecs(80),
        seed=3,
    )


E2E_SHAPES = {
    "fig2_point": _fig2_point,
    "faults_on": _faults_on,
}


def bench_shape(config: BenchConfig) -> float:
    """One timed run: simulator callbacks executed per wall-clock second.

    Times the whole :func:`run_benchmark` (assembly and summarization
    included — both are part of what a campaign pays per run).
    """
    holder = {}

    def tweak(bed):
        holder["bed"] = bed

    start = time.perf_counter()
    run_benchmark(config, tweak=tweak)
    elapsed = time.perf_counter() - start
    return holder["bed"].sim.events_executed / elapsed


def measure_shapes(reps: int = 3) -> dict[str, float]:
    """Best-of-``reps`` events/sec per shape."""
    return {
        name: max(bench_shape(factory()) for _ in range(reps))
        for name, factory in E2E_SHAPES.items()
    }


def kernel_reference(reps: int = 3) -> float:
    """The chained-timer kernel shape, as a machine-speed normalizer."""
    from repro.sim.loop import Simulator

    def chained(n: int = 100_000) -> float:
        sim = Simulator()
        state = {"count": 0}

        def tick():
            state["count"] += 1
            if state["count"] < n:
                sim.call_after(10, tick)

        sim.call_after(10, tick)
        start = time.perf_counter()
        sim.run()
        assert state["count"] == n
        return n / (time.perf_counter() - start)

    return max(chained() for _ in range(reps))


def measure_all(reps: int = 3) -> dict:
    """The full measurement: per-shape events/sec plus the normalizer."""
    shapes = measure_shapes(reps)
    kernel = kernel_reference(reps)
    return {
        "shapes": {name: round(eps) for name, eps in shapes.items()},
        "kernel_chained": round(kernel),
        "normalized": {
            name: round(eps / kernel, 4) for name, eps in shapes.items()
        },
    }


if __name__ == "__main__":
    print(json.dumps(measure_all(), indent=2))
