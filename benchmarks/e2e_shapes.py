"""End-to-end pipeline bench shapes: whole-run events/sec.

The kernel microbenches in ``test_bench_perf.py`` time the bare
schedule/run loop; these shapes time the *pipeline* — packet/TCP/qstate
work per event included — by running a real benchmark config and
dividing the simulator's executed-callback count by wall-clock time.
Two regimes bracket the workload:

- ``fig2_point`` — one Figure 2 VM cell: Nagle on, exchange + hints +
  counter sampling active, the configuration the paper's estimator
  lives in;
- ``faults_on`` — the mixed chaos plan at intensity 1: loss episodes,
  jitter, receiver stalls and exchange corruption keep the retransmit /
  SACK / plausibility paths hot.

Events/sec is wall-clock (machine-dependent); ``kernel_reference()``
measures the pure event-kernel chained-timer shape on the same machine
so stored baselines can be compared as *ratios* (pipeline events/sec ÷
kernel events/sec), which is stable across machines of different speeds.

``PYTHONPATH=src python -m benchmarks.e2e_shapes`` prints one JSON
measurement (used to refresh ``benchmarks/perf_baseline.json`` — see
docs/PERFORMANCE.md).
"""

from __future__ import annotations

import json
import time
from dataclasses import replace

from repro.experiments.fig2 import fig2_config
from repro.faults import named_plan
from repro.loadgen.lancet import BenchConfig, run_benchmark
from repro.units import msecs, usecs


def _fig2_point() -> BenchConfig:
    return replace(
        fig2_config(vm=True, nagle=True, seed=1, measure_ns=msecs(80)),
        warmup_ns=msecs(20),
    )


def _dense_sampling() -> BenchConfig:
    """The vectorized-pipeline stress shape: datacenter-sweep sampling.

    Four connections sampled every 5 us — the regime the batch pipeline
    (``repro.sim.batch``) exists for, where the legacy path's per-tick
    object materialization (six ``QueueSnapshot``, two
    ``TripleSnapshot``, one ``CounterSample`` per collector tick)
    dominates the run.
    """
    return replace(
        fig2_config(vm=True, nagle=True, seed=1, measure_ns=msecs(80)),
        warmup_ns=msecs(20),
        connections=4,
        counter_period_ns=usecs(5),
    )


def _faults_on() -> BenchConfig:
    return BenchConfig(
        rate_per_sec=15_000.0,
        fault_plan=named_plan("mixed"),
        min_rto_ns=msecs(5),
        warmup_ns=msecs(20),
        measure_ns=msecs(80),
        seed=3,
    )


E2E_SHAPES = {
    "fig2_point": _fig2_point,
    "faults_on": _faults_on,
}


def bench_shape(config: BenchConfig, backend: str | None = None) -> float:
    """One timed run: simulator callbacks executed per wall-clock second.

    Times the whole :func:`run_benchmark` (assembly and summarization
    included — both are part of what a campaign pays per run).
    ``backend`` selects the batch pipeline; ``None`` is the legacy path.
    """
    holder = {}

    def tweak(bed):
        holder["bed"] = bed

    start = time.perf_counter()
    run_benchmark(config, tweak=tweak, backend=backend)
    elapsed = time.perf_counter() - start
    return holder["bed"].sim.events_executed / elapsed


def measure_shapes(reps: int = 3) -> dict[str, float]:
    """Best-of-``reps`` events/sec per shape."""
    return {
        name: max(bench_shape(factory()) for _ in range(reps))
        for name, factory in E2E_SHAPES.items()
    }


def kernel_reference(reps: int = 3) -> float:
    """The chained-timer kernel shape, as a machine-speed normalizer."""
    from repro.sim.loop import Simulator

    def chained(n: int = 100_000) -> float:
        sim = Simulator()
        state = {"count": 0}

        def tick():
            state["count"] += 1
            if state["count"] < n:
                sim.call_after(10, tick)

        sim.call_after(10, tick)
        start = time.perf_counter()
        sim.run()
        assert state["count"] == n
        return n / (time.perf_counter() - start)

    return max(chained() for _ in range(reps))


def measure_all(reps: int = 3) -> dict:
    """The full measurement: per-shape events/sec plus the normalizer."""
    shapes = measure_shapes(reps)
    kernel = kernel_reference(reps)
    return {
        "shapes": {name: round(eps) for name, eps in shapes.items()},
        "kernel_chained": round(kernel),
        "normalized": {
            name: round(eps / kernel, 4) for name, eps in shapes.items()
        },
    }


def measure_vectorized(reps: int = 3) -> dict:
    """Legacy vs batch backend on the dense-sampling shape.

    The speedup here is the whole point of the vectorized pipeline;
    output equivalence is enforced separately by the golden-digest suite,
    so this measures only wall-clock.  The batch backend is resolved
    via ``auto`` (numpy where available, the pure-python columns
    otherwise), and which one actually ran is recorded.
    """
    from repro.config import resolve_backend

    backend = resolve_backend("auto")
    config = _dense_sampling()
    legacy = max(bench_shape(config) for _ in range(reps))
    vectorized = max(bench_shape(config, backend=backend) for _ in range(reps))
    kernel = kernel_reference(reps)
    return {
        "shape": "dense_sampling",
        "backend": backend,
        "legacy_events_per_sec": round(legacy),
        "vectorized_events_per_sec": round(vectorized),
        "kernel_chained": round(kernel),
        "normalized": {
            "legacy": round(legacy / kernel, 4),
            "vectorized": round(vectorized / kernel, 4),
        },
        "speedup": round(vectorized / legacy, 3),
    }


def measure_sharded(reps: int = 3, workers: int = 1) -> dict:
    """The decomposed fan-in, serial vs sharded: merged events/sec.

    Events/sec here counts simulator callbacks summed over every
    connection's sub-simulation divided by the wall-clock of the whole
    ``run_fanin_sharded`` call (partition, workers, merge included).
    On a single-CPU box the sharded run cannot beat the serial one —
    the caller records both and gates only the serial ratio.
    """
    from repro.experiments.fanin import FaninConfig, run_fanin_sharded

    config = FaninConfig(warmup_ns=msecs(10), measure_ns=msecs(40))

    def timed(shards: int, pool: int) -> tuple[float, int]:
        start = time.perf_counter()
        result = run_fanin_sharded(config, shards=shards, workers=pool)
        elapsed = time.perf_counter() - start
        return result.events_executed / elapsed, result.merged_events

    serial_eps, merged = 0.0, 0
    for _ in range(reps):
        eps, merged = timed(1, 1)
        serial_eps = max(serial_eps, eps)
    sharded_eps = 0.0
    for _ in range(reps):
        eps, _ = timed(2, workers)
        sharded_eps = max(sharded_eps, eps)
    kernel = kernel_reference(reps)
    return {
        "shape": "fanin_4c",
        "workers": workers,
        "merged_events": merged,
        "serial_events_per_sec": round(serial_eps),
        "sharded_events_per_sec": round(sharded_eps),
        "kernel_chained": round(kernel),
        "normalized": {
            "serial": round(serial_eps / kernel, 4),
            "sharded": round(sharded_eps / kernel, 4),
        },
    }


def measure_cross_shard(reps: int = 3) -> dict:
    """The windowed engine's sync-machinery cost, serial and native.

    Two shapes:

    - ``fanin_synced`` — the decomposed fan-in *through* the windowed
      engine.  The fan-in has no cross links, so the lookahead is
      infinite and the plan collapses to one window: the engine
      degenerates to the plain shard map, and this ratio should track
      ``sharded.fanin_serial`` — any gap is pure sync-machinery
      overhead.  This is the gated number.
    - ``bottleneck`` — the engine's native consumer (N flows × one
      shared link, one window per lookahead).  Its ratio depends on the
      window count, so it is recorded for the trajectory, not gated.
    """
    from repro.experiments.bottleneck import (
        BottleneckConfig,
        run_shared_bottleneck,
    )
    from repro.experiments.fanin import FaninConfig, run_fanin_synced

    fanin_config = FaninConfig(warmup_ns=msecs(10), measure_ns=msecs(40))
    bottleneck_config = BottleneckConfig(
        warmup_ns=msecs(10), measure_ns=msecs(30)
    )

    def timed(run) -> float:
        start = time.perf_counter()
        result = run()
        return result.events_executed / (time.perf_counter() - start)

    fanin_eps = max(
        timed(lambda: run_fanin_synced(fanin_config)) for _ in range(reps)
    )
    windows = run_shared_bottleneck(bottleneck_config).windows
    bottleneck_eps = max(
        timed(lambda: run_shared_bottleneck(bottleneck_config))
        for _ in range(reps)
    )
    kernel = kernel_reference(reps)
    return {
        "shapes": {
            "fanin_synced": round(fanin_eps),
            "bottleneck": round(bottleneck_eps),
        },
        "bottleneck_windows": windows,
        "kernel_chained": round(kernel),
        "normalized": {
            "fanin_synced": round(fanin_eps / kernel, 4),
            "bottleneck": round(bottleneck_eps / kernel, 4),
        },
    }


if __name__ == "__main__":
    print(json.dumps(measure_all(), indent=2))
    print(json.dumps(measure_vectorized(), indent=2))
    print(json.dumps(measure_sharded(), indent=2))
    print(json.dumps(measure_cross_shard(), indent=2))
