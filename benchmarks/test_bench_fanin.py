"""A10 — fan-in: many clients, one server, connection-spanning control."""

from __future__ import annotations

import pytest

from repro.experiments.fanin import FaninConfig, run_fanin
from repro.units import msecs


def test_bench_fanin(benchmark, record_artifact):
    def run():
        off = run_fanin(FaninConfig(nagle=False))
        on = run_fanin(FaninConfig(nagle=True))
        dynamic = run_fanin(
            FaninConfig(nagle=False, measure_ns=msecs(300)), with_toggler=True
        )
        return off, on, dynamic

    off, on, dynamic = benchmark.pedantic(run, rounds=1, iterations=1)
    record_artifact(
        "fanin",
        "\n\n".join([off.render(), on.render(), dynamic.render()]),
    )

    # The shared receive path collapses without batching and is rescued
    # by it — with fan-in the effect is even starker than single-client.
    assert off.server_net_util > 0.95
    assert on.aggregate_mean_ns < 0.05 * off.aggregate_mean_ns
    # Per-connection estimates, throughput-averaged (§3.2), track the
    # aggregate measured latency in both regimes.
    assert off.averaged_estimate_ns == pytest.approx(
        off.aggregate_mean_ns, rel=0.35
    )
    assert on.averaged_estimate_ns == pytest.approx(
        on.aggregate_mean_ns, rel=0.5
    )
    # One controller spanning all connections finds Nagle-on.
    assert dynamic.toggler_final_mode is True
    assert dynamic.aggregate_mean_ns < 0.25 * off.aggregate_mean_ns
    # Fairness: the clients see comparable latency.
    spread = max(on.per_client_mean_ns) / min(on.per_client_mean_ns)
    assert spread < 1.3
