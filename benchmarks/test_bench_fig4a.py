"""E3 — regenerate Figure 4a: SET 16KiB load sweep, Nagle on/off,
measured and estimated latency, cutoff and SLO headlines."""

from __future__ import annotations

import pytest

from repro.experiments.fig4a import default_config, run_fig4a
from repro.units import msecs

RATES = [
    5_000.0, 15_000.0, 25_000.0, 30_000.0, 35_000.0, 37_500.0,
    40_000.0, 50_000.0, 60_000.0, 70_000.0, 80_000.0,
]


def test_bench_fig4a(benchmark, record_artifact):
    result = benchmark.pedantic(
        lambda: run_fig4a(rates=RATES, base=default_config(measure_ns=msecs(100))),
        rounds=1,
        iterations=1,
    )
    record_artifact("fig4a", result.render())

    # Shape assertions mirroring the paper's reading of the figure:
    # 1. a cutoff exists — no-batching wins below, batching above;
    assert result.cutoff_rate is not None
    assert 20_000 < result.cutoff_rate < 45_000
    # 2. batching extends the 500us-SLO sustainable range ~2x (1.93x);
    assert result.extension_factor > 1.5
    # 3. batching improves latency at the baseline's last good rate;
    assert result.improvement_factor is not None
    assert result.improvement_factor > 1.2
    # 4. the estimates identify a similar cutoff (Fig 4a's key point).
    assert result.estimated_cutoff_rate is not None
    assert result.estimated_cutoff_rate == pytest.approx(
        result.cutoff_rate, rel=0.35
    )
