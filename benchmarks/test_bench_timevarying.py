"""A8 — dynamic toggling under a time-varying load walk.

No static Nagle setting is right across the low → high → low walk:
static-off collapses in the high phase (and its backlog poisons the
next phase), static-on overpays at low load.  The estimate-driven
controller must approach the per-phase best of both.
"""

from __future__ import annotations

from repro.experiments.timevarying import PhasePlan, run_timevarying


def test_bench_timevarying(benchmark, record_artifact):
    result = benchmark.pedantic(
        lambda: run_timevarying(PhasePlan()), rounds=1, iterations=1
    )
    record_artifact("timevarying", result.render())

    off = result.policy("static-off").phase_latency_ns
    on = result.policy("static-on").phase_latency_ns
    dynamic = result.policy("dynamic").phase_latency_ns

    # Static-off collapses at high load; its backlog even bleeds into
    # the following low phase.
    assert off["high"] > 10 * on["high"]
    assert off["low-2"] > 2 * off["low-1"]
    # The controller beats static-on where off is better (low phases)...
    assert dynamic["low-1"] < on["low-1"]
    # ...and beats static-off by an order of magnitude where on is
    # better (the residual over static-on is the re-learning cost).
    assert dynamic["high"] < 0.2 * off["high"]
    assert dynamic["low-2"] < 0.5 * off["low-2"]
    # It actually re-toggled across phases.
    assert result.policy("dynamic").toggles >= 2
