"""E1 — regenerate Figure 1 (analytic batching scenario)."""

from __future__ import annotations

from repro.experiments import run_fig1


def test_bench_fig1(benchmark, record_artifact):
    result = benchmark(run_fig1)
    record_artifact("fig1", result.render())

    verdicts = {
        row.c: (row.latency_verdict, row.throughput_verdict)
        for row in result.rows
    }
    # The paper's three panels.
    assert verdicts[1.0] == ("improves", "improves")
    assert verdicts[3.0] == ("degrades", "improves")
    assert verdicts[5.0] == ("degrades", "degrades")
