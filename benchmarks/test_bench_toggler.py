"""A2 — dynamic ε-greedy toggling vs static Nagle settings."""

from __future__ import annotations

from repro.experiments.ablations import run_toggler_ablation
from repro.units import msecs


def test_bench_toggler(benchmark, record_artifact):
    result = benchmark.pedantic(
        lambda: run_toggler_ablation(
            rates=(10_000.0, 30_000.0, 50_000.0, 65_000.0),
            measure_ns=msecs(300),
        ),
        rounds=1,
        iterations=1,
    )
    record_artifact("ablation_toggler", result.render())

    for row in result.rows:
        worst_static = max(row.off_latency_ns, row.on_latency_ns)
        # The controller must track the better static mode: far better
        # than the worse static choice wherever the two diverge, and
        # never catastrophically worse than the best (the residual gap
        # is the exploration cost paid inside the measurement window).
        if worst_static > 2 * row.best_static_ns:
            assert row.toggler_latency_ns < 0.3 * worst_static
        assert row.toggler_latency_ns < 6 * row.best_static_ns

    # It must land on the correct mode at the extremes.
    by_rate = {row.rate: row for row in result.rows}
    assert by_rate[10_000.0].final_mode is False
    assert by_rate[50_000.0].final_mode is True
    assert by_rate[65_000.0].final_mode is True
