"""Substrate performance: event-loop and end-to-end harness throughput.

Not a paper artifact — these track the simulator's own speed so
regressions in the substrate (which would silently stretch every other
benchmark) are visible.
"""

from __future__ import annotations

from repro.loadgen.arrivals import Workload
from repro.loadgen.lancet import BenchConfig, run_benchmark
from repro.sim.loop import Simulator
from repro.units import KIB, msecs


def test_bench_event_loop(benchmark):
    """Raw scheduling throughput: schedule + run 10k chained events."""

    def run():
        sim = Simulator()
        state = {"count": 0}

        def tick():
            state["count"] += 1
            if state["count"] < 10_000:
                sim.call_after(10, tick)

        sim.call_after(10, tick)
        sim.run()
        return state["count"]

    count = benchmark(run)
    assert count == 10_000


def test_bench_full_stack_run(benchmark):
    """One short full-stack benchmark run (10 kRPS for 20 ms)."""

    def run():
        return run_benchmark(
            BenchConfig(
                rate_per_sec=10_000.0,
                workload=Workload(value_bytes=16 * KIB),
                warmup_ns=msecs(5),
                measure_ns=msecs(20),
            )
        )

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.latency.count > 100
