"""A6 — microbenchmarks of the contribution's hot-path primitives.

The paper's pitch rests on the counters being "easily maintained": TRACK
is a handful of integer operations per queue-size change, GETAVGS a few
divisions per estimate, and the wire encoding 36 bytes of struct
packing.  These benchmarks quantify that on this substrate.
"""

from __future__ import annotations

import itertools

from repro.core.exchange import WirePeerState, WireQueueState, WireScale
from repro.core.littles_law import get_avgs
from repro.core.qstate import QueueSnapshot, QueueState


class _Clock:
    __slots__ = ("now",)

    def __init__(self):
        self.now = 0

    def __call__(self):
        self.now += 7
        return self.now


def test_bench_track(benchmark):
    """One TRACK call (the per-queue-change cost in the data path)."""
    qs = QueueState(_Clock())
    deltas = itertools.cycle([3, -3, 10, -10, 1, -1])
    benchmark(lambda: qs.track(next(deltas)))
    assert qs.size >= 0


def test_bench_snapshot(benchmark):
    qs = QueueState(_Clock())
    qs.track(5)
    benchmark(qs.snapshot)


def test_bench_get_avgs(benchmark):
    prev = QueueSnapshot(time=0, total=0, integral=0)
    now = QueueSnapshot(time=1_000_000, total=5_000, integral=90_000_000)
    result = benchmark(lambda: get_avgs(prev, now))
    assert result.defined


def test_bench_wire_encode(benchmark):
    """Building + encoding the full 36-byte exchange payload."""
    clock = _Clock()

    class Endpoint:
        qs_unacked = QueueState(clock)
        qs_unread = QueueState(clock)
        qs_ackdelay = QueueState(clock)

    endpoint = Endpoint()
    scale = WireScale()
    data = benchmark(lambda: WirePeerState.capture(endpoint, scale).encode())
    assert len(data) == 36


def test_bench_wire_decode(benchmark):
    payload = WirePeerState(
        WireQueueState(1, 2, 3),
        WireQueueState(4, 5, 6),
        WireQueueState(7, 8, 9),
    ).encode()
    state = benchmark(lambda: WirePeerState.decode(payload))
    assert state.unread.total32 == 5
