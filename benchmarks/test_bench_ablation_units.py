"""A1 — estimate accuracy per message-unit granularity (§3.3).

Runs in the Figure 4b failure regime (Nagle on, moderate load): on the
mixed workload, byte-weighted averages barely see the batching delay
that dominates per-request latency, while boundary-aware units (send
syscalls) and application hints capture it.
"""

from __future__ import annotations

from repro.experiments.ablations import run_units_ablation
from repro.units import msecs


def test_bench_ablation_units(benchmark, record_artifact):
    result = benchmark.pedantic(
        lambda: run_units_ablation(rate=15_000.0, measure_ns=msecs(120),
                                   nagle=True),
        rounds=1,
        iterations=1,
    )
    record_artifact("ablation_units", result.render())

    errors = {
        (row.workload, row.unit): row.error_fraction for row in result.rows
    }
    # Hints are accurate everywhere (the §3.3 pitch).
    assert errors[("SET-only", "hints")] < 0.15
    assert errors[("95:5 SET:GET", "hints")] < 0.15
    # On the mixed workload bytes fail badly (Figure 4b)...
    assert errors[("95:5 SET:GET", "bytes")] > 0.3
    # ...syscall units — the paper's proposed next step — do better...
    assert errors[("95:5 SET:GET", "syscalls")] < errors[("95:5 SET:GET", "bytes")]
    # ...and packets are "similarly limited" to bytes (§3.4).
    assert errors[("95:5 SET:GET", "packets")] > 0.2
