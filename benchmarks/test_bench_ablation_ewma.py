"""A4 — toggling granularity and EWMA smoothing sweep (§5)."""

from __future__ import annotations

from repro.experiments.ablations import run_granularity_ablation
from repro.units import msecs


def test_bench_ablation_ewma(benchmark, record_artifact):
    result = benchmark.pedantic(
        lambda: run_granularity_ablation(
            rate=50_000.0,
            ticks_ns=(msecs(4), msecs(16), msecs(32)),
            alphas=(0.1, 0.5),
            measure_ns=msecs(320),
        ),
        rounds=1,
        iterations=1,
    )
    record_artifact("ablation_ewma", result.render())

    # 50 kRPS is past the no-batching knee.  Coarse ticks give each
    # explored mode time to drain the other's backlog, so they must
    # discover Nagle-on; finer ticks are allowed to struggle — that *is*
    # the granularity trade-off §5 describes (finer reacts faster but is
    # more noise/transition-sensitive).
    coarse = [row for row in result.rows if row.tick_ns >= msecs(16)]
    assert coarse
    assert all(row.final_mode is True for row in coarse)
    assert any(
        row.latency_ns < 6 * result.best_static_ns for row in coarse
    )
    # And every configuration still ends far below the collapsed
    # no-batching default (5+ ms at this load).
    for row in result.rows:
        assert row.latency_ns < 5_000_000
