"""Benchmark-suite helpers.

Every figure/table benchmark renders the same rows/series the paper
reports; the rendered text is printed (visible with ``-s``) and also
written under ``benchmarks/results/`` so the regenerated artifacts
survive output capturing.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def record_artifact():
    """Write a rendered table to benchmarks/results/<name>.txt."""

    def write(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return write
