"""A5 — AIMD batch-limit adaptation vs binary Nagle toggling (§5)."""

from __future__ import annotations

from repro.experiments.ablations import run_aimd_ablation
from repro.units import msecs


def test_bench_aimd(benchmark, record_artifact):
    result = benchmark.pedantic(
        lambda: run_aimd_ablation(rate=50_000.0, measure_ns=msecs(200)),
        rounds=1,
        iterations=1,
    )
    record_artifact("ablation_aimd", result.render())

    # At 50 kRPS static-off has blown up; the AIMD floor must rescue the
    # system into the same ballpark as static-on.
    assert result.aimd_latency_ns < 0.5 * result.off_latency_ns
    assert result.aimd_latency_ns < 10 * result.on_latency_ns
    # And it actually grew a batching floor.
    assert result.final_batch_bytes > 0
