"""Robustness artifact: the chaos sweep at CI scale.

Runs the fault experiment small-scale and writes the machine-readable
robustness metrics to ``benchmarks/results/robustness.json``, the
chaos-engineering counterpart of perf.json: estimator error and
toggler-decision stability per fault intensity, accumulated across PRs
by CI (the workflow uploads it next to perf.json).
"""

from __future__ import annotations

import json
import pathlib

from repro.experiments.faults import run_faults
from repro.units import msecs

ROBUSTNESS_PATH = (
    pathlib.Path(__file__).parent / "results" / "robustness.json"
)


def test_faults_robustness_artifact():
    result = run_faults(
        plan_name="mixed",
        intensities=(0.0, 0.5, 1.0),
        rate=10_000.0,
        measure_ns=msecs(100),
        seed=1,
    )
    for point in result.points:
        # The headline robustness guarantees, enforced at artifact time:
        # no negative latency estimates, and no mode changes inside the
        # toggler's freeze window.
        assert point.negative_estimates == 0
        if point.min_toggle_gap_ticks is not None:
            assert point.min_toggle_gap_ticks >= result.freeze_ticks
    baseline, worst = result.points[0], result.points[-1]
    assert baseline.fault_summary is None
    assert worst.fault_summary is not None
    result.write_json(ROBUSTNESS_PATH)
    payload = json.loads(ROBUSTNESS_PATH.read_text())
    assert payload["schema"] == "repro-robustness-v1"
    assert len(payload["points"]) == 3
