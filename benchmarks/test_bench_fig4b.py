"""E4 — regenerate Figure 4b: 95:5 SET:GET mix, byte-estimate divergence."""

from __future__ import annotations

from repro.experiments.fig4b import mixed_config, run_fig4b

RATES = [5_000.0, 15_000.0, 25_000.0, 30_000.0, 35_000.0, 40_000.0,
         50_000.0, 60_000.0]


def test_bench_fig4b(benchmark, record_artifact):
    result = benchmark.pedantic(
        lambda: run_fig4b(rates=RATES, base=mixed_config()),
        rounds=1,
        iterations=1,
    )
    record_artifact("fig4b", result.render())

    # The paper's reading of Figure 4b: byte-granularity estimates are
    # substantially less accurate on the heterogeneous workload than the
    # hint-based estimates collected in the same runs...
    assert result.mean_abs_error_fraction > 2 * result.hint_mean_abs_error_fraction
    assert result.hint_mean_abs_error_fraction < 0.25
    # ...and the measured/byte-estimated cutoffs no longer coincide the
    # way Figure 4a's do (there the relative gap stays within ~35%).
    assert result.measured_cutoff is not None
    if result.estimated_cutoff is not None:
        gap = abs(result.estimated_cutoff - result.measured_cutoff)
        assert gap / result.measured_cutoff > 0.1
