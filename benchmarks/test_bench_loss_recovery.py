"""A12 — SACK vs dupack-only loss recovery on the TCP substrate."""

from __future__ import annotations

from repro.experiments.ablations import run_loss_ablation


def test_bench_loss_recovery(benchmark, record_artifact):
    result = benchmark.pedantic(run_loss_ablation, rounds=1, iterations=1)
    record_artifact("loss_recovery", result.render())

    for loss in (0.02, 0.05, 0.10):
        # SACK never loses to dupack-only recovery.
        assert result.completion(loss, True) <= result.completion(loss, False)
    # At light-to-moderate loss — where holes are isolated and the
    # scoreboard is reliable — SACK wins big; at heavy loss the acks
    # carrying the blocks get lost too and RTOs dominate both modes.
    assert result.completion(0.02, False) > 2 * result.completion(0.02, True)
    assert result.completion(0.05, False) > 1.5 * result.completion(0.05, True)
    # SACK actually used its scoreboard.
    sack_rows = [row for row in result.rows if row.sack]
    assert any(row.sack_retransmits > 0 for row in sack_rows)
