"""Wall-clock performance harness: kernel events/sec and campaign speedup.

Not a paper artifact — these benches track the substrate's own speed and
write machine-readable numbers to ``benchmarks/results/perf.json`` so the
performance trajectory accumulates across PRs:

- the event-kernel microbenches time the pure schedule/run loop in three
  shapes (a chained timer, a cancel-heavy timer churn like TCP's
  retransmit/delack arming, and a deep heap) against an embedded copy of
  the seed's ``_Scheduled``-object kernel;
- the campaign bench times an 8-rate x 3-seed ``replicated_sweep``
  serially and with a worker pool and checks the results are identical
  (the determinism guarantee the parallel runner makes).

Speedup assertions are deliberately loose — exact numbers land in
perf.json, and the hard speedup floor applies only where the hardware
can deliver it (the pool cannot beat serial on a single core).
"""

from __future__ import annotations

import heapq
import json
import os
import pathlib
import time
from typing import Callable

import pytest

from repro.loadgen.lancet import BenchConfig
from repro.loadgen.replications import replicated_sweep
from repro.sim.loop import Simulator
from repro.units import msecs

PERF_PATH = pathlib.Path(__file__).parent / "results" / "perf.json"


def _update_perf(key: str, payload: dict) -> None:
    PERF_PATH.parent.mkdir(exist_ok=True)
    data = {}
    if PERF_PATH.exists():
        data = json.loads(PERF_PATH.read_text())
    data[key] = payload
    data["meta"] = {"cpu_count": os.cpu_count()}
    PERF_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


# ---------------------------------------------------------------------------
# The seed kernel, verbatim shape: one _Scheduled object per event, Python
# __lt__ heap comparisons, O(n) pending scan.  Kept here as the fixed
# baseline the fast path is measured against.
# ---------------------------------------------------------------------------


class _LegacyScheduled:
    __slots__ = ("time", "seq", "callback", "cancelled")

    def __init__(self, time: int, seq: int, callback: Callable[[], None]):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def __lt__(self, other: "_LegacyScheduled") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def cancel(self) -> None:
        self.cancelled = True


class _LegacySimulator:
    def __init__(self):
        self._now = 0
        self._heap: list[_LegacyScheduled] = []
        self._seq = 0

    def call_at(self, time: int, callback: Callable[[], None]):
        entry = _LegacyScheduled(time, self._seq, callback)
        self._seq += 1
        heapq.heappush(self._heap, entry)
        return entry

    def call_after(self, delay: int, callback: Callable[[], None]):
        return self.call_at(self._now + delay, callback)

    def run(self, until: int | None = None) -> None:
        while self._heap:
            entry = self._heap[0]
            if entry.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and entry.time > until:
                break
            heapq.heappop(self._heap)
            self._now = entry.time
            entry.callback()
        if until is not None and self._now < until:
            self._now = until


# ---------------------------------------------------------------------------
# Kernel microbench shapes.  Each returns events/sec for one simulator
# class; the shapes bracket the real workload (ARCHITECTURE.md: ~40 heap
# events per request, with retransmit/delack timers armed and cancelled
# per segment).
# ---------------------------------------------------------------------------


def _bench_chained(sim_cls, n: int = 100_000) -> float:
    """One live timer chained n times — the pure schedule/run cycle."""
    sim = sim_cls()
    state = {"count": 0}

    def tick():
        state["count"] += 1
        if state["count"] < n:
            sim.call_after(10, tick)

    sim.call_after(10, tick)
    start = time.perf_counter()
    sim.run()
    assert state["count"] == n
    return n / (time.perf_counter() - start)


def _bench_cancel_churn(sim_cls, n: int = 50_000) -> float:
    """Every event arms and cancels a timer — the TCP rtx/delack pattern."""
    sim = sim_cls()
    state = {"count": 0}

    def tick():
        state["count"] += 1
        handle = sim.call_after(1000, _noop)
        handle.cancel()
        if state["count"] < n:
            sim.call_after(10, tick)

    sim.call_after(10, tick)
    start = time.perf_counter()
    sim.run()
    assert state["count"] == n
    return n / (time.perf_counter() - start)


def _noop() -> None:
    pass


def _bench_deep_heap(sim_cls, n: int = 50_000, depth: int = 1_000) -> float:
    """The chained timer over a heap pre-loaded with far-future entries."""
    sim = sim_cls()
    for index in range(depth):
        sim.call_at(10**9 + index, _noop)
    state = {"count": 0}

    def tick():
        state["count"] += 1
        if state["count"] < n:
            sim.call_after(10, tick)

    sim.call_after(10, tick)
    start = time.perf_counter()
    sim.run(until=10**8)
    assert state["count"] == n
    return n / (time.perf_counter() - start)


_KERNEL_SHAPES = {
    "chained": _bench_chained,
    "cancel_churn": _bench_cancel_churn,
    "deep_heap": _bench_deep_heap,
}


def test_perf_kernel_events_per_sec():
    """The tuple-entry kernel must beat the seed kernel by >= 20%.

    Per-shape events/sec land in perf.json; the assertion is on the
    geometric mean across shapes, with a little slack under the 20%
    target so scheduler noise on loaded CI machines cannot flake a
    genuinely faster kernel.
    """
    rows = {}
    ratio_product = 1.0
    for name, bench in _KERNEL_SHAPES.items():
        current = max(bench(Simulator) for _ in range(3))
        legacy = max(bench(_LegacySimulator) for _ in range(3))
        rows[name] = {
            "events_per_sec": round(current),
            "seed_events_per_sec": round(legacy),
            "speedup": round(current / legacy, 3),
        }
        ratio_product *= current / legacy
    geomean = ratio_product ** (1 / len(_KERNEL_SHAPES))
    _update_perf("kernel", {"shapes": rows, "geomean_speedup": round(geomean, 3)})
    print(f"\nkernel speedup vs seed: {geomean:.2f}x (shapes: " + ", ".join(
        f"{name} {row['speedup']}x" for name, row in rows.items()) + ")")
    assert geomean >= 1.15, rows


BASELINE_PATH = pathlib.Path(__file__).parent / "perf_baseline.json"


def test_perf_e2e_pipeline_events_per_sec():
    """End-to-end pipeline events/sec: record, and gate against baseline.

    Two full-pipeline shapes (the fig2 headline point and a faults-on
    run; see ``benchmarks/e2e_shapes.py``) are timed and recorded in
    perf.json alongside the improvement over the committed pre-PR-5
    measurement.  The hard assertion is the regression gate: events/sec
    *normalized by the chained-kernel rate on the same machine* must not
    drop more than 10% below ``perf_baseline.json``'s ``baseline``
    section.  Normalizing by the kernel rate makes the gate a
    machine-independent ratio, so a slow CI box does not read as a
    pipeline regression.
    """
    from benchmarks.e2e_shapes import measure_all

    baseline_doc = json.loads(BASELINE_PATH.read_text())
    measured = measure_all(reps=3)

    pre = baseline_doc["pre_pr"]["shapes"]
    improvement = {
        name: measured["shapes"][name] / pre[name] for name in sorted(pre)
    }
    ratio_product = 1.0
    for ratio in improvement.values():
        ratio_product *= ratio
    geomean = ratio_product ** (1 / len(improvement))
    _update_perf("e2e", {
        "shapes": measured["shapes"],
        "kernel_chained": measured["kernel_chained"],
        "normalized": measured["normalized"],
        "improvement_vs_pre_pr": {
            name: round(ratio, 3) for name, ratio in improvement.items()
        },
        "geomean_improvement_vs_pre_pr": round(geomean, 3),
    })
    print(f"\ne2e improvement vs pre-PR: {geomean:.2f}x (" + ", ".join(
        f"{name} {measured['shapes'][name]} ev/s ({ratio:.2f}x)"
        for name, ratio in improvement.items()) + ")")

    gate = baseline_doc["baseline"]["normalized"]
    for name, reference in sorted(gate.items()):
        floor = reference * 0.90
        assert measured["normalized"][name] >= floor, (
            f"{name}: normalized {measured['normalized'][name]} fell more "
            f"than 10% below the committed baseline {reference} "
            f"(floor {floor:.4f}) on a cpu_count={os.cpu_count()} box — "
            f"a pipeline perf regression"
        )
    # Soft floor on the recorded improvement: well under the measured
    # ~1.3x so wall-clock noise cannot flake it, but still catching a
    # wholesale loss of the optimization pass.
    assert geomean >= 1.10, improvement


def test_perf_parallel_sweep_speedup():
    """Serial vs pooled 8-rate x 3-seed sweep: identical results, faster.

    On a single-CPU box the comparison is meaningless — the pool can
    only lose to serial, and recording that loss as a "speedup" number
    misleads anyone reading perf.json — so the bench skips outright and
    records why.  Where it runs, the >= 2x wall-clock floor applies only
    if the hardware can deliver it (>= 4 cores); the exact speedup is
    recorded in perf.json and the byte-identical-results guarantee is
    asserted.
    """
    cpu_count = os.cpu_count() or 1
    if cpu_count < 2:
        _update_perf("parallel_sweep", {"skipped": "cpu_count<2"})
        pytest.skip(
            f"parallel sweep needs >= 2 CPUs (have {cpu_count}); "
            "a pool on one core measures only overhead"
        )
    base = BenchConfig(
        rate_per_sec=10_000.0, warmup_ns=msecs(2), measure_ns=msecs(8)
    )
    rates = [5_000.0, 10_000.0, 15_000.0, 20_000.0,
             25_000.0, 30_000.0, 35_000.0, 40_000.0]
    seeds = (1, 2, 3)
    workers = min(4, cpu_count)

    start = time.perf_counter()
    serial = replicated_sweep(base, rates, seeds, workers=1)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = replicated_sweep(base, rates, seeds, workers=workers)
    parallel_s = time.perf_counter() - start

    assert parallel == serial  # exact float equality, the determinism bar
    speedup = serial_s / parallel_s
    _update_perf("parallel_sweep", {
        "rates": len(rates),
        "seeds": len(seeds),
        "workers": workers,
        "serial_seconds": round(serial_s, 3),
        "parallel_seconds": round(parallel_s, 3),
        "speedup": round(speedup, 3),
    })
    print(f"\nsweep wall-clock: serial {serial_s:.2f}s, "
          f"parallel({workers}) {parallel_s:.2f}s -> {speedup:.2f}x")
    if cpu_count >= 4:
        assert speedup >= 2.0, (serial_s, parallel_s, f"cpu_count={cpu_count}")


def test_perf_vectorized_pipeline():
    """The batch backend vs legacy on the dense-sampling shape.

    The vectorized pipeline's reason to exist: at datacenter-sweep
    sampling density the legacy path drowns in per-tick object
    construction.  Numbers land in perf.json's ``vectorized`` section;
    the hard gates are the >= 1.5x speedup over legacy on the same
    machine (PR-6's acceptance floor, measured well above 3x here) and
    the committed normalized baseline (same >10%-drop rule as the e2e
    gate, machine-independent).
    """
    from benchmarks.e2e_shapes import measure_vectorized

    baseline_doc = json.loads(BASELINE_PATH.read_text())
    measured = measure_vectorized(reps=3)
    _update_perf("vectorized", measured)
    print(f"\nvectorized ({measured['backend']}): "
          f"{measured['vectorized_events_per_sec']} ev/s vs legacy "
          f"{measured['legacy_events_per_sec']} ev/s -> "
          f"{measured['speedup']:.2f}x")

    assert measured["speedup"] >= 1.5, (
        f"vectorized backend ({measured['backend']}) only "
        f"{measured['speedup']}x over legacy on the dense-sampling shape "
        f"(cpu_count={os.cpu_count()}) — below the 1.5x acceptance floor"
    )
    reference = baseline_doc["vectorized"]["normalized"]["dense_sampling"]
    floor = reference * 0.90
    assert measured["normalized"]["vectorized"] >= floor, (
        f"dense_sampling: vectorized normalized "
        f"{measured['normalized']['vectorized']} fell more than 10% below "
        f"the committed baseline {reference} (floor {floor:.4f}) on a "
        f"cpu_count={os.cpu_count()} box — a batch-pipeline regression"
    )


def test_perf_sharded_pipeline():
    """The decomposed fan-in: serial throughput gated, sharding recorded.

    The serial (1-shard, in-process) run is the machine-independent
    number the gate protects — sharding overhead must never erode the
    single-core decomposed model.  The 2-shard run is recorded for the
    trajectory; a wall-clock win is only asserted where a second CPU
    exists to deliver it (byte-identity across shard counts is the
    equivalence suite's job, not wall-clock's).
    """
    from benchmarks.e2e_shapes import measure_sharded

    cpu_count = os.cpu_count() or 1
    baseline_doc = json.loads(BASELINE_PATH.read_text())
    measured = measure_sharded(reps=3, workers=min(2, cpu_count))
    _update_perf("sharded", measured)
    print(f"\nsharded fanin: serial {measured['serial_events_per_sec']} ev/s, "
          f"2-shard/{measured['workers']}w "
          f"{measured['sharded_events_per_sec']} ev/s")

    reference = baseline_doc["sharded"]["normalized"]["fanin_serial"]
    floor = reference * 0.90
    assert measured["normalized"]["serial"] >= floor, (
        f"fanin_serial: normalized {measured['normalized']['serial']} fell "
        f"more than 10% below the committed baseline {reference} "
        f"(floor {floor:.4f}) on a cpu_count={cpu_count} box — "
        f"a sharded-runner regression"
    )


def test_perf_cross_shard_sync_overhead():
    """The windowed engine on the fan-in shape: sync machinery gated.

    The fan-in run through the conservative engine collapses to a
    single infinite-lookahead window, so its serial normalized ratio
    must track the plain shard map's (``sharded.fanin_serial``) — the
    gate fails if the sync machinery (mailboxes, chain digests, the
    per-window exchange scaffolding) grows real overhead on the shape
    that should pay ~nothing for it.  The native shared-bottleneck
    shape's ratio is window-count-dependent and only recorded.
    """
    from benchmarks.e2e_shapes import measure_cross_shard

    baseline_doc = json.loads(BASELINE_PATH.read_text())
    measured = measure_cross_shard(reps=3)
    _update_perf("cross_shard", measured)
    print(f"\ncross-shard: fanin_synced "
          f"{measured['shapes']['fanin_synced']} ev/s "
          f"(normalized {measured['normalized']['fanin_synced']}), "
          f"bottleneck {measured['shapes']['bottleneck']} ev/s over "
          f"{measured['bottleneck_windows']} windows")

    reference = baseline_doc["cross_shard"]["normalized"]["fanin_synced"]
    floor = reference * 0.90
    assert measured["normalized"]["fanin_synced"] >= floor, (
        f"fanin_synced: normalized {measured['normalized']['fanin_synced']} "
        f"fell more than 10% below the committed baseline {reference} "
        f"(floor {floor:.4f}) on a cpu_count={os.cpu_count()} box — "
        f"the sync machinery grew overhead on the infinite-lookahead path"
    )
