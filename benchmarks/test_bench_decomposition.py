"""A11 — latency decomposition into the Figure 3 legs."""

from __future__ import annotations

import pytest

from repro.experiments import run_decomposition


def test_bench_decomposition(benchmark, record_artifact):
    result = benchmark.pedantic(run_decomposition, rounds=1, iterations=1)
    record_artifact("decomposition", result.render())

    for row in result.rows:
        # The four components recombine into the estimate exactly — the
        # formula really is a sum of independently measured legs.
        assert row.recombined == pytest.approx(row.total, rel=1e-9)
        # And the sum tracks the measured latency (minus app time).
        assert row.total < row.measured
        assert row.total > 0.5 * row.measured

    # The dominant term moves with load: at the knee the unacked leg
    # (send -> ack, inflated by the receiver's softirq backlog that
    # delays ack generation) carries nearly everything.
    low, high = result.rows[0], result.rows[-1]
    assert high.unacked_local > 4 * low.unacked_local
    assert high.unacked_local / high.total > 0.9
