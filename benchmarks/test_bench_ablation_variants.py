"""A7 — the stack's static batching heuristics head-to-head (§2).

off vs classic Nagle vs Minshall's variant vs auto-corking, at a low
load and past the no-batching knee.  The point is the paper's §2 claim:
every static heuristic embeds timing assumptions that hold only
sometimes — including Minshall's "fixed" Nagle, which avoids the classic
tail stall but (on this request/response workload) phase-locks the
server's small responses behind their own acks at low load, and
auto-corking, which barely batches here because the TX ring drains
faster than requests arrive.
"""

from __future__ import annotations

from repro.experiments.ablations import run_variant_ablation
from repro.units import msecs

LOW, HIGH = 8_000.0, 50_000.0


def test_bench_ablation_variants(benchmark, record_artifact):
    result = benchmark.pedantic(
        lambda: run_variant_ablation(rates=(LOW, HIGH), measure_ns=msecs(120)),
        rounds=1,
        iterations=1,
    )
    record_artifact("ablation_variants", result.render())

    # Low load: immediate transmission wins; both Nagle flavors pay for
    # delaying (each through a different mechanism).
    assert result.latency("off", LOW) < result.latency("nagle", LOW)
    assert result.latency("off", LOW) < result.latency("minshall", LOW)
    # Past the knee: both Nagle flavors rescue the system (Minshall's
    # held-tail chain degenerates into classic-like coalescing under
    # sustained load); plain off collapses, and auto-corking alone
    # cannot save it (the ring empties between requests).
    assert result.latency("nagle", HIGH) < 0.2 * result.latency("off", HIGH)
    assert result.latency("minshall", HIGH) < 0.2 * result.latency("off", HIGH)
    assert result.latency("autocork", HIGH) > 5 * result.latency("nagle", HIGH)
