#!/usr/bin/env python3
"""The cooperative-application hint API (paper §3.3).

A client that knows its own request boundaries calls ``create(n)`` /
``complete(n)`` on a userspace queue state; the stack ships that state to
the server inside the metadata exchange, and the server recovers exact
application-perceived latency and throughput via Little's law — no kernel
queue monitoring at all.

This example runs the *heterogeneous* 95:5 SET:GET workload where the
paper shows byte-granularity estimation failing (Figure 4b), and prints
all three views side by side: measured, byte-estimated, hint-estimated —
including what the *server* recovers purely from the exchanged hints.

Run:  python examples/hints_api.py
"""

from __future__ import annotations

from repro.core.hints import RemoteHintEstimator
from repro.loadgen.arrivals import Workload
from repro.loadgen.lancet import BenchConfig, run_benchmark
from repro.units import KIB, msecs, to_usecs


def main() -> None:
    server_view = {}

    def tweak(bed):
        # The server-side estimator reads the client's hint snapshots
        # that arrive via the TCP-option exchange on the *server*'s end.
        estimator = RemoteHintEstimator(bed.server_exchange)
        samples = []

        def tick():
            averages = estimator.sample()
            if averages is not None and averages.defined:
                samples.append(averages)
            bed.sim.call_after(msecs(20), tick)

        bed.sim.call_after(msecs(30), tick)
        server_view["samples"] = samples

    config = BenchConfig(
        rate_per_sec=15_000.0,
        nagle=True,  # the regime where Figure 4b shows bytes failing
        workload=Workload(set_ratio=0.95, value_bytes=16 * KIB),
        warmup_ns=msecs(20),
        measure_ns=msecs(150),
        exchange_period_ns=msecs(5),
        use_hints=True,
    )
    print("running 95:5 SET:GET at 15 kRPS, Nagle on, hints enabled ...")
    result = run_benchmark(config, tweak=tweak)

    measured = result.send_latency.mean_ns
    print(f"\nmeasured request latency (send->response): "
          f"{to_usecs(measured):.1f} us")

    byte_est = result.estimate.latency_ns if result.estimate else None
    if byte_est is not None:
        print(f"byte-granularity estimate (the prototype's, Fig 4b): "
              f"{to_usecs(byte_est):.1f} us "
              f"({abs(byte_est - measured) / measured:.0%} off)")

    print(f"client-local hint estimate: {to_usecs(result.hint_latency_ns):.1f} us "
          f"({abs(result.hint_latency_ns - measured) / measured:.0%} off), "
          f"throughput {result.hint_rps:,.0f} req/s")

    samples = server_view["samples"]
    if samples:
        mean_latency = sum(s.latency_ns for s in samples) / len(samples)
        mean_tput = sum(s.throughput_per_sec for s in samples) / len(samples)
        print(f"server-side view from exchanged hints alone: "
              f"{to_usecs(mean_latency):.1f} us, {mean_tput:,.0f} req/s "
              f"({len(samples)} samples)")
        print("\nThe hint path stays accurate where byte counting fails — "
              "and the server needed no queue monitoring of its own.")


if __name__ == "__main__":
    main()
