#!/usr/bin/env python3
"""Record a workload trace and replay it under both Nagle settings.

A/B comparisons of batching policies are only meaningful when both runs
see the *identical* request sequence.  Seeded schedules give that within
one process; traces make it durable: record once, save to JSONL, replay
against anything — different configs, different library versions, or a
colleague's machine.

Run:  python examples/trace_replay.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.loadgen import (
    BenchConfig,
    Workload,
    load_trace,
    poisson_schedule,
    record_schedule,
    save_trace,
    trace_schedule,
)
from repro.loadgen.lancet import build_testbed
from repro.loadgen.stats import summarize
from repro.sim.rng import RngRegistry
from repro.units import msecs, to_usecs


def replay(trace_path: Path, nagle: bool, workload: Workload) -> float:
    """Replay a trace file against one configuration; returns mean ns."""
    config = BenchConfig(rate_per_sec=40_000.0, nagle=nagle,
                         warmup_ns=msecs(20), measure_ns=msecs(120))
    bed = build_testbed(config)
    for index in range(workload.keyspace):
        bed.server.store.set(workload.make_key(index), workload.value_bytes)
    bed.server.start()
    bed.client.start(trace_schedule(load_trace(trace_path)))
    bed.sim.run(until=msecs(150))
    samples = [r.latency_ns for r in bed.client.records
               if r.completed_at >= msecs(20)]
    return summarize(samples).mean_ns


def main() -> None:
    workload = Workload(set_ratio=0.95)
    rng = RngRegistry(11).stream("arrivals")

    print("recording a 130 ms, 40 kRPS 95:5 SET:GET trace ...")
    entries = record_schedule(
        poisson_schedule(rng, workload, 40_000.0, msecs(1), msecs(130))
    )
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "workload.jsonl"
        count = save_trace(entries, path)
        size_kib = path.stat().st_size / 1024
        print(f"  {count} requests -> {path.name} ({size_kib:.0f} KiB)\n")

        print("replaying the identical sequence under both settings ...")
        off = replay(path, nagle=False, workload=workload)
        on = replay(path, nagle=True, workload=workload)

    print(f"  nagle off: {to_usecs(off):8.1f} us mean latency")
    print(f"  nagle on : {to_usecs(on):8.1f} us mean latency")
    winner = "batching" if on < off else "no batching"
    print(f"\nAt this load the identical request sequence favors {winner} "
          f"({max(off, on) / min(off, on):.1f}x) — and because it was a "
          "trace, the comparison is exact, not statistical.")


if __name__ == "__main__":
    main()
