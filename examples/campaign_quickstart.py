#!/usr/bin/env python3
"""Declarative ablation campaigns from Python (docs/CAMPAIGNS.md).

Builds the same campaign as ``examples/campaign_ablation.yaml`` —
*which batching knob matters more, Nagle or autocorking?* — directly as
a :class:`~repro.campaign.CampaignSpec`, expands it to show the
deterministic run matrix and its built-in dedupe, executes it through
the supervised runner, and prints the component-importance leaderboard.

Run:  python examples/campaign_quickstart.py
"""

from __future__ import annotations

from repro.campaign import (
    CampaignSpec,
    ComponentSpec,
    SweepSpec,
    expand,
    run_spec,
)


def main() -> None:
    spec = CampaignSpec(
        name="batching-knobs",
        scenario="run",
        base={"measure_ms": 60},
        components=(
            ComponentSpec(
                name="nagle", on={"nagle": True}, off={"nagle": False}
            ),
            ComponentSpec(
                name="autocork",
                on={"autocork": True},
                off={"autocork": False},
            ),
        ),
        sweeps=(SweepSpec(field="rate_per_sec", values=(8000.0, 50000.0)),),
        metrics=("latency_mean_ns", "achieved_rate"),
    )

    # The matrix is part of the spec's contract: same spec, same cells,
    # same order, byte for byte.
    matrix = expand(spec)
    print(f"matrix: {len(matrix.cells)} cells "
          f"(spec digest {matrix.spec_digest[:16]})")
    for cell in matrix.cells:
        print(f"  {cell.index:3d}  {cell.label}")

    # With two components, all_but_one:nagle is the same config as
    # only_one:autocork (and vice versa), and baseline/all_on repeat
    # them too — the engine content-addresses each built config, so the
    # 12 cells execute as 8 unique runs.
    run = run_spec(spec, workers=2)
    print()
    print(run.describe())
    print()
    print(run.report.render())

    # The canonical report is what `repro campaign run --json` writes:
    # deterministic bytes, so two runs of the same spec diff clean.
    assert run.report.to_canonical() == run_spec(spec).report.to_canonical()
    print()
    print("re-run produced a byte-identical repro-importance-v1 report")


if __name__ == "__main__":
    main()
