#!/usr/bin/env python3
"""Dynamic Nagle toggling driven by end-to-end estimates (paper §5).

Runs the Redis-like workload at a low load (where batching hurts) and at
an overload (where the no-batching default collapses), each time with the
ε-greedy controller deciding the Nagle setting from live wire-mode
estimates.  Shows the controller's per-tick trace and that it lands on
the right mode in both regimes.

Run:  python examples/dynamic_toggling.py
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.toggler import TogglerConfig
from repro.experiments.ablations import attach_toggler
from repro.experiments.fig4a import default_config
from repro.loadgen.lancet import run_benchmark
from repro.units import msecs, to_usecs


def run_regime(name: str, rate: float) -> None:
    print(f"=== {name}: {rate:,.0f} RPS ===")
    base = replace(default_config(measure_ns=msecs(200)), rate_per_sec=rate)

    static = {}
    for nagle in (False, True):
        static[nagle] = run_benchmark(replace(base, nagle=nagle))
        print(f"  static nagle={'on ' if nagle else 'off'}: "
              f"{to_usecs(static[nagle].latency.mean_ns):>9.1f} us mean latency")

    holder = {}

    def tweak(bed):
        holder["toggler"] = attach_toggler(
            bed,
            config=TogglerConfig(tick_ns=msecs(4), epsilon=0.05, min_samples=2),
        )

    dynamic = run_benchmark(replace(base, nagle=False), tweak=tweak)
    toggler = holder["toggler"]
    print(f"  dynamic toggling:    {to_usecs(dynamic.latency.mean_ns):>9.1f} us "
          f"({toggler.toggles} toggles, final mode "
          f"{'on' if toggler.mode else 'off'})")

    print("  controller trace (first 10 ticks):")
    for record in toggler.history[:10]:
        latency = (
            f"{to_usecs(record.sample.latency_ns):8.1f} us"
            if record.sample and record.sample.latency_ns is not None
            else "   (none)"
        )
        flag = "explore" if record.explored else "greedy "
        print(f"    t={record.time/1e6:6.1f} ms  mode={'on ' if record.mode else 'off'}"
              f"  {flag}  estimate={latency}")
    best = min(static[False].latency.mean_ns, static[True].latency.mean_ns)
    print(f"  -> regret vs best static: "
          f"{(dynamic.latency.mean_ns - best) / best:+.1%}\n")


if __name__ == "__main__":
    run_regime("low load (batching hurts; controller should pick OFF)", 8_000.0)
    run_regime("overload (no-batching collapses; controller should pick ON)",
               50_000.0)
