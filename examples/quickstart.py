#!/usr/bin/env python3
"""Quickstart: queue states, Little's law, and one end-to-end estimate.

Walks the paper's core machinery in three steps:

1. maintain a queue state with TRACK and recover latency/throughput with
   GETAVGS (Algorithms 1 and 2);
2. run a tiny simulated TCP transfer and read the three instrumented
   queues off the socket;
3. combine the queue delays into the §3.2 end-to-end latency estimate
   and compare it with the actually measured delivery time.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import QueueState, get_avgs
from repro.core.estimator import E2EEstimator
from repro.host.host import Host
from repro.net.topology import PointToPoint
from repro.sim.loop import Simulator
from repro.tcp.connect import connect_pair
from repro.tcp.socket import TcpConfig
from repro.units import to_usecs, usecs


def step1_littles_law() -> None:
    print("=== Step 1: TRACK + GETAVGS on a synthetic queue ===")
    clock_state = {"now": 0}
    clock = lambda: clock_state["now"]  # noqa: E731 - example brevity

    qs = QueueState(clock)
    start = qs.snapshot()

    # One item rests for 10 us, then four more join for 20 us.
    qs.track(+1)
    clock_state["now"] += 10_000
    qs.track(+3)
    clock_state["now"] += 20_000
    qs.track(-4)

    avgs = get_avgs(start, qs.snapshot())
    print(f"  average occupancy Q  = {avgs.occupancy:.2f} items "
          "(paper's example: 3.0)")
    print(f"  throughput lambda    = {avgs.throughput_per_sec:,.0f} items/s")
    print(f"  queuing delay Q/l    = {to_usecs(avgs.latency_ns):.1f} us")
    print()


def step2_and_3_simulated_tcp() -> None:
    print("=== Step 2: a simulated TCP transfer with instrumented queues ===")
    sim = Simulator()
    client = Host(sim, "client")
    server = Host(sim, "server")
    PointToPoint.connect(sim, client.nic, server.nic,
                         propagation_delay_ns=usecs(10))
    client_sock, server_sock = connect_pair(
        sim, client, server, TcpConfig(nagle=False)
    )

    # Estimators on both endpoints, oracle mode (direct peer access,
    # like the paper's offline ethtool analysis).
    client_est = E2EEstimator(client_sock, remote=server_sock)
    server_est = E2EEstimator(server_sock, remote=client_sock)
    client_est.sample()  # baselines
    server_est.sample()

    # A server that echoes a small response per message.
    def server_loop():
        while True:
            if server_sock.readable_bytes == 0:
                yield server_sock.wait_readable()
            yield server.app_core.submit(5_000)
            _, messages = server_sock.read()
            for _ in messages:
                server_sock.send("+OK", 5)

    # A client that sends 20 requests and waits for all responses.
    deliveries = []

    def client_loop():
        from repro.sim.process import Timeout

        sent = 0
        got = 0
        send_times = {}
        while got < 20:
            if sent < 20:
                send_times[sent] = sim.now
                client_sock.send(f"req{sent}", 4_000)
                sent += 1
            if client_sock.readable_bytes == 0:
                yield Timeout(usecs(50))
                continue
            _, responses = client_sock.read()
            for _ in responses:
                deliveries.append(sim.now - send_times[got])
                got += 1

    sim.spawn(server_loop(), name="server")
    sim.spawn(client_loop(), name="client")
    sim.run(until=usecs(100_000))

    measured = sum(deliveries) / len(deliveries)
    print(f"  {len(deliveries)} request/response pairs, measured mean "
          f"latency {to_usecs(measured):.1f} us")
    print(f"  client unacked queue: {client_sock.qs_unacked.total} bytes through")
    print(f"  server unread queue:  {server_sock.qs_unread.total} bytes through")
    print()

    print("=== Step 3: the section-3.2 end-to-end estimate ===")
    client_view = client_est.sample()
    server_view = server_est.sample()
    for name, sample in (("client", client_view), ("server", server_view)):
        if sample is not None and sample.defined:
            print(f"  {name} view: L ~= {to_usecs(sample.latency_ns):.1f} us "
                  f"(throughput {sample.throughput_per_sec:,.0f} B/s)")
    views = [s.latency_ns for s in (client_view, server_view)
             if s is not None and s.defined]
    if views:
        print(f"  max of views (the paper's hedge): "
              f"{to_usecs(max(views)):.1f} us vs measured "
              f"{to_usecs(measured):.1f} us")
        print("  (the estimate excludes app processing time by design)")


if __name__ == "__main__":
    step1_littles_law()
    step2_and_3_simulated_tcp()
