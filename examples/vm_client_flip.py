#!/usr/bin/env python3
"""The Figure 2 scenario: a VM client flips the value of batching.

Same server, same 20 kRPS offered load — only the client changes: bare
metal vs a VM model that inflates every client-side cost.  The client's
CPU use balloons, the server's stays put, and the Nagle verdict flips,
exactly the phenomenon that motivates end-to-end-aware batching.

Run:  python examples/vm_client_flip.py
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.experiments.fig2 import fig2_config
from repro.loadgen.lancet import run_benchmark
from repro.units import msecs, to_usecs


def main() -> None:
    print("fixed 20 kRPS; four runs: {bare, VM} x {nagle off, on} ...")
    rows = []
    latency = {}
    for vm in (False, True):
        for nagle in (False, True):
            result = run_benchmark(
                fig2_config(vm=vm, nagle=nagle, seed=1, measure_ns=msecs(150))
            )
            latency[(vm, nagle)] = result.latency.mean_ns
            rows.append((
                "VM" if vm else "bare",
                "on" if nagle else "off",
                to_usecs(result.latency.mean_ns),
                f"{result.client_cpu:.0%}",
                f"{result.server_cpu:.0%}",
            ))
    print(format_table(
        ["client", "nagle", "mean latency (us)", "client CPU", "server CPU"],
        rows,
    ))

    bare_verdict = "helps" if latency[(False, True)] < latency[(False, False)] else "hurts"
    vm_verdict = "helps" if latency[(True, True)] < latency[(True, False)] else "hurts"
    print(f"\nNagle batching {bare_verdict} the bare-metal client "
          f"but {vm_verdict} the VM client (paper: helps / hurts).")
    print("The server can't tell these clients apart — only end-to-end "
          "information reveals which batching decision is right.")


if __name__ == "__main__":
    main()
